//! Vanilla LRU over whole retrieved sets — the paper's primary baseline.
//!
//! Every referenced retrieved set is admitted (there is no admission
//! control); when space is needed, the least recently used sets are evicted
//! until the newcomer fits.  Reference rate, size-relative value and
//! execution cost play no role in the decision, which is exactly why LRU
//! underperforms on decision-support workloads (paper §4.2).
//!
//! Recency is tracked with a monotone tick per reference and an
//! [`OrdIndex`] keyed by that tick, so victim selection, eviction and
//! [`min_cached_profit`](QueryCache::min_cached_profit) are all O(log n).

use crate::clock::Timestamp;
use crate::index::{EntryId, EntryStore, KeyedEntry};
use crate::key::QueryKey;
use crate::metrics::CacheStats;
use crate::policy::index::{OrdIndex, VictimIndexed};
use crate::policy::{InsertOutcome, QueryCache, RejectReason};
use crate::profit::Profit;
use crate::value::{CachePayload, ExecutionCost};

#[derive(Debug, Clone)]
struct LruEntry<V> {
    key: QueryKey,
    value: V,
    size_bytes: u64,
    cost: ExecutionCost,
    /// Recency sequence number; larger = more recently used.
    tick: u64,
}

impl<V> KeyedEntry for LruEntry<V> {
    fn key(&self) -> &QueryKey {
        &self.key
    }
}

/// A retrieved-set cache with least-recently-used replacement.
#[derive(Debug, Clone)]
pub struct LruCache<V> {
    capacity_bytes: u64,
    entries: EntryStore<LruEntry<V>>,
    /// Victim index keyed by recency tick, oldest first.
    recency: OrdIndex<u64>,
    next_tick: u64,
    used_bytes: u64,
    stats: CacheStats,
}

impl<V: CachePayload> LruCache<V> {
    /// Creates an LRU cache with the given capacity in bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        LruCache {
            capacity_bytes,
            entries: EntryStore::new(),
            recency: OrdIndex::new(),
            next_tick: 0,
            used_bytes: 0,
            stats: CacheStats::new(),
        }
    }

    fn bump(&mut self, id: EntryId) {
        let tick = self.next_tick;
        self.next_tick += 1;
        if let Some(entry) = self.entries.by_id_mut(id) {
            let old = entry.tick;
            entry.tick = tick;
            self.recency.update(old, tick, id);
        }
    }

    /// The entry LRU would evict next (the oldest recency tick).  Single
    /// source of truth for `evict_one` and `min_cached_profit`.
    fn victim(&self) -> Option<(u64, EntryId)> {
        self.recency.min()
    }

    /// The eviction order the pre-index implementation derived by scanning:
    /// repeatedly pick the oldest-tick entry until `needed` bytes fit.
    /// Kept as the differential-test oracle.
    #[cfg(test)]
    pub(crate) fn reference_victim_plan(&self, needed: u64) -> Vec<QueryKey> {
        let mut excluded = std::collections::HashSet::new();
        let mut used = self.used_bytes;
        let mut plan = Vec::new();
        while used + needed > self.capacity_bytes {
            let Some((id, entry)) = self
                .entries
                .iter()
                .filter(|(id, _)| !excluded.contains(id))
                .min_by_key(|(_, e)| e.tick)
            else {
                break;
            };
            excluded.insert(id);
            used -= entry.size_bytes;
            plan.push(entry.key.clone());
        }
        plan
    }

    /// The eviction order the index would produce for `needed` incoming
    /// bytes, without mutating the cache.
    #[cfg(test)]
    pub(crate) fn indexed_victim_plan(&self, needed: u64) -> Vec<QueryKey> {
        let mut used = self.used_bytes;
        let mut plan = Vec::new();
        for (_, id) in self.recency.iter() {
            if used + needed <= self.capacity_bytes {
                break;
            }
            let entry = self.entries.by_id(id).expect("indexed entry is cached");
            used -= entry.size_bytes;
            plan.push(entry.key.clone());
        }
        plan
    }
}

impl<V: CachePayload> VictimIndexed for LruCache<V> {
    fn occupied_bytes(&self) -> u64 {
        self.used_bytes
    }

    fn limit_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    fn evict_one(&mut self, _now: Timestamp) -> Option<QueryKey> {
        let (tick, id) = self.victim()?;
        self.recency.remove(tick, id);
        let entry = self.entries.remove(id)?;
        self.used_bytes -= entry.size_bytes;
        self.stats.record_eviction(entry.size_bytes);
        Some(entry.key)
    }
}

impl<V: CachePayload> QueryCache<V> for LruCache<V> {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn get(&mut self, key: &QueryKey, _now: Timestamp) -> Option<&V> {
        match self.entries.find(key) {
            Some(id) => {
                self.bump(id);
                let cost = self.entries.by_id(id).map(|e| e.cost).unwrap_or_default();
                self.stats.record_hit(cost);
                self.entries.by_id(id).map(|e| &e.value)
            }
            None => None,
        }
    }

    fn insert(
        &mut self,
        key: QueryKey,
        value: V,
        cost: ExecutionCost,
        now: Timestamp,
    ) -> InsertOutcome {
        let size_bytes = value.size_bytes();
        self.stats.record_miss(cost);

        if let Some(id) = self.entries.find(&key) {
            if let Some(entry) = self.entries.by_id_mut(id) {
                let old = entry.size_bytes;
                entry.value = value;
                entry.cost = cost;
                entry.size_bytes = size_bytes;
                self.used_bytes = self.used_bytes - old + size_bytes;
            }
            self.bump(id);
            // Restore the capacity invariant if the refreshed payload grew.
            let evicted = self.evict_for(0, now);
            return InsertOutcome::AlreadyCached { evicted };
        }

        if self.capacity_bytes == 0 {
            self.stats.record_admission(false);
            return InsertOutcome::Rejected(RejectReason::ZeroCapacity);
        }
        if size_bytes > self.capacity_bytes {
            self.stats.record_admission(false);
            return InsertOutcome::Rejected(RejectReason::TooLarge);
        }

        let evicted = self.evict_for(size_bytes, now);
        let tick = self.next_tick;
        self.next_tick += 1;
        let id = self.entries.insert(LruEntry {
            key,
            value,
            size_bytes,
            cost,
            tick,
        });
        self.recency.insert(tick, id);
        self.used_bytes += size_bytes;
        self.stats.record_admission(true);
        InsertOutcome::Admitted { evicted }
    }

    fn remove(&mut self, key: &QueryKey) -> bool {
        match self.entries.find(key) {
            Some(id) => {
                let entry = self.entries.remove(id).expect("found entry is live");
                self.recency.remove(entry.tick, id);
                self.used_bytes -= entry.size_bytes;
                true
            }
            None => false,
        }
    }

    fn peek(&self, key: &QueryKey) -> Option<&V> {
        self.entries.get(key).map(|entry| &entry.value)
    }

    fn contains(&self, key: &QueryKey) -> bool {
        self.entries.contains(key)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    fn set_capacity_bytes(&mut self, capacity_bytes: u64, now: Timestamp) -> Vec<QueryKey> {
        self.capacity_bytes = capacity_bytes;
        // Shrinking below occupancy evicts least-recently-used sets first.
        self.evict_for(0, now)
    }

    fn min_cached_profit(&mut self, _now: Timestamp) -> Option<Profit> {
        // LRU's next victim is the least recently used set; report its
        // estimated profit (Eq. 6) since LRU keeps no rate estimate.
        let (_, id) = self.victim()?;
        self.entries
            .by_id(id)
            .map(|e| Profit::estimated(e.cost, e.size_bytes))
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn record_coalesced_reference(&mut self, cost: ExecutionCost) {
        self.stats.record_coalesced(cost);
    }

    fn record_error_reference(&mut self) {
        self.stats.record_fetch_error();
    }

    fn record_stale_reference(&mut self, cost: ExecutionCost) {
        self.stats.record_stale(cost);
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
        self.used_bytes = 0;
    }

    fn cached_keys(&self) -> Vec<QueryKey> {
        self.entries.iter().map(|(_, e)| e.key.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SizedPayload;

    fn ts(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    fn key(name: &str) -> QueryKey {
        QueryKey::new(name.to_owned())
    }

    fn insert(
        cache: &mut LruCache<SizedPayload>,
        name: &str,
        size: u64,
        now: u64,
    ) -> InsertOutcome {
        cache.insert(
            key(name),
            SizedPayload::new(size),
            ExecutionCost::from_blocks(10),
            ts(now),
        )
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut cache = LruCache::new(300);
        insert(&mut cache, "a", 100, 1);
        insert(&mut cache, "b", 100, 2);
        insert(&mut cache, "c", 100, 3);
        // Touch "a" so "b" becomes the LRU victim.
        assert!(cache.get(&key("a"), ts(4)).is_some());
        let outcome = insert(&mut cache, "d", 100, 5);
        assert!(outcome.is_admitted());
        assert_eq!(outcome.evicted(), &[key("b")]);
        assert!(cache.contains(&key("a")));
        assert!(cache.contains(&key("c")));
        assert!(cache.contains(&key("d")));
    }

    #[test]
    fn large_insert_evicts_multiple_victims() {
        let mut cache = LruCache::new(300);
        insert(&mut cache, "a", 100, 1);
        insert(&mut cache, "b", 100, 2);
        insert(&mut cache, "c", 100, 3);
        let outcome = insert(&mut cache, "big", 250, 4);
        assert!(outcome.is_admitted());
        assert_eq!(outcome.evicted().len(), 3);
        assert_eq!(cache.len(), 1);
        assert!(cache.used_bytes() <= 300);
    }

    #[test]
    fn admits_everything_regardless_of_cost() {
        // LRU has no admission control: a cheap huge set displaces everything.
        let mut cache = LruCache::new(1_000);
        for i in 0..10 {
            let name = format!("agg{i}");
            cache.insert(
                key(&name),
                SizedPayload::new(100),
                ExecutionCost::from_blocks(1_000),
                ts(i + 1),
            );
        }
        let outcome = cache.insert(
            key("cheap-projection"),
            SizedPayload::new(1_000),
            ExecutionCost::from_blocks(1),
            ts(100),
        );
        assert!(outcome.is_admitted());
        assert_eq!(outcome.evicted().len(), 10);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn hit_updates_recency_and_stats() {
        let mut cache = LruCache::new(500);
        insert(&mut cache, "a", 100, 1);
        assert!(cache.get(&key("a"), ts(2)).is_some());
        assert!(cache.get(&key("missing"), ts(3)).is_none());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().references, 2);
    }

    #[test]
    fn rejects_oversized_and_zero_capacity() {
        let mut cache = LruCache::new(100);
        assert_eq!(
            insert(&mut cache, "big", 200, 1),
            InsertOutcome::Rejected(RejectReason::TooLarge)
        );
        let mut zero = LruCache::new(0);
        assert_eq!(
            insert(&mut zero, "any", 1, 1),
            InsertOutcome::Rejected(RejectReason::ZeroCapacity)
        );
    }

    #[test]
    fn already_cached_refreshes_size() {
        let mut cache = LruCache::new(500);
        insert(&mut cache, "a", 100, 1);
        let outcome = insert(&mut cache, "a", 200, 2);
        assert_eq!(outcome, InsertOutcome::already_cached());
        assert_eq!(cache.used_bytes(), 200);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets_contents() {
        let mut cache = LruCache::new(500);
        insert(&mut cache, "a", 100, 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
        insert(&mut cache, "b", 100, 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn used_bytes_never_exceeds_capacity() {
        let mut cache = LruCache::new(1_000);
        for i in 0..300u64 {
            let name = format!("q{}", i % 41);
            insert(&mut cache, &name, 60 + (i % 11) * 40, i);
            assert!(cache.used_bytes() <= cache.capacity_bytes());
        }
    }
}
