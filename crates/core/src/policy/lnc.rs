//! LNC-R / LNC-RA: the WATCHMAN replacement and admission policies (paper §2).
//!
//! * **LNC-R** (Least Normalized Cost Replacement) evicts cached retrieved
//!   sets in ascending order of profit `λᵢ·cᵢ/sᵢ`, considering sets with
//!   fewer reference samples first (their rate estimates are less reliable).
//! * **LNC-A** (Least Normalized Cost Admission) admits a newly retrieved set
//!   only if its profit exceeds the aggregate profit of the sets it would
//!   displace; first-time sets are judged by estimated profit `cᵢ/sᵢ`.
//! * **LNC-RA** is the combination of the two; it is the policy WATCHMAN
//!   deploys, and the one evaluated in Figures 3–6 of the paper.
//!
//! [`LncCache`] implements all three: the admission algorithm can be turned
//! off in [`LncConfig`] to obtain plain LNC-R, which then admits every set
//! that fits (like a buffer manager would).
//!
//! # The victim ranking
//!
//! The paper's §3 sketches a priority-queue implementation of LNC-R, but an
//! exact profit order cannot live in a statically keyed index: the rate
//! estimate `λᵢ = K/(now − t_K)` (Eq. 3) re-evaluates at every decision
//! point, and the profits of two untouched sets can *cross* as `now`
//! advances (their profit curves are hyperbolas with different poles).  The
//! cache therefore keeps a [`VictimRanking`] — the two-level eviction order
//! of Figure 1 (per-sample-count groups, ascending profit within each
//! group) — as an *epoch-cached* structure: it remembers the full order
//! scored at the last decision's timestamp and, on the next decision,
//! re-scores entries in the cached order and repairs the handful of
//! positions that actually changed (profits shift together, so the cached
//! order is nearly sorted) instead of re-deriving the order from scratch.
//! Decisions at an unchanged timestamp reuse the ranking outright.  This
//! keeps victim order bit-identical to the reference sort (asserted by the
//! differential property tests) while removing the per-eviction
//! O(n log n) sort and its allocations.

use crate::clock::Timestamp;
use crate::history::ReferenceHistory;
use crate::index::{EntryId, EntryStore, KeyedEntry};
use crate::key::QueryKey;
use crate::metrics::CacheStats;
use crate::policy::{InsertOutcome, QueryCache, RejectReason};
use crate::profit::Profit;
use crate::retained::{RetainedInfo, RetainedStore};
use crate::value::{CachePayload, ExecutionCost};

/// Configuration of an [`LncCache`].
#[derive(Debug, Clone, PartialEq)]
pub struct LncConfig {
    /// Cache capacity in bytes.  Use [`LncConfig::unbounded`] for the
    /// infinite-cache experiments.
    pub capacity_bytes: u64,
    /// Number of reference timestamps retained per set (the `K` of Eq. 3).
    pub k: usize,
    /// Whether the LNC-A admission test is applied (true → LNC-RA,
    /// false → LNC-R).
    pub admission: bool,
    /// Whether reference information of evicted / rejected sets is retained
    /// (paper §2.4).  Disabling this reproduces the starvation behaviour the
    /// paper warns about and is exposed for ablation experiments.
    pub retain_reference_info: bool,
    /// Hard bound on the number of retained reference-information entries.
    pub max_retained_entries: usize,
}

impl LncConfig {
    /// The default hard bound on retained reference-information entries.
    pub const DEFAULT_MAX_RETAINED: usize = 16_384;

    /// LNC-RA with the paper's default window of `K = 4` and retained
    /// reference information enabled.
    pub fn lnc_ra(capacity_bytes: u64) -> Self {
        LncConfig {
            capacity_bytes,
            k: 4,
            admission: true,
            retain_reference_info: true,
            max_retained_entries: Self::DEFAULT_MAX_RETAINED,
        }
    }

    /// LNC-R (no admission control) with `K = 4`.
    pub fn lnc_r(capacity_bytes: u64) -> Self {
        LncConfig {
            admission: false,
            ..Self::lnc_ra(capacity_bytes)
        }
    }

    /// Returns the configuration with a different reference window `K`.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k.max(1);
        self
    }

    /// Returns the configuration with retained reference information enabled
    /// or disabled.
    pub fn with_retained_info(mut self, enabled: bool) -> Self {
        self.retain_reference_info = enabled;
        self
    }

    /// An effectively infinite cache (used by the Figure 2 experiment).
    pub fn unbounded() -> Self {
        Self::lnc_ra(u64::MAX)
    }
}

/// A cached retrieved set together with the statistics LNC-R needs.
#[derive(Debug, Clone)]
struct LncEntry<V> {
    key: QueryKey,
    value: V,
    size_bytes: u64,
    cost: ExecutionCost,
    history: ReferenceHistory,
    /// Admission sequence number; distinguishes this entry from a later one
    /// reusing the same [`EntryId`] slot, so stale ranking items are
    /// detected exactly.
    seq: u64,
}

impl<V> LncEntry<V> {
    fn profit(&self, now: Timestamp) -> Profit {
        match self.history.rate(now) {
            Some(rate) => Profit::of_set(rate, self.cost, self.size_bytes),
            None => Profit::ZERO,
        }
    }
}

impl<V> KeyedEntry for LncEntry<V> {
    fn key(&self) -> &QueryKey {
        &self.key
    }
}

/// One cached set's position data inside the [`VictimRanking`].
#[derive(Debug, Clone, Copy)]
struct RankedSet {
    /// Number of retained reference samples — the Figure 1 group: fewer
    /// samples evict first.
    samples: usize,
    /// Profit `λ·c/s` scored at the ranking's epoch.
    profit: Profit,
    id: EntryId,
    /// The entry's admission sequence (stale-item detection).
    seq: u64,
    size_bytes: u64,
}

impl RankedSet {
    /// The eviction order: ascending `(samples, profit)`, slot order for
    /// exact ties — precisely the order of the reference stable sort.
    fn rank(&self) -> (usize, Profit, EntryId) {
        (self.samples, self.profit, self.id)
    }
}

/// The epoch-cached LNC-R eviction order (see the module docs).
///
/// `ranked` holds every cached set in ascending `(samples, profit, id)`
/// order *as scored at `epoch`*, possibly interleaved with stale items whose
/// entries have since been evicted or re-admitted (detected by sequence
/// mismatch and compacted on the next rescore).  `incoming` lists sets
/// admitted since the last rescore; `dirty` records whether any score input
/// (a reference history, a refreshed payload, membership) changed.
#[derive(Debug, Clone, Default)]
struct VictimRanking {
    ranked: Vec<RankedSet>,
    incoming: Vec<(EntryId, u64)>,
    epoch: Option<Timestamp>,
    dirty: bool,
}

/// When a rescore finds more than this many out-of-place sets it stops
/// repairing (each repair shifts a slice) and falls back to a full sort.
const REPAIR_BUDGET: usize = 48;

impl VictimRanking {
    /// Whether the scores of the *ranked* entries are exact for decisions at
    /// `now` (sets admitted since the last rescore may still sit in
    /// `incoming`; they carry their own scores on demand).
    fn scores_current(&self, now: Timestamp) -> bool {
        self.epoch == Some(now) && !self.dirty
    }

    /// Whether the cached order is exactly the full eviction order at `now`.
    fn is_current(&self, now: Timestamp) -> bool {
        self.scores_current(now) && self.incoming.is_empty()
    }

    /// Marks the scores stale (membership is unchanged).
    fn touch(&mut self) {
        self.dirty = true;
    }

    /// Registers a newly admitted entry.  The ranked order and its scores
    /// stay valid; the newcomer waits in `incoming` until the next rescore.
    fn admit(&mut self, id: EntryId, seq: u64) {
        self.incoming.push((id, seq));
    }

    /// Unlinks an eviction that removed exactly the first `victims.len()`
    /// ranked sets (victim selections are always ranking prefixes), keeping
    /// the survivors' scores current.  Falls back to marking the ranking
    /// dirty if the removal does not line up with the prefix.
    fn evict_prefix(&mut self, victims: &[EntryId], now: Timestamp) {
        let prefix_current = self.scores_current(now)
            && victims.len() <= self.ranked.len()
            && self
                .ranked
                .iter()
                .zip(victims)
                .all(|(item, &id)| item.id == id);
        if prefix_current {
            self.ranked.drain(..victims.len());
        } else {
            self.touch();
        }
    }

    fn clear(&mut self) {
        self.ranked.clear();
        self.incoming.clear();
        self.epoch = None;
        self.dirty = false;
    }
}

/// The LNC-R / LNC-RA retrieved-set cache.
#[derive(Debug, Clone)]
pub struct LncCache<V> {
    config: LncConfig,
    entries: EntryStore<LncEntry<V>>,
    retained: RetainedStore,
    ranking: VictimRanking,
    next_seq: u64,
    used_bytes: u64,
    stats: CacheStats,
}

impl<V: CachePayload> LncCache<V> {
    /// Creates a cache with the given configuration.
    pub fn new(config: LncConfig) -> Self {
        let max_retained = config.max_retained_entries.max(1);
        LncCache {
            config,
            entries: EntryStore::new(),
            retained: RetainedStore::new(max_retained),
            ranking: VictimRanking::default(),
            next_seq: 0,
            used_bytes: 0,
            stats: CacheStats::new(),
        }
    }

    /// Creates an LNC-RA cache with capacity `capacity_bytes` and `K = 4`.
    pub fn lnc_ra(capacity_bytes: u64) -> Self {
        Self::new(LncConfig::lnc_ra(capacity_bytes))
    }

    /// Creates an LNC-R cache (no admission control) with `K = 4`.
    pub fn lnc_r(capacity_bytes: u64) -> Self {
        Self::new(LncConfig::lnc_r(capacity_bytes))
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &LncConfig {
        &self.config
    }

    /// Number of retained reference-information entries currently held.
    pub fn retained_entries(&self) -> usize {
        self.retained.len()
    }

    /// Approximate bytes of metadata used by retained reference information.
    pub fn retained_metadata_bytes(&self) -> u64 {
        self.retained.metadata_bytes()
    }

    /// The profit of the cached set for `key` at time `now`, if cached.
    pub fn profit_of(&self, key: &QueryKey, now: Timestamp) -> Option<Profit> {
        self.entries.get(key).map(|e| e.profit(now))
    }

    /// The smallest profit among cached sets at time `now`, or `None` if the
    /// cache is empty.
    pub fn min_cached_profit(&self, now: Timestamp) -> Option<Profit> {
        self.entries.iter().map(|(_, e)| e.profit(now)).min()
    }

    /// Removes the retrieved set for `key` from the cache, returning its
    /// payload if it was resident.
    ///
    /// This is the *invalidation* entry point used by the cache-coherence
    /// machinery ([`crate::coherence`]): when the warehouse manager applies an
    /// update that affects a cached query, the stale retrieved set is removed
    /// so the next reference recomputes it.  Unlike an eviction, an
    /// invalidation does not retain the set's reference information (the
    /// update may have changed the set's size and cost) and is not counted in
    /// the eviction statistics.
    pub fn remove(&mut self, key: &QueryKey) -> Option<V> {
        let entry = self.entries.remove_by_key(key)?;
        self.used_bytes -= entry.size_bytes;
        self.ranking.touch();
        Some(entry.value)
    }

    /// Brings the victim ranking up to date for decisions at time `now`.
    ///
    /// Compacts stale items, folds in newly admitted sets, re-scores every
    /// cached set's profit at `now` in the cached order and repairs the
    /// order where profits crossed since the previous epoch.  A clean
    /// ranking at the same timestamp returns immediately.
    fn rescore(&mut self, now: Timestamp) {
        if self.ranking.is_current(now) {
            return;
        }
        let ranking = &mut self.ranking;
        ranking
            .ranked
            .extend(ranking.incoming.drain(..).map(|(id, seq)| RankedSet {
                samples: 0,
                profit: Profit::ZERO,
                id,
                seq,
                size_bytes: 0,
            }));
        let entries = &self.entries;
        ranking
            .ranked
            .retain_mut(|item| match entries.by_id(item.id) {
                Some(entry) if entry.seq == item.seq => {
                    item.samples = entry.history.sample_count();
                    item.profit = entry.profit(now);
                    item.size_bytes = entry.size_bytes;
                    true
                }
                _ => false,
            });
        debug_assert_eq!(ranking.ranked.len(), self.entries.len());

        // The previous epoch's order is a near-sorted permutation of the
        // order at `now`: repair the few crossings by binary insertion, or
        // give up and sort when the epochs are too far apart.  Either path
        // ends in the unique ascending `(samples, profit, id)` order — the
        // reference order of a stable sort over slot-ordered entries.
        let ranked = &mut ranking.ranked;
        let mut out_of_place = 0usize;
        let mut i = 1;
        while i < ranked.len() {
            if ranked[i - 1].rank() <= ranked[i].rank() {
                i += 1;
                continue;
            }
            out_of_place += 1;
            if out_of_place > REPAIR_BUDGET {
                ranked.sort_unstable_by_key(RankedSet::rank);
                break;
            }
            let moved = ranked[i].rank();
            let pos = ranked[..i].partition_point(|r| r.rank() <= moved);
            ranked[pos..=i].rotate_right(1);
            i += 1;
        }

        ranking.epoch = Some(now);
        ranking.dirty = false;
    }

    /// Selects replacement candidates to free at least `needed` bytes
    /// (the LNC-R procedure of Figure 1).
    ///
    /// Cached sets are grouped by the number of retained reference samples
    /// (1, 2, …, K); within each group they are ordered by ascending profit;
    /// the groups are concatenated in order of increasing sample count and
    /// the minimal prefix whose sizes sum to at least `needed` is returned.
    /// The prefix is read off the maintained [`VictimRanking`].
    ///
    /// Returns `None` if even evicting every cached set would not free
    /// `needed` bytes.
    pub(crate) fn select_victims(&mut self, needed: u64, now: Timestamp) -> Option<Vec<EntryId>> {
        if needed == 0 {
            return Some(Vec::new());
        }
        // The occupancy counter is maintained on every admission and
        // removal; re-deriving it by summing all entry sizes (as this check
        // originally did) was an O(n) walk per eviction for a number the
        // cache already knows.
        debug_assert_eq!(
            self.used_bytes,
            self.entries.iter().map(|(_, e)| e.size_bytes).sum::<u64>(),
            "maintained occupancy diverged from entry sizes"
        );
        if self.used_bytes < needed {
            return None;
        }
        self.rescore(now);
        let mut victims = Vec::new();
        let mut freed = 0u64;
        for item in &self.ranking.ranked {
            if freed >= needed {
                break;
            }
            victims.push(item.id);
            freed += item.size_bytes;
        }
        Some(victims)
    }

    /// The reference victim selection this module shipped with — an O(n)
    /// collect plus an O(n log n) stable sort per decision — kept verbatim
    /// as the differential-test oracle for the ranking-based path.
    #[cfg(test)]
    pub(crate) fn select_victims_reference(
        &self,
        needed: u64,
        now: Timestamp,
    ) -> Option<Vec<EntryId>> {
        if needed == 0 {
            return Some(Vec::new());
        }
        let total: u64 = self.entries.iter().map(|(_, e)| e.size_bytes).sum();
        if total < needed {
            return None;
        }
        // (sample_count, profit, id, size) for every cached set.
        let mut ranked: Vec<(usize, Profit, EntryId, u64)> = self
            .entries
            .iter()
            .map(|(id, e)| (e.history.sample_count(), e.profit(now), id, e.size_bytes))
            .collect();
        ranked.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut victims = Vec::new();
        let mut freed = 0u64;
        for (_, _, id, size) in ranked {
            if freed >= needed {
                break;
            }
            victims.push(id);
            freed += size;
        }
        Some(victims)
    }

    /// The keys of the given cached entries, in order (differential tests
    /// translate victim-id plans into the key sequences evictions report).
    #[cfg(test)]
    pub(crate) fn keys_of(&self, ids: &[EntryId]) -> Vec<QueryKey> {
        ids.iter()
            .filter_map(|&id| self.entries.by_id(id).map(|e| e.key.clone()))
            .collect()
    }

    /// [`QueryCache::shrink_loss`] computed over the reference victim
    /// selection — the differential-test oracle.
    #[cfg(test)]
    pub(crate) fn shrink_loss_reference(&self, bytes: u64, now: Timestamp) -> Option<Profit> {
        let free = self.config.capacity_bytes.saturating_sub(self.used_bytes);
        if bytes <= free || self.entries.is_empty() {
            return Some(Profit::ZERO);
        }
        let needed = (bytes - free).min(self.used_bytes);
        let victims = self.select_victims_reference(needed, now)?;
        Some(Profit::of_list(victims.iter().filter_map(|&id| {
            self.entries
                .by_id(id)
                .map(|e| (e.history.rate(now).unwrap_or(0.0), e.cost, e.size_bytes))
        })))
    }

    /// [`QueryCache::grow_gain`] computed by independently collecting and
    /// sorting the retained entries — the differential-test oracle.
    #[cfg(test)]
    pub(crate) fn grow_gain_reference(&self, bytes: u64, now: Timestamp) -> Option<Profit> {
        if bytes == 0 || self.retained.is_empty() {
            return Some(Profit::ZERO);
        }
        let mut candidates: Vec<(Profit, u64, f64, ExecutionCost, u64)> = self
            .retained
            .iter()
            .map(|info| {
                (
                    info.profit(now),
                    info.key.signature().value(),
                    info.history.rate(now).unwrap_or(0.0),
                    info.cost,
                    info.size_bytes,
                )
            })
            .collect();
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut free = bytes;
        let mut packed = Vec::new();
        for (_, _, rate, cost, size) in candidates {
            if size <= free {
                free -= size;
                packed.push((rate, cost, size));
            }
        }
        Some(Profit::of_list(packed))
    }

    /// Evicts the given entries, retaining their reference information when
    /// configured to do so.  Returns the evicted keys.
    fn evict(&mut self, victims: Vec<EntryId>, now: Timestamp) -> Vec<QueryKey> {
        // Victim selections are prefixes of the ranking, so the survivors'
        // order and scores stay current through the eviction.
        self.ranking.evict_prefix(&victims, now);
        let mut evicted = Vec::with_capacity(victims.len());
        for id in victims {
            if let Some(entry) = self.entries.remove(id) {
                self.used_bytes -= entry.size_bytes;
                self.stats.record_eviction(entry.size_bytes);
                evicted.push(entry.key.clone());
                if self.config.retain_reference_info {
                    self.retained.insert(
                        RetainedInfo {
                            key: entry.key,
                            size_bytes: entry.size_bytes,
                            cost: entry.cost,
                            history: entry.history,
                        },
                        now,
                    );
                }
            }
        }
        evicted
    }

    /// Applies the §2.4 retention policy: drop retained histories whose
    /// profit is below the least profit among cached sets.
    fn purge_retained(&mut self, now: Timestamp) {
        if !self.config.retain_reference_info || self.retained.is_empty() {
            return;
        }
        // Read the threshold through the trait impl: right after an
        // admission the ranking's scores are still current, so the minimum
        // comes from the group heads instead of a full profit scan.
        if let Some(min_profit) = QueryCache::min_cached_profit(self, now) {
            self.retained.purge_below(min_profit, now);
        }
    }

    /// Builds the reference history to use for a set being admitted: the
    /// retained history if one exists (updated with the current reference if
    /// it has not been recorded yet), otherwise a fresh history containing
    /// only the current reference.
    fn admission_history(&mut self, key: &QueryKey, now: Timestamp) -> (ReferenceHistory, bool) {
        match self.retained.take(key) {
            Some(mut info) => {
                if info.history.last_reference() != Some(now) {
                    info.history.record(now);
                }
                (info.history, true)
            }
            None => (
                ReferenceHistory::with_first_reference(self.config.k, now),
                false,
            ),
        }
    }

    /// Records an admission rejection: the reference information of the
    /// rejected set is retained so that it may be admitted later once enough
    /// references accumulate (paper §2.4, last paragraph).
    fn retain_rejected(
        &mut self,
        key: QueryKey,
        size_bytes: u64,
        cost: ExecutionCost,
        history: ReferenceHistory,
        now: Timestamp,
    ) {
        if self.config.retain_reference_info {
            self.retained.insert(
                RetainedInfo {
                    key,
                    size_bytes,
                    cost,
                    history,
                },
                now,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn admit(
        &mut self,
        key: QueryKey,
        value: V,
        size_bytes: u64,
        cost: ExecutionCost,
        history: ReferenceHistory,
        evicted: Vec<QueryKey>,
        now: Timestamp,
    ) -> InsertOutcome {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = self.entries.insert(LncEntry {
            key,
            value,
            size_bytes,
            cost,
            history,
            seq,
        });
        self.ranking.admit(id, seq);
        self.used_bytes += size_bytes;
        self.stats.record_admission(true);
        debug_assert!(self.used_bytes <= self.config.capacity_bytes);
        self.purge_retained(now);
        InsertOutcome::Admitted { evicted }
    }
}

impl<V: CachePayload> QueryCache<V> for LncCache<V> {
    fn name(&self) -> &'static str {
        if self.config.admission {
            "LNC-RA"
        } else {
            "LNC-R"
        }
    }

    fn get(&mut self, key: &QueryKey, now: Timestamp) -> Option<&V> {
        if let Some(entry) = self.entries.get_mut(key) {
            // Skip duplicate timestamps: a single-flight waiter retrying
            // after an abandoned flight re-issues the same logical
            // reference, and its first pass may already sit in the history
            // via promoted retained information (§2.4).
            let mut touched = false;
            if entry.history.last_reference() != Some(now) {
                entry.history.record(now);
                touched = true;
            }
            let cost = entry.cost;
            if touched {
                self.ranking.touch();
            }
            self.stats.record_hit(cost);
            // Re-borrow immutably for the return value.
            return self.entries.get(key).map(|e| &e.value);
        }
        // Miss: record the reference against retained information (if any) so
        // that the admission decision that typically follows sees it.
        if self.config.retain_reference_info {
            self.retained.record_reference(key, now);
        }
        None
    }

    fn insert(
        &mut self,
        key: QueryKey,
        value: V,
        cost: ExecutionCost,
        now: Timestamp,
    ) -> InsertOutcome {
        let size_bytes = value.size_bytes();
        self.stats.record_miss(cost);

        // Already cached: refresh the payload and cost, count the reference.
        if let Some(entry) = self.entries.get_mut(&key) {
            let old_size = entry.size_bytes;
            entry.value = value;
            entry.cost = cost;
            entry.size_bytes = size_bytes;
            if entry.history.last_reference() != Some(now) {
                entry.history.record(now);
            }
            self.ranking.touch();
            self.used_bytes = self.used_bytes - old_size + size_bytes;
            // If the refreshed payload grew, restore the capacity invariant by
            // evicting the lowest-profit sets (possibly the refreshed one).
            let mut evicted = Vec::new();
            if self.used_bytes > self.config.capacity_bytes {
                let needed = self.used_bytes - self.config.capacity_bytes;
                if let Some(victims) = self.select_victims(needed, now) {
                    evicted = self.evict(victims, now);
                }
            }
            return InsertOutcome::AlreadyCached { evicted };
        }

        if self.config.capacity_bytes == 0 {
            self.stats.record_admission(false);
            return InsertOutcome::Rejected(RejectReason::ZeroCapacity);
        }
        if size_bytes > self.config.capacity_bytes {
            // The set can never fit; remember its references anyway.
            let (history, _) = self.admission_history(&key, now);
            self.retain_rejected(key, size_bytes, cost, history, now);
            self.stats.record_admission(false);
            return InsertOutcome::Rejected(RejectReason::TooLarge);
        }

        let available = self.config.capacity_bytes - self.used_bytes;
        let (history, had_history) = self.admission_history(&key, now);

        if available >= size_bytes {
            // Enough free space: cache unconditionally (Figure 1, middle case).
            return self.admit(key, value, size_bytes, cost, history, Vec::new(), now);
        }

        // Not enough space: run LNC-R to find replacement candidates.
        let needed = size_bytes - available;
        let victims = match self.select_victims(needed, now) {
            Some(v) => v,
            None => {
                // Cannot free enough space (should not happen given the size
                // check above, but be defensive).
                self.retain_rejected(key, size_bytes, cost, history, now);
                self.stats.record_admission(false);
                return InsertOutcome::Rejected(RejectReason::TooLarge);
            }
        };

        let admit = if !self.config.admission {
            // Plain LNC-R admits everything that fits.
            true
        } else if had_history && history.sample_count() > 1 {
            // Past reference information available: compare real profits
            // (Eq. 4 / Eq. 5).
            let candidate_profit = Profit::of_list(victims.iter().filter_map(|&id| {
                self.entries
                    .by_id(id)
                    .map(|e| (e.history.rate(now).unwrap_or(0.0), e.cost, e.size_bytes))
            }));
            let own_rate = history.rate(now).unwrap_or(0.0);
            let own_profit = Profit::of_set(own_rate, cost, size_bytes);
            own_profit > candidate_profit
        } else {
            // First-time set: compare estimated profits (Eq. 7 / Eq. 8).
            let candidate_eprofit = Profit::estimated_of_list(
                victims
                    .iter()
                    .filter_map(|&id| self.entries.by_id(id).map(|e| (e.cost, e.size_bytes))),
            );
            let own_eprofit = Profit::estimated(cost, size_bytes);
            own_eprofit > candidate_eprofit
        };

        if !admit {
            self.retain_rejected(key, size_bytes, cost, history, now);
            self.stats.record_admission(false);
            self.purge_retained(now);
            return InsertOutcome::Rejected(RejectReason::AdmissionTest);
        }

        let evicted = self.evict(victims, now);
        self.admit(key, value, size_bytes, cost, history, evicted, now)
    }

    fn remove(&mut self, key: &QueryKey) -> bool {
        LncCache::remove(self, key).is_some()
    }

    fn peek(&self, key: &QueryKey) -> Option<&V> {
        self.entries.get(key).map(|entry| &entry.value)
    }

    fn contains(&self, key: &QueryKey) -> bool {
        self.entries.contains(key)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    fn capacity_bytes(&self) -> u64 {
        self.config.capacity_bytes
    }

    fn set_capacity_bytes(&mut self, capacity_bytes: u64, now: Timestamp) -> Vec<QueryKey> {
        self.config.capacity_bytes = capacity_bytes;
        if self.used_bytes <= capacity_bytes {
            return Vec::new();
        }
        // Shrink below occupancy: run LNC-R over the full cache to free the
        // overshoot, lowest-profit victims first.
        let needed = self.used_bytes - capacity_bytes;
        match self.select_victims(needed, now) {
            Some(victims) => {
                let evicted = self.evict(victims, now);
                debug_assert!(self.used_bytes <= self.config.capacity_bytes);
                evicted
            }
            // Unreachable: evicting everything always frees `needed`.
            None => Vec::new(),
        }
    }

    fn min_cached_profit(&mut self, now: Timestamp) -> Option<Profit> {
        // A ranking with current scores answers from its group heads: within
        // a sample-count group profits ascend, so the minimum over the
        // ranked sets is the smallest group head — O(groups · log n) — plus
        // a direct score of the handful of sets admitted since the last
        // rescore.  This is the path the post-admission §2.4 purge and the
        // engine's rebalancer hit.
        if self.ranking.scores_current(now) {
            debug_assert_eq!(
                self.ranking.ranked.len() + self.ranking.incoming.len(),
                self.entries.len(),
                "a current ranking must cover the cache exactly"
            );
            let ranked = &self.ranking.ranked;
            let mut min: Option<Profit> = None;
            let mut consider = |profit: Profit| {
                min = Some(match min {
                    Some(m) if m <= profit => m,
                    _ => profit,
                });
            };
            let mut i = 0;
            while i < ranked.len() {
                let head = ranked[i];
                consider(head.profit);
                i += ranked[i..].partition_point(|r| r.samples == head.samples);
            }
            for &(id, seq) in &self.ranking.incoming {
                if let Some(entry) = self.entries.by_id(id) {
                    if entry.seq == seq {
                        consider(entry.profit(now));
                    }
                }
            }
            return min;
        }
        // Otherwise fall back to the Eq. 2 scan — cheaper than forcing a
        // full rescore just to read one aggregate.
        LncCache::min_cached_profit(self, now)
    }

    fn max_retained_profit(&mut self, now: Timestamp) -> Option<Profit> {
        self.retained.iter().map(|info| info.profit(now)).max()
    }

    fn shrink_loss(&mut self, bytes: u64, now: Timestamp) -> Option<Profit> {
        // Shrinking into free space costs nothing.
        let free = self.config.capacity_bytes.saturating_sub(self.used_bytes);
        if bytes <= free || self.entries.is_empty() {
            return Some(Profit::ZERO);
        }
        // Price the victims LNC-R would actually pick for this shrink.
        let needed = (bytes - free).min(self.used_bytes);
        let victims = self.select_victims(needed, now)?;
        Some(Profit::of_list(victims.iter().filter_map(|&id| {
            self.entries
                .by_id(id)
                .map(|e| (e.history.rate(now).unwrap_or(0.0), e.cost, e.size_bytes))
        })))
    }

    fn grow_gain(&mut self, bytes: u64, now: Timestamp) -> Option<Profit> {
        if bytes == 0 || self.retained.is_empty() {
            return Some(Profit::ZERO);
        }
        // Greedily pack the most profitable retained (denied-residency) sets
        // into the hypothetical extra capacity.
        let mut free = bytes;
        let mut packed = Vec::new();
        for info in self.retained.ranked_by_profit_desc(now) {
            if info.size_bytes <= free {
                free -= info.size_bytes;
                packed.push((
                    info.history.rate(now).unwrap_or(0.0),
                    info.cost,
                    info.size_bytes,
                ));
            }
        }
        Some(Profit::of_list(packed))
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn record_coalesced_reference(&mut self, cost: ExecutionCost) {
        self.stats.record_coalesced(cost);
    }

    fn record_error_reference(&mut self) {
        self.stats.record_fetch_error();
    }

    fn record_stale_reference(&mut self, cost: ExecutionCost) {
        self.stats.record_stale(cost);
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.retained.clear();
        self.ranking.clear();
        self.used_bytes = 0;
    }

    fn cached_keys(&self) -> Vec<QueryKey> {
        self.entries.iter().map(|(_, e)| e.key.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SizedPayload;

    fn ts(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    fn cost(c: f64) -> ExecutionCost {
        ExecutionCost::from_block_reads(c)
    }

    fn key(name: &str) -> QueryKey {
        QueryKey::new(name.to_owned())
    }

    fn payload(bytes: u64) -> SizedPayload {
        SizedPayload::new(bytes)
    }

    /// Reference a query: get (miss expected) then insert.
    fn reference(
        cache: &mut LncCache<SizedPayload>,
        name: &str,
        size: u64,
        c: f64,
        now: u64,
    ) -> InsertOutcome {
        let k = key(name);
        if cache.get(&k, ts(now)).is_some() {
            return InsertOutcome::already_cached();
        }
        cache.insert(k, payload(size), cost(c), ts(now))
    }

    #[test]
    fn names_reflect_admission_setting() {
        let ra: LncCache<SizedPayload> = LncCache::lnc_ra(100);
        let r: LncCache<SizedPayload> = LncCache::lnc_r(100);
        assert_eq!(ra.name(), "LNC-RA");
        assert_eq!(r.name(), "LNC-R");
    }

    #[test]
    fn get_hit_returns_value_and_updates_stats() {
        let mut cache = LncCache::lnc_ra(1_000);
        assert!(cache.get(&key("q"), ts(1)).is_none());
        cache.insert(key("q"), payload(100), cost(50.0), ts(1));
        assert!(cache.get(&key("q"), ts(2)).is_some());
        assert_eq!(cache.stats().hits, 1);
        // One miss (counted at insert time) plus one hit.
        assert_eq!(cache.stats().references, 2);
        assert!((cache.stats().saved_cost - 50.0).abs() < 1e-9);
    }

    #[test]
    fn insert_fits_in_free_space_without_eviction() {
        let mut cache = LncCache::lnc_ra(1_000);
        let outcome = reference(&mut cache, "a", 400, 10.0, 1);
        assert!(outcome.is_admitted());
        assert!(outcome.evicted().is_empty());
        assert_eq!(cache.used_bytes(), 400);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut cache = LncCache::lnc_ra(0);
        let outcome = reference(&mut cache, "a", 1, 10.0, 1);
        assert_eq!(outcome, InsertOutcome::Rejected(RejectReason::ZeroCapacity));
        assert!(cache.is_empty());
    }

    #[test]
    fn oversized_set_is_rejected_as_too_large() {
        let mut cache = LncCache::lnc_ra(100);
        let outcome = reference(&mut cache, "huge", 500, 10.0, 1);
        assert_eq!(outcome, InsertOutcome::Rejected(RejectReason::TooLarge));
    }

    #[test]
    fn reinsert_of_cached_key_refreshes_in_place() {
        let mut cache = LncCache::lnc_ra(1_000);
        reference(&mut cache, "a", 400, 10.0, 1);
        let outcome = cache.insert(key("a"), payload(300), cost(20.0), ts(2));
        assert_eq!(outcome, InsertOutcome::already_cached());
        assert_eq!(cache.used_bytes(), 300);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn admission_rejects_cheap_large_set_that_would_displace_valuable_ones() {
        // Cache full of small, expensive, frequently referenced aggregates.
        let mut cache = LncCache::lnc_ra(1_000);
        for i in 0..10 {
            let name = format!("agg{i}");
            reference(&mut cache, &name, 100, 1_000.0, i + 1);
        }
        // Reference them again so they have healthy rate estimates.
        for i in 0..10 {
            let name = format!("agg{i}");
            assert!(cache.get(&key(&name), ts(100 + i)).is_some());
        }
        assert_eq!(cache.used_bytes(), 1_000);
        // A cheap projection with a huge retrieved set shows up.
        let outcome = reference(&mut cache, "projection", 900, 10.0, 200);
        assert_eq!(
            outcome,
            InsertOutcome::Rejected(RejectReason::AdmissionTest),
            "LNC-A must not let a cheap large set evict expensive aggregates"
        );
        assert_eq!(cache.len(), 10);
    }

    #[test]
    fn lnc_r_without_admission_accepts_the_same_set() {
        let mut cache = LncCache::lnc_r(1_000);
        for i in 0..10 {
            let name = format!("agg{i}");
            reference(&mut cache, &name, 100, 1_000.0, i + 1);
        }
        let outcome = reference(&mut cache, "projection", 900, 10.0, 200);
        assert!(outcome.is_admitted(), "LNC-R admits whatever fits");
        assert!(cache.used_bytes() <= 1_000);
    }

    #[test]
    fn admission_accepts_expensive_small_set() {
        let mut cache = LncCache::lnc_ra(1_000);
        // Fill with mediocre sets.
        for i in 0..10 {
            let name = format!("med{i}");
            reference(&mut cache, &name, 100, 50.0, i + 1);
        }
        // An expensive small aggregate should displace one of them.
        let outcome = reference(&mut cache, "expensive", 100, 10_000.0, 50);
        assert!(outcome.is_admitted());
        assert!(!outcome.evicted().is_empty());
        assert!(cache.contains(&key("expensive")));
        assert!(cache.used_bytes() <= 1_000);
    }

    #[test]
    fn eviction_prefers_sets_with_fewer_reference_samples() {
        let mut cache = LncCache::new(LncConfig::lnc_r(300).with_k(3));
        // "old" has 3 reference samples, "new" only 1; both same size/cost.
        reference(&mut cache, "old", 100, 100.0, 1);
        cache.get(&key("old"), ts(10));
        cache.get(&key("old"), ts(20));
        reference(&mut cache, "new", 100, 100.0, 25);
        reference(&mut cache, "other", 100, 100.0, 30);
        assert_eq!(cache.used_bytes(), 300);
        // Force an eviction; "new"/"other" (1 sample) must go before "old".
        let outcome = reference(&mut cache, "incoming", 150, 100.0, 40);
        assert!(outcome.is_admitted());
        assert!(
            cache.contains(&key("old")),
            "the set with the full reference history must survive"
        );
    }

    #[test]
    fn victims_are_lowest_profit_first_within_same_sample_count() {
        let mut cache = LncCache::lnc_r(300);
        reference(&mut cache, "cheap", 100, 1.0, 1);
        reference(&mut cache, "pricey", 100, 1_000.0, 2);
        reference(&mut cache, "mid", 100, 100.0, 3);
        // Need 100 bytes → exactly one victim → must be "cheap".
        let outcome = reference(&mut cache, "incoming", 100, 500.0, 10);
        assert!(outcome.is_admitted());
        assert_eq!(outcome.evicted(), &[key("cheap")]);
        assert!(cache.contains(&key("pricey")));
        assert!(cache.contains(&key("mid")));
    }

    #[test]
    fn retained_reference_info_enables_later_admission() {
        // A small expensive set is initially rejected because the cache is
        // full of equally good sets; after repeated references its retained
        // history gives it a higher profit and it gets admitted.
        let mut cache = LncCache::new(LncConfig::lnc_ra(400).with_k(2));
        for i in 0..4 {
            let name = format!("resident{i}");
            reference(&mut cache, &name, 100, 100.0, i + 1);
            cache.get(&key(&name), ts(10 + i));
        }
        // First attempt: same cost/size as residents → not strictly better →
        // rejected, but its reference info is retained.
        let first = reference(&mut cache, "contender", 100, 100.0, 1_000);
        assert_eq!(first, InsertOutcome::Rejected(RejectReason::AdmissionTest));
        assert!(cache.retained_entries() > 0);
        // Re-reference the contender several times in quick succession: its
        // rate estimate becomes much higher than the residents'.
        let mut outcome = InsertOutcome::already_cached();
        for t in 0..5u64 {
            let now = 1_010 + t;
            if cache.get(&key("contender"), ts(now)).is_none() {
                outcome = cache.insert(key("contender"), payload(100), cost(100.0), ts(now));
            }
        }
        assert!(
            outcome.is_admitted(),
            "retained reference information must eventually win admission, got {outcome:?}"
        );
        assert!(cache.contains(&key("contender")));
    }

    #[test]
    fn disabling_retained_info_keeps_store_empty() {
        let mut cache: LncCache<SizedPayload> =
            LncCache::new(LncConfig::lnc_ra(200).with_retained_info(false));
        reference(&mut cache, "a", 150, 100.0, 1);
        reference(&mut cache, "b", 150, 1.0, 2); // rejected or evicts a
        reference(&mut cache, "c", 150, 1.0, 3);
        assert_eq!(cache.retained_entries(), 0);
        assert_eq!(cache.retained_metadata_bytes(), 0);
    }

    #[test]
    fn used_bytes_never_exceeds_capacity() {
        let mut cache = LncCache::lnc_ra(1_000);
        for i in 0..200u64 {
            let name = format!("q{}", i % 37);
            let size = 50 + (i % 13) * 30;
            let c = 10.0 + (i % 7) as f64 * 100.0;
            let _ = reference(&mut cache, &name, size, c, i + 1);
            assert!(cache.used_bytes() <= cache.capacity_bytes());
        }
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut cache = LncCache::new(LncConfig::unbounded());
        for i in 0..100u64 {
            let name = format!("q{i}");
            let outcome = reference(&mut cache, &name, 1_000_000, 10.0, i + 1);
            assert!(outcome.is_admitted());
            assert!(outcome.evicted().is_empty());
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn clear_removes_entries_but_keeps_stats() {
        let mut cache = LncCache::lnc_ra(1_000);
        reference(&mut cache, "a", 100, 10.0, 1);
        cache.get(&key("a"), ts(2));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
        assert_eq!(cache.stats().hits, 1);
        assert!(!cache.contains(&key("a")));
    }

    #[test]
    fn cached_keys_lists_all_entries() {
        let mut cache = LncCache::lnc_ra(1_000);
        reference(&mut cache, "a", 100, 10.0, 1);
        reference(&mut cache, "b", 100, 10.0, 2);
        let mut keys: Vec<String> = cache
            .cached_keys()
            .into_iter()
            .map(|k| k.text().to_owned())
            .collect();
        keys.sort();
        assert_eq!(keys, vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn utilization_reflects_occupancy() {
        let mut cache = LncCache::lnc_ra(1_000);
        assert_eq!(cache.utilization(), 0.0);
        reference(&mut cache, "a", 250, 10.0, 1);
        assert!((cache.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn set_capacity_shrink_evicts_lowest_profit_first() {
        let mut cache = LncCache::lnc_r(600);
        // Same size and reference pattern, ascending cost → ascending profit.
        reference(&mut cache, "cheap", 200, 1.0, 1);
        reference(&mut cache, "mid", 200, 100.0, 2);
        reference(&mut cache, "pricey", 200, 10_000.0, 3);
        for t in [10u64, 20, 30] {
            cache.get(&key("cheap"), ts(t));
            cache.get(&key("mid"), ts(t + 1));
            cache.get(&key("pricey"), ts(t + 2));
        }
        // Shrink so exactly one set must go: it must be the lowest-profit one.
        let evicted = QueryCache::set_capacity_bytes(&mut cache, 400, ts(40));
        assert_eq!(evicted, vec![key("cheap")]);
        assert!(cache.contains(&key("mid")));
        assert!(cache.contains(&key("pricey")));
        assert_eq!(cache.capacity_bytes(), 400);
        // The victim's reference information is retained (§2.4), so it can
        // win its way back in later.
        assert!(cache.retained_entries() > 0);
        // Shrink below the next set: "mid" goes before "pricey".
        let evicted = QueryCache::set_capacity_bytes(&mut cache, 200, ts(41));
        assert_eq!(evicted, vec![key("mid")]);
        assert_eq!(cache.used_bytes(), 200);
    }

    #[test]
    fn grow_gain_prices_retained_sets() {
        // Two residents whose aggregate profit rejects the contender while
        // the contender's own profit still clears the §2.4 retention bar
        // (it must beat only the *minimum* cached profit to stay retained).
        let mut cache = LncCache::lnc_ra(400);
        reference(&mut cache, "low", 200, 100.0, 1);
        reference(&mut cache, "high", 200, 10_000.0, 1);
        let outcome = cache.insert(key("contender"), payload(400), cost(400.0), ts(11));
        assert_eq!(
            outcome,
            InsertOutcome::Rejected(RejectReason::AdmissionTest)
        );
        assert_eq!(
            cache.retained_entries(),
            1,
            "the contender must be retained"
        );

        let gain = QueryCache::grow_gain(&mut cache, 400, ts(12)).unwrap();
        assert!(
            gain > Profit::ZERO,
            "a retained denied set must make extra capacity valuable"
        );
        // The retained set does not fit a 10-byte grant → no gain.
        let none = QueryCache::grow_gain(&mut cache, 10, ts(12)).unwrap();
        assert_eq!(none, Profit::ZERO);
        // Shrink loss prices the would-be victims.
        let loss = QueryCache::shrink_loss(&mut cache, 200, ts(12)).unwrap();
        assert!(loss > Profit::ZERO);
    }

    #[test]
    fn min_cached_profit_matches_lowest_entry() {
        let mut cache = LncCache::lnc_ra(10_000);
        reference(&mut cache, "low", 1_000, 1.0, 1);
        reference(&mut cache, "high", 10, 1_000.0, 2);
        let now = ts(100);
        let min = cache.min_cached_profit(now).unwrap();
        assert_eq!(min, cache.profit_of(&key("low"), now).unwrap());
        assert!(min < cache.profit_of(&key("high"), now).unwrap());
    }

    #[test]
    fn ranking_fast_path_matches_scan_after_rescore() {
        let mut cache = LncCache::lnc_r(2_000);
        for i in 0..12u64 {
            let name = format!("q{i}");
            reference(&mut cache, &name, 150, 10.0 + i as f64 * 37.0, i + 1);
            if i % 3 == 0 {
                cache.get(&key(&name), ts(40 + i));
            }
        }
        let now = ts(100);
        // Force a rescore through the victim-selection path, then compare
        // the group-head fast path against the plain scan.
        let _ = cache.select_victims(1, now);
        assert!(cache.ranking.is_current(now));
        let fast = QueryCache::min_cached_profit(&mut cache, now);
        let scan = LncCache::min_cached_profit(&cache, now);
        assert_eq!(fast, scan);
    }
}
