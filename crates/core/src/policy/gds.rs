//! GreedyDual-Size replacement over retrieved sets.
//!
//! GreedyDual-Size (Cao & Irani, 1997) is the best-known *later* cost- and
//! size-aware caching policy; it is included as an extension baseline so the
//! ablation experiments can position LNC-RA against the algorithm that
//! eventually became the standard answer to the same problem.
//!
//! Each cached set carries a credit `H = L + c/s`, where `L` is a global
//! inflation value.  On eviction the victim is the set with the smallest `H`
//! and `L` is raised to that value; on a hit the set's credit is restored to
//! `L + c/s`.  The inflation term plays the role that the sliding-window
//! reference-rate estimate plays in LNC-R: it ages sets that have not been
//! referenced recently.
//!
//! Credits are indexed in an [`OrdIndex`] (the exact-deletion form of the
//! min-heap Cao & Irani manage their cache with), so the victim is the index
//! head and every hit, admission and eviction costs O(log n) — the original
//! implementation of this module re-scanned all entries per eviction.

use crate::clock::Timestamp;
use crate::index::{EntryId, EntryStore, KeyedEntry};
use crate::key::QueryKey;
use crate::metrics::CacheStats;
use crate::policy::index::{OrdF64, OrdIndex, VictimIndexed};
use crate::policy::{InsertOutcome, QueryCache, RejectReason};
use crate::profit::Profit;
use crate::value::{CachePayload, ExecutionCost};

#[derive(Debug, Clone)]
struct GdsEntry<V> {
    key: QueryKey,
    value: V,
    size_bytes: u64,
    cost: ExecutionCost,
    /// The credit value `H`.
    credit: f64,
}

impl<V> KeyedEntry for GdsEntry<V> {
    fn key(&self) -> &QueryKey {
        &self.key
    }
}

/// A retrieved-set cache with GreedyDual-Size replacement.
#[derive(Debug, Clone)]
pub struct GreedyDualSizeCache<V> {
    capacity_bytes: u64,
    entries: EntryStore<GdsEntry<V>>,
    /// Victim index over credits; the victim is [`OrdIndex::min`].
    credits: OrdIndex<OrdF64>,
    /// The global inflation value `L`.
    inflation: f64,
    used_bytes: u64,
    stats: CacheStats,
}

impl<V: CachePayload> GreedyDualSizeCache<V> {
    /// Creates a GreedyDual-Size cache with the given capacity in bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        GreedyDualSizeCache {
            capacity_bytes,
            entries: EntryStore::new(),
            credits: OrdIndex::new(),
            inflation: 0.0,
            used_bytes: 0,
            stats: CacheStats::new(),
        }
    }

    /// The current global inflation value `L` (exposed for tests and
    /// diagnostics).
    pub fn inflation(&self) -> f64 {
        self.inflation
    }

    fn fresh_credit(&self, cost: ExecutionCost, size_bytes: u64) -> f64 {
        self.inflation + Profit::estimated(cost, size_bytes).value()
    }

    /// Re-keys `id` to its freshly restored credit `L + c/s`.
    fn restore_credit(&mut self, id: EntryId) {
        let inflation = self.inflation;
        if let Some(entry) = self.entries.by_id_mut(id) {
            let old = entry.credit;
            entry.credit = inflation + Profit::estimated(entry.cost, entry.size_bytes).value();
            let new = entry.credit;
            self.credits.update(OrdF64(old), OrdF64(new), id);
        }
    }

    /// The entry GreedyDual-Size would evict next (smallest credit `H`) and
    /// its credit.  Single source of truth for `evict_one` and
    /// `min_cached_profit`.
    fn victim(&self) -> Option<(EntryId, f64)> {
        self.credits.min().map(|(credit, id)| (id, credit.0))
    }

    /// The eviction order the pre-index implementation derived by scanning.
    /// Kept as the differential-test oracle.  (Inflation updates do not
    /// change the relative credit order mid-loop, so the plan is pure.)
    #[cfg(test)]
    pub(crate) fn reference_victim_plan(&self, needed: u64) -> Vec<QueryKey> {
        let mut excluded = std::collections::HashSet::new();
        let mut used = self.used_bytes;
        let mut plan = Vec::new();
        while used + needed > self.capacity_bytes {
            let Some((id, entry)) = self
                .entries
                .iter()
                .filter(|(id, _)| !excluded.contains(id))
                .min_by(|a, b| a.1.credit.total_cmp(&b.1.credit))
            else {
                break;
            };
            excluded.insert(id);
            used -= entry.size_bytes;
            plan.push(entry.key.clone());
        }
        plan
    }

    /// The eviction order the index would produce, without mutating.
    #[cfg(test)]
    pub(crate) fn indexed_victim_plan(&self, needed: u64) -> Vec<QueryKey> {
        let mut used = self.used_bytes;
        let mut plan = Vec::new();
        for (_, id) in self.credits.iter() {
            if used + needed <= self.capacity_bytes {
                break;
            }
            let entry = self.entries.by_id(id).expect("indexed entry is cached");
            used -= entry.size_bytes;
            plan.push(entry.key.clone());
        }
        plan
    }
}

impl<V: CachePayload> VictimIndexed for GreedyDualSizeCache<V> {
    fn occupied_bytes(&self) -> u64 {
        self.used_bytes
    }

    fn limit_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    fn evict_one(&mut self, _now: Timestamp) -> Option<QueryKey> {
        let (credit, id) = self.credits.min()?;
        self.credits.remove(credit, id);
        // Evicting the smallest-credit set raises the global inflation `L`.
        self.inflation = self.inflation.max(credit.0);
        let entry = self.entries.remove(id)?;
        self.used_bytes -= entry.size_bytes;
        self.stats.record_eviction(entry.size_bytes);
        Some(entry.key)
    }
}

impl<V: CachePayload> QueryCache<V> for GreedyDualSizeCache<V> {
    fn name(&self) -> &'static str {
        "GreedyDual-Size"
    }

    fn get(&mut self, key: &QueryKey, _now: Timestamp) -> Option<&V> {
        match self.entries.find(key) {
            Some(id) => {
                self.restore_credit(id);
                let cost = self.entries.by_id(id).map(|e| e.cost).unwrap_or_default();
                self.stats.record_hit(cost);
                self.entries.by_id(id).map(|e| &e.value)
            }
            None => None,
        }
    }

    fn insert(
        &mut self,
        key: QueryKey,
        value: V,
        cost: ExecutionCost,
        now: Timestamp,
    ) -> InsertOutcome {
        let size_bytes = value.size_bytes();
        self.stats.record_miss(cost);

        if let Some(id) = self.entries.find(&key) {
            if let Some(entry) = self.entries.by_id_mut(id) {
                let old = entry.size_bytes;
                entry.value = value;
                entry.cost = cost;
                entry.size_bytes = size_bytes;
                self.used_bytes = self.used_bytes - old + size_bytes;
            }
            self.restore_credit(id);
            // Restore the capacity invariant if the refreshed payload grew.
            let evicted = self.evict_for(0, now);
            return InsertOutcome::AlreadyCached { evicted };
        }

        if self.capacity_bytes == 0 {
            self.stats.record_admission(false);
            return InsertOutcome::Rejected(RejectReason::ZeroCapacity);
        }
        if size_bytes > self.capacity_bytes {
            self.stats.record_admission(false);
            return InsertOutcome::Rejected(RejectReason::TooLarge);
        }

        let evicted = self.evict_for(size_bytes, now);
        let credit = self.fresh_credit(cost, size_bytes);
        let id = self.entries.insert(GdsEntry {
            key,
            value,
            size_bytes,
            cost,
            credit,
        });
        self.credits.insert(OrdF64(credit), id);
        self.used_bytes += size_bytes;
        self.stats.record_admission(true);
        InsertOutcome::Admitted { evicted }
    }

    fn remove(&mut self, key: &QueryKey) -> bool {
        match self.entries.find(key) {
            Some(id) => {
                let entry = self.entries.remove(id).expect("found entry is live");
                self.credits.remove(OrdF64(entry.credit), id);
                self.used_bytes -= entry.size_bytes;
                true
            }
            None => false,
        }
    }

    fn peek(&self, key: &QueryKey) -> Option<&V> {
        self.entries.get(key).map(|entry| &entry.value)
    }

    fn contains(&self, key: &QueryKey) -> bool {
        self.entries.contains(key)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    fn set_capacity_bytes(&mut self, capacity_bytes: u64, now: Timestamp) -> Vec<QueryKey> {
        self.capacity_bytes = capacity_bytes;
        // Shrinking below occupancy evicts the smallest-credit sets first,
        // inflating `L` exactly as demand-driven evictions do.
        self.evict_for(0, now)
    }

    fn min_cached_profit(&mut self, _now: Timestamp) -> Option<Profit> {
        // GDS's next victim is the smallest-credit set; report its estimated
        // profit `c/s` (the non-inflated part of its credit).
        self.victim()
            .and_then(|(id, _)| self.entries.by_id(id))
            .map(|e| Profit::estimated(e.cost, e.size_bytes))
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn record_coalesced_reference(&mut self, cost: ExecutionCost) {
        self.stats.record_coalesced(cost);
    }

    fn record_error_reference(&mut self) {
        self.stats.record_fetch_error();
    }

    fn record_stale_reference(&mut self, cost: ExecutionCost) {
        self.stats.record_stale(cost);
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.credits.clear();
        self.used_bytes = 0;
        self.inflation = 0.0;
    }

    fn cached_keys(&self) -> Vec<QueryKey> {
        self.entries.iter().map(|(_, e)| e.key.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SizedPayload;

    fn ts(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    fn key(name: &str) -> QueryKey {
        QueryKey::new(name.to_owned())
    }

    fn insert_with_cost(
        cache: &mut GreedyDualSizeCache<SizedPayload>,
        name: &str,
        size: u64,
        cost: f64,
        now: u64,
    ) -> InsertOutcome {
        cache.insert(
            key(name),
            SizedPayload::new(size),
            ExecutionCost::from_block_reads(cost),
            ts(now),
        )
    }

    #[test]
    fn evicts_lowest_credit_entry() {
        let mut cache = GreedyDualSizeCache::new(300);
        // c/s: cheap = 0.01, pricey = 10.
        insert_with_cost(&mut cache, "cheap", 100, 1.0, 1);
        insert_with_cost(&mut cache, "pricey", 100, 1_000.0, 2);
        insert_with_cost(&mut cache, "mid", 100, 100.0, 3);
        let outcome = insert_with_cost(&mut cache, "incoming", 100, 500.0, 4);
        assert_eq!(outcome.evicted(), &[key("cheap")]);
        assert!(cache.contains(&key("pricey")));
    }

    #[test]
    fn inflation_rises_with_evictions() {
        let mut cache = GreedyDualSizeCache::new(200);
        insert_with_cost(&mut cache, "a", 100, 100.0, 1);
        insert_with_cost(&mut cache, "b", 100, 200.0, 2);
        assert_eq!(cache.inflation(), 0.0);
        insert_with_cost(&mut cache, "c", 100, 300.0, 3);
        assert!(cache.inflation() > 0.0);
    }

    #[test]
    fn aging_lets_new_entries_displace_stale_expensive_ones() {
        let mut cache = GreedyDualSizeCache::new(200);
        insert_with_cost(&mut cache, "stale-expensive", 100, 500.0, 1);
        insert_with_cost(&mut cache, "b", 100, 400.0, 2);
        // Repeated misses on cheap one-off sets raise L; eventually even the
        // expensive stale set is displaced.
        let mut displaced = false;
        for i in 0..50u64 {
            let name = format!("oneoff{i}");
            let outcome = insert_with_cost(&mut cache, &name, 100, 50.0, 10 + i);
            if outcome.evicted().contains(&key("stale-expensive")) {
                displaced = true;
                break;
            }
        }
        assert!(displaced, "inflation must age stale entries out");
    }

    #[test]
    fn hit_restores_credit() {
        let mut cache = GreedyDualSizeCache::new(200);
        insert_with_cost(&mut cache, "a", 100, 100.0, 1);
        insert_with_cost(&mut cache, "b", 100, 100.0, 2);
        // Push inflation up by cycling through one-off sets.
        for i in 0..5u64 {
            let name = format!("x{i}");
            insert_with_cost(&mut cache, &name, 100, 150.0, 3 + i);
        }
        // Whichever of a/b survived, hitting it must keep it above the next
        // one-off's credit so it survives one more round.
        let survivor = if cache.contains(&key("a")) { "a" } else { "b" };
        if cache.contains(&key(survivor)) {
            cache.get(&key(survivor), ts(100));
            let outcome = insert_with_cost(&mut cache, "final", 100, 50.0, 101);
            assert!(
                !outcome.evicted().contains(&key(survivor)) || !cache.contains(&key(survivor)),
                "a just-hit entry should not be the first victim against a cheaper newcomer"
            );
        }
    }

    #[test]
    fn rejects_oversized_and_zero_capacity() {
        let mut cache = GreedyDualSizeCache::new(100);
        assert_eq!(
            insert_with_cost(&mut cache, "big", 500, 10.0, 1),
            InsertOutcome::Rejected(RejectReason::TooLarge)
        );
        let mut zero = GreedyDualSizeCache::new(0);
        assert_eq!(
            insert_with_cost(&mut zero, "x", 1, 10.0, 1),
            InsertOutcome::Rejected(RejectReason::ZeroCapacity)
        );
    }

    #[test]
    fn capacity_invariant_holds() {
        let mut cache = GreedyDualSizeCache::new(1_000);
        for i in 0..200u64 {
            let name = format!("q{}", i % 29);
            insert_with_cost(
                &mut cache,
                &name,
                50 + (i % 13) * 40,
                10.0 + (i % 7) as f64 * 80.0,
                i + 1,
            );
            assert!(cache.used_bytes() <= cache.capacity_bytes());
        }
    }

    #[test]
    fn clear_resets_inflation() {
        let mut cache = GreedyDualSizeCache::new(100);
        insert_with_cost(&mut cache, "a", 100, 10.0, 1);
        insert_with_cost(&mut cache, "b", 100, 20.0, 2);
        assert!(cache.inflation() > 0.0);
        cache.clear();
        assert_eq!(cache.inflation(), 0.0);
        assert!(cache.is_empty());
    }
}
