//! LCS (Largest Cache Space) replacement over retrieved sets.
//!
//! Adopted from the ADMS project (paper §5), where it was the
//! best-performing of the {LRU, LFU, LCS} trio: the victim is always the
//! *largest* cached retrieved set, the idea being that evicting one large set
//! frees room for many small (and typically expensive-to-recompute)
//! aggregate results.  LCS uses size information but — unlike LNC-R — neither
//! reference rates nor execution costs.
//!
//! Entries live in a size-ordered [`OrdIndex`] (largest last, recency as the
//! tie-break), so victim selection and eviction are O(log n).

use std::cmp::Reverse;

use crate::clock::Timestamp;
use crate::index::{EntryId, EntryStore, KeyedEntry};
use crate::key::QueryKey;
use crate::metrics::CacheStats;
use crate::policy::index::{OrdIndex, VictimIndexed};
use crate::policy::{InsertOutcome, QueryCache, RejectReason};
use crate::profit::Profit;
use crate::value::{CachePayload, ExecutionCost};

#[derive(Debug, Clone)]
struct LcsEntry<V> {
    key: QueryKey,
    value: V,
    size_bytes: u64,
    cost: ExecutionCost,
    last_used: Timestamp,
}

impl<V> LcsEntry<V> {
    /// The victim-index key: the *maximum* of this key is the victim —
    /// largest set first, ties broken by *least* recent use (hence the
    /// reversed timestamp).
    fn rank(&self) -> (u64, Reverse<Timestamp>) {
        (self.size_bytes, Reverse(self.last_used))
    }
}

impl<V> KeyedEntry for LcsEntry<V> {
    fn key(&self) -> &QueryKey {
        &self.key
    }
}

/// A retrieved-set cache that always evicts the largest cached set first.
#[derive(Debug, Clone)]
pub struct LcsCache<V> {
    capacity_bytes: u64,
    entries: EntryStore<LcsEntry<V>>,
    /// Size-ordered victim index; the victim is [`OrdIndex::max`].
    sizes: OrdIndex<(u64, Reverse<Timestamp>)>,
    used_bytes: u64,
    stats: CacheStats,
}

impl<V: CachePayload> LcsCache<V> {
    /// Creates an LCS cache with the given capacity in bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        LcsCache {
            capacity_bytes,
            entries: EntryStore::new(),
            sizes: OrdIndex::new(),
            used_bytes: 0,
            stats: CacheStats::new(),
        }
    }

    /// The entry LCS would evict next: largest first, ties broken by least
    /// recent use.  Single source of truth for `evict_one` and
    /// `min_cached_profit`.
    fn victim(&self) -> Option<EntryId> {
        self.sizes.max().map(|(_, id)| id)
    }

    /// The eviction order the pre-index implementation derived by scanning.
    /// Kept as the differential-test oracle.
    #[cfg(test)]
    pub(crate) fn reference_victim_plan(&self, needed: u64) -> Vec<QueryKey> {
        let mut excluded = std::collections::HashSet::new();
        let mut used = self.used_bytes;
        let mut plan = Vec::new();
        while used + needed > self.capacity_bytes {
            let Some((id, entry)) = self
                .entries
                .iter()
                .filter(|(id, _)| !excluded.contains(id))
                .max_by_key(|(_, e)| (e.size_bytes, Reverse(e.last_used)))
            else {
                break;
            };
            excluded.insert(id);
            used -= entry.size_bytes;
            plan.push(entry.key.clone());
        }
        plan
    }

    /// The eviction order the index would produce, without mutating.
    #[cfg(test)]
    pub(crate) fn indexed_victim_plan(&self, needed: u64) -> Vec<QueryKey> {
        let mut used = self.used_bytes;
        let mut plan = Vec::new();
        let descending: Vec<EntryId> = self.sizes.iter().map(|(_, id)| id).collect();
        for id in descending.into_iter().rev() {
            if used + needed <= self.capacity_bytes {
                break;
            }
            let entry = self.entries.by_id(id).expect("indexed entry is cached");
            used -= entry.size_bytes;
            plan.push(entry.key.clone());
        }
        plan
    }
}

impl<V: CachePayload> VictimIndexed for LcsCache<V> {
    fn occupied_bytes(&self) -> u64 {
        self.used_bytes
    }

    fn limit_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    fn evict_one(&mut self, _now: Timestamp) -> Option<QueryKey> {
        let (rank, id) = self.sizes.max()?;
        self.sizes.remove(rank, id);
        let entry = self.entries.remove(id)?;
        self.used_bytes -= entry.size_bytes;
        self.stats.record_eviction(entry.size_bytes);
        Some(entry.key)
    }
}

impl<V: CachePayload> QueryCache<V> for LcsCache<V> {
    fn name(&self) -> &'static str {
        "LCS"
    }

    fn get(&mut self, key: &QueryKey, now: Timestamp) -> Option<&V> {
        match self.entries.find(key) {
            Some(id) => {
                if let Some(entry) = self.entries.by_id_mut(id) {
                    let old = entry.rank();
                    entry.last_used = now;
                    let new = entry.rank();
                    self.sizes.update(old, new, id);
                }
                let cost = self.entries.by_id(id).map(|e| e.cost).unwrap_or_default();
                self.stats.record_hit(cost);
                self.entries.by_id(id).map(|e| &e.value)
            }
            None => None,
        }
    }

    fn insert(
        &mut self,
        key: QueryKey,
        value: V,
        cost: ExecutionCost,
        now: Timestamp,
    ) -> InsertOutcome {
        let size_bytes = value.size_bytes();
        self.stats.record_miss(cost);

        if let Some(id) = self.entries.find(&key) {
            if let Some(entry) = self.entries.by_id_mut(id) {
                let old_rank = entry.rank();
                let old = entry.size_bytes;
                entry.value = value;
                entry.cost = cost;
                entry.size_bytes = size_bytes;
                entry.last_used = now;
                let new_rank = entry.rank();
                self.used_bytes = self.used_bytes - old + size_bytes;
                self.sizes.update(old_rank, new_rank, id);
            }
            // Restore the capacity invariant if the refreshed payload grew.
            let evicted = self.evict_for(0, now);
            return InsertOutcome::AlreadyCached { evicted };
        }

        if self.capacity_bytes == 0 {
            self.stats.record_admission(false);
            return InsertOutcome::Rejected(RejectReason::ZeroCapacity);
        }
        if size_bytes > self.capacity_bytes {
            self.stats.record_admission(false);
            return InsertOutcome::Rejected(RejectReason::TooLarge);
        }

        let evicted = self.evict_for(size_bytes, now);
        let entry = LcsEntry {
            key,
            value,
            size_bytes,
            cost,
            last_used: now,
        };
        let rank = entry.rank();
        let id = self.entries.insert(entry);
        self.sizes.insert(rank, id);
        self.used_bytes += size_bytes;
        self.stats.record_admission(true);
        InsertOutcome::Admitted { evicted }
    }

    fn remove(&mut self, key: &QueryKey) -> bool {
        match self.entries.find(key) {
            Some(id) => {
                let entry = self.entries.remove(id).expect("found entry is live");
                self.sizes.remove(entry.rank(), id);
                self.used_bytes -= entry.size_bytes;
                true
            }
            None => false,
        }
    }

    fn peek(&self, key: &QueryKey) -> Option<&V> {
        self.entries.get(key).map(|entry| &entry.value)
    }

    fn contains(&self, key: &QueryKey) -> bool {
        self.entries.contains(key)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    fn set_capacity_bytes(&mut self, capacity_bytes: u64, now: Timestamp) -> Vec<QueryKey> {
        self.capacity_bytes = capacity_bytes;
        // Shrinking below occupancy evicts the largest sets first.
        self.evict_for(0, now)
    }

    fn min_cached_profit(&mut self, _now: Timestamp) -> Option<Profit> {
        // LCS's next victim is the largest set; report its estimated profit
        // (Eq. 6) since LCS keeps no rate estimate.
        self.victim()
            .and_then(|id| self.entries.by_id(id))
            .map(|e| Profit::estimated(e.cost, e.size_bytes))
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn record_coalesced_reference(&mut self, cost: ExecutionCost) {
        self.stats.record_coalesced(cost);
    }

    fn record_error_reference(&mut self) {
        self.stats.record_fetch_error();
    }

    fn record_stale_reference(&mut self, cost: ExecutionCost) {
        self.stats.record_stale(cost);
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.sizes.clear();
        self.used_bytes = 0;
    }

    fn cached_keys(&self) -> Vec<QueryKey> {
        self.entries.iter().map(|(_, e)| e.key.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SizedPayload;

    fn ts(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    fn key(name: &str) -> QueryKey {
        QueryKey::new(name.to_owned())
    }

    fn insert(
        cache: &mut LcsCache<SizedPayload>,
        name: &str,
        size: u64,
        now: u64,
    ) -> InsertOutcome {
        cache.insert(
            key(name),
            SizedPayload::new(size),
            ExecutionCost::from_blocks(10),
            ts(now),
        )
    }

    #[test]
    fn evicts_largest_set_first() {
        let mut cache = LcsCache::new(600);
        insert(&mut cache, "small", 100, 1);
        insert(&mut cache, "large", 400, 2);
        insert(&mut cache, "medium", 100, 3);
        let outcome = insert(&mut cache, "incoming", 200, 4);
        assert!(outcome.is_admitted());
        assert_eq!(outcome.evicted(), &[key("large")]);
        assert!(cache.contains(&key("small")));
        assert!(cache.contains(&key("medium")));
    }

    #[test]
    fn size_ties_broken_by_recency() {
        let mut cache = LcsCache::new(200);
        insert(&mut cache, "older", 100, 1);
        insert(&mut cache, "newer", 100, 2);
        let outcome = insert(&mut cache, "incoming", 100, 3);
        assert_eq!(outcome.evicted(), &[key("older")]);
    }

    #[test]
    fn many_small_sets_survive_one_large_arrival() {
        let mut cache = LcsCache::new(1_000);
        for i in 0..9 {
            let name = format!("small{i}");
            insert(&mut cache, &name, 100, i + 1);
        }
        // A 500-byte set arrives: LCS evicts the largest residents (all 100
        // bytes each), so five small sets go.
        let outcome = insert(&mut cache, "big", 500, 100);
        assert!(outcome.is_admitted());
        assert_eq!(outcome.evicted().len(), 4);
        assert!(cache.used_bytes() <= 1_000);
        // Later, the big set itself becomes the first victim.
        let outcome = insert(&mut cache, "small-again", 200, 101);
        assert_eq!(outcome.evicted(), &[key("big")]);
    }

    #[test]
    fn rejects_oversized_and_zero_capacity() {
        let mut cache = LcsCache::new(100);
        assert_eq!(
            insert(&mut cache, "big", 200, 1),
            InsertOutcome::Rejected(RejectReason::TooLarge)
        );
        let mut zero = LcsCache::new(0);
        assert_eq!(
            insert(&mut zero, "x", 1, 1),
            InsertOutcome::Rejected(RejectReason::ZeroCapacity)
        );
    }

    #[test]
    fn hit_and_refresh_paths() {
        let mut cache = LcsCache::new(300);
        insert(&mut cache, "a", 100, 1);
        assert!(cache.get(&key("a"), ts(2)).is_some());
        assert_eq!(
            insert(&mut cache, "a", 150, 3),
            InsertOutcome::already_cached()
        );
        assert_eq!(cache.used_bytes(), 150);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn capacity_invariant_holds() {
        let mut cache = LcsCache::new(700);
        for i in 0..150u64 {
            let name = format!("q{}", i % 19);
            insert(&mut cache, &name, 40 + (i % 9) * 70, i + 1);
            assert!(cache.used_bytes() <= cache.capacity_bytes());
        }
    }

    #[test]
    fn clear_empties_cache() {
        let mut cache = LcsCache::new(300);
        insert(&mut cache, "a", 100, 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }
}
