//! Cache policies.
//!
//! The [`QueryCache`] trait is the public interface shared by the paper's
//! LNC-R / LNC-RA policies ([`lnc`]) and the comparison baselines:
//! vanilla LRU ([`lru`]), LRU-K ([`lru_k`]), LFU ([`lfu`]), largest-space
//! LCS ([`lcs`]) and GreedyDual-Size ([`gds`]).
//!
//! # Usage protocol
//!
//! A cache client issues one [`QueryCache::get`] per logical query reference.
//! On a hit the cached retrieved set is returned and the reference is
//! accounted as saved cost.  On a miss the client executes the query against
//! the warehouse and then offers the freshly retrieved set with
//! [`QueryCache::insert`], passing the observed execution cost; the policy
//! decides whether to admit it (possibly evicting other sets) or reject it.
//! Both calls take an explicit logical [`Timestamp`] so that trace replay is
//! deterministic.
//!
//! # Per-operation complexity
//!
//! Every policy maintains an incremental victim index (see [`index`] and the
//! epoch-cached ranking in [`lnc`]) instead of re-scanning the cache per
//! eviction, with `n` cached sets and `v` victims per decision:
//!
//! | policy | admit | hit | evict (total) | `min_cached_profit` | shrink by `b` |
//! |---|---|---|---|---|---|
//! | LRU | O(log n) | O(log n) | O(v log n) | O(log n) | O(v log n) |
//! | LRU-K | O(log n) | O(log n) | O(v log n) | O(log n) | O(v log n) |
//! | LFU | O(log n) | O(log n) | O(v log n) | O(log n) | O(v log n) |
//! | LCS | O(log n) | O(log n) | O(v log n) | O(log n) | O(v log n) |
//! | GreedyDual-Size | O(log n) | O(log n) | O(v log n) | O(log n) | O(v log n) |
//! | LNC-R / LNC-RA | O(1)¹ | O(1)¹ | O(n + v)¹ | O(groups · log n)² | O(n + v)¹ |
//!
//! ¹ LNC profits re-evaluate the Eq. 3 rate at the decision's `now`, and the
//! profits of two untouched sets can cross as time advances, so an exact
//! decision at a *new* timestamp must re-score all n profits; the epoch
//! cache makes that one near-sorted repair pass (amortized O(n), worst case
//! O(n log n) when the order drifted far) instead of a fresh sort plus
//! allocation, reuses the order outright for decisions at an unchanged
//! timestamp, and keeps admissions and hits constant-time (they only mark
//! the cache dirty).  ² With a current ranking; falls back to the O(n) scan
//! otherwise.
//!
//! The per-policy scan implementations these indexes replaced are retained
//! under `#[cfg(test)]` as differential-test oracles: the `differential`
//! module (test builds only) holds the property suite asserting identical
//! victim sequences and signal values on random traces.

pub mod gds;
pub(crate) mod index;
pub mod lcs;
pub mod lfu;
pub mod lnc;
pub mod lru;
pub mod lru_k;

#[cfg(test)]
mod differential;

use std::fmt;

use crate::clock::Timestamp;
use crate::key::QueryKey;
use crate::metrics::CacheStats;
use crate::profit::Profit;
use crate::value::{CachePayload, ExecutionCost};

/// Why an offered retrieved set was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The set is larger than the entire cache.
    TooLarge,
    /// The cache has zero capacity.
    ZeroCapacity,
    /// The admission test (Eq. 4 / Eq. 7) decided the set is not worth the
    /// evictions it would require.
    AdmissionTest,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::TooLarge => f.write_str("larger than the cache"),
            RejectReason::ZeroCapacity => f.write_str("zero-capacity cache"),
            RejectReason::AdmissionTest => f.write_str("failed the admission test"),
        }
    }
}

/// The result of offering a retrieved set to the cache.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertOutcome {
    /// The set was already cached; its payload, cost and metadata were
    /// refreshed in place.  If the refreshed payload *grew*, restoring the
    /// capacity invariant may have evicted other sets: `evicted` lists their
    /// keys, exactly as [`InsertOutcome::Admitted`] does, so observers
    /// mirroring cache contents never miss a removal.
    AlreadyCached {
        /// Keys of the retrieved sets evicted because the refreshed payload
        /// grew (usually empty).
        evicted: Vec<QueryKey>,
    },
    /// The set was admitted.  `evicted` lists the keys that were removed to
    /// make room (empty if the set fit in free space).
    Admitted {
        /// Keys of the retrieved sets evicted to make room.
        evicted: Vec<QueryKey>,
    },
    /// The set was not admitted.
    Rejected(RejectReason),
}

impl InsertOutcome {
    /// An `AlreadyCached` outcome with no evictions (the common refresh case).
    pub fn already_cached() -> Self {
        InsertOutcome::AlreadyCached {
            evicted: Vec::new(),
        }
    }

    /// Whether the set ended up cached (either newly admitted or already
    /// present).
    pub fn is_cached(&self) -> bool {
        matches!(
            self,
            InsertOutcome::Admitted { .. } | InsertOutcome::AlreadyCached { .. }
        )
    }

    /// Whether the set was newly admitted by this call.
    pub fn is_admitted(&self) -> bool {
        matches!(self, InsertOutcome::Admitted { .. })
    }

    /// The keys evicted by this call (by a new admission, or by a refresh
    /// whose payload grew).
    pub fn evicted(&self) -> &[QueryKey] {
        match self {
            InsertOutcome::Admitted { evicted } | InsertOutcome::AlreadyCached { evicted } => {
                evicted
            }
            InsertOutcome::Rejected(_) => &[],
        }
    }
}

impl fmt::Display for InsertOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsertOutcome::AlreadyCached { evicted } if evicted.is_empty() => {
                f.write_str("already cached")
            }
            InsertOutcome::AlreadyCached { evicted } => {
                write!(f, "already cached, evicted {}", evicted.len())
            }
            InsertOutcome::Admitted { evicted } if evicted.is_empty() => f.write_str("admitted"),
            InsertOutcome::Admitted { evicted } => {
                write!(f, "admitted, evicted {}", evicted.len())
            }
            InsertOutcome::Rejected(reason) => write!(f, "rejected ({reason})"),
        }
    }
}

/// The common interface of all retrieved-set cache policies.
pub trait QueryCache<V: CachePayload> {
    /// A short, stable policy name ("LNC-RA", "LRU", …) used in experiment
    /// output.
    fn name(&self) -> &'static str;

    /// Looks up the retrieved set for `key`, recording one query reference.
    ///
    /// Returns the cached value on a hit.  On a miss the caller is expected
    /// to execute the query and call [`QueryCache::insert`] with the result
    /// and its execution cost.
    fn get(&mut self, key: &QueryKey, now: Timestamp) -> Option<&V>;

    /// Offers a freshly retrieved set for admission after a miss.
    ///
    /// `cost` is the execution cost of the query that produced the set.  The
    /// same `now` that was passed to the preceding `get` should be used (or a
    /// later one); policies tolerate either.
    fn insert(
        &mut self,
        key: QueryKey,
        value: V,
        cost: ExecutionCost,
        now: Timestamp,
    ) -> InsertOutcome;

    /// Removes the retrieved set for `key`, returning whether it was
    /// resident.
    ///
    /// This is the *invalidation* entry point used by the cache-coherence
    /// machinery and the concurrent engine: removal is not an eviction, so it
    /// is not counted in the eviction statistics and does not retain
    /// reference information.
    fn remove(&mut self, key: &QueryKey) -> bool;

    /// Returns the cached retrieved set for `key` **without** recording a
    /// reference: no recency/frequency update, no reference-history sample,
    /// no statistics mutation.
    ///
    /// This is the non-mutating *admin* probe behind
    /// [`Watchman::peek`](crate::engine::Watchman::peek): monitoring and
    /// diagnostics can observe the cache without perturbing replay-visible
    /// policy state.  Use [`QueryCache::get`] for real query references.
    fn peek(&self, key: &QueryKey) -> Option<&V>;

    /// Whether a retrieved set for `key` is currently cached.
    fn contains(&self, key: &QueryKey) -> bool;

    /// Number of cached retrieved sets.
    fn len(&self) -> usize;

    /// Whether the cache holds no retrieved sets.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently occupied by cached retrieved sets.
    fn used_bytes(&self) -> u64;

    /// Total cache capacity in bytes.
    fn capacity_bytes(&self) -> u64;

    /// Changes the cache capacity to `capacity_bytes`, returning the keys of
    /// any sets evicted to satisfy the new bound.
    ///
    /// Growing (or shrinking into free space) never evicts.  Shrinking below
    /// the current occupancy evicts sets using the policy's own victim
    /// selection — lowest profit first for LNC-R/LNC-RA, least recently used
    /// for LRU, and so on — until `used_bytes() <= capacity_bytes`.  The
    /// evictions are real: they are counted in the eviction statistics and
    /// (where the policy supports it) the victims' reference information is
    /// retained, exactly as if an oversized insert had displaced them.  `now`
    /// is the logical time at which victim profits are evaluated.
    ///
    /// This is the primitive the concurrent engine's capacity rebalancer uses
    /// to move bytes between shards.
    fn set_capacity_bytes(&mut self, capacity_bytes: u64, now: Timestamp) -> Vec<QueryKey>;

    /// The profit of the set the policy would evict next, or `None` when the
    /// cache is empty.
    ///
    /// For LNC-R/LNC-RA this is the paper's marginal profit `λ·c/s` of the
    /// lowest-profit cached set; the baseline policies report the estimated
    /// profit `c/s` (Eq. 6) of their current victim.  The engine's capacity
    /// rebalancer reads this as the *marginal loss* of shrinking a shard: a
    /// shard whose next victim is nearly worthless gives up almost nothing.
    ///
    /// Takes `&mut self` (as do the other capacity-planning signals below):
    /// the answer is read off the policy's victim index, and consulting the
    /// index may lazily re-score or compact it.  The cache contents and
    /// statistics are never changed.
    fn min_cached_profit(&mut self, now: Timestamp) -> Option<Profit>;

    /// The highest profit among sets the policy recently denied residency
    /// (evicted or rejected) but still remembers, or `None` when the policy
    /// does not retain such information.
    ///
    /// LNC-RA's §2.4 retained reference information makes this exact: it is
    /// the `λ·c/s` of the most valuable set the cache turned away, i.e. the
    /// *marginal gain* of giving the cache more capacity.  The engine's
    /// rebalancer grows a shard when its marginal gain exceeds another
    /// shard's marginal loss.  Policies without retained information return
    /// `None` (the default) and the rebalancer falls back to
    /// rejection/eviction pressure.
    fn max_retained_profit(&mut self, _now: Timestamp) -> Option<Profit> {
        None
    }

    /// The aggregate profit (Eq. 5: `Σλc / Σs`) of the sets this cache would
    /// evict to shrink by `bytes` — what a capacity donation of that size
    /// would actually cost.  `None` (the default) when the policy cannot
    /// price a shrink; the engine's rebalancer then falls back to
    /// [`QueryCache::min_cached_profit`].
    fn shrink_loss(&mut self, _bytes: u64, _now: Timestamp) -> Option<Profit> {
        None
    }

    /// The aggregate profit (Eq. 5) of the most valuable denied-residency
    /// sets that would fit into `bytes` of additional capacity — what a
    /// capacity grant of that size could plausibly win back.  `None` (the
    /// default) when the policy retains no such information; the engine's
    /// rebalancer then falls back to rejection/eviction pressure.
    fn grow_gain(&mut self, _bytes: u64, _now: Timestamp) -> Option<Profit> {
        None
    }

    /// Accumulated reference / cost statistics.
    fn stats(&self) -> &CacheStats;

    /// Records one query reference that was satisfied by *coalescing* onto
    /// another session's in-flight execution of the same query (the
    /// concurrent engine's single-flight path — the one reference the policy
    /// cannot observe through `get`/`insert`).  Cache contents are untouched;
    /// the statistics count the reference as hit-equivalent at the leader's
    /// observed cost, keeping the documented
    /// `references == hits + coalesced + misses` protocol intact.
    fn record_coalesced_reference(&mut self, cost: ExecutionCost);

    /// Records one query reference that ended in a *terminal fetch error*
    /// (the concurrent engine's fallible pipeline: retry budget exhausted or
    /// fatal error, no stale serve).  Cache contents are untouched; the
    /// statistics count the reference with no cost movement, keeping the
    /// extended `references == hits + coalesced + fetch_errors +
    /// stale_serves + misses` protocol intact.
    fn record_error_reference(&mut self);

    /// Records one query reference answered with a *stale* last-known-good
    /// value after a fetch failure or an open circuit breaker, where `cost`
    /// is the refetch cost the caller was spared.  Cache contents are
    /// untouched; the cost enters the CSR denominator but not the numerator
    /// (degradation must never inflate the savings ratio).
    fn record_stale_reference(&mut self, cost: ExecutionCost);

    /// An owned snapshot of the accumulated statistics.
    ///
    /// Prefer this over [`QueryCache::stats`] when aggregating across several
    /// caches (for example the per-shard policies of the concurrent engine):
    /// owned snapshots can be summed with [`CacheStats::merge`] without
    /// holding borrows on the caches.
    fn stats_snapshot(&self) -> CacheStats {
        self.stats().clone()
    }

    /// Removes every cached retrieved set (statistics are preserved).
    fn clear(&mut self);

    /// A snapshot of the keys currently cached, in unspecified order.
    ///
    /// Used by the buffer-manager integration to determine which pages are
    /// redundant, and by tests.
    fn cached_keys(&self) -> Vec<QueryKey>;

    /// Fraction of capacity currently in use (zero for a zero-capacity
    /// cache).
    fn utilization(&self) -> f64 {
        let capacity = self.capacity_bytes();
        if capacity == 0 {
            0.0
        } else {
            self.used_bytes() as f64 / capacity as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_outcome_accessors() {
        let admitted = InsertOutcome::Admitted {
            evicted: vec![QueryKey::new("victim")],
        };
        assert!(admitted.is_cached());
        assert!(admitted.is_admitted());
        assert_eq!(admitted.evicted().len(), 1);

        let already = InsertOutcome::already_cached();
        assert!(already.is_cached());
        assert!(!already.is_admitted());
        assert!(already.evicted().is_empty());

        let grown = InsertOutcome::AlreadyCached {
            evicted: vec![QueryKey::new("displaced")],
        };
        assert!(grown.is_cached());
        assert!(!grown.is_admitted());
        assert_eq!(grown.evicted().len(), 1);

        let rejected = InsertOutcome::Rejected(RejectReason::AdmissionTest);
        assert!(!rejected.is_cached());
        assert!(!rejected.is_admitted());
        assert!(rejected.evicted().is_empty());
    }
}
