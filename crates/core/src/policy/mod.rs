//! Cache policies.
//!
//! The [`QueryCache`] trait is the public interface shared by the paper's
//! LNC-R / LNC-RA policies ([`lnc`]) and the comparison baselines:
//! vanilla LRU ([`lru`]), LRU-K ([`lru_k`]), LFU ([`lfu`]), largest-space
//! LCS ([`lcs`]) and GreedyDual-Size ([`gds`]).
//!
//! # Usage protocol
//!
//! A cache client issues one [`QueryCache::get`] per logical query reference.
//! On a hit the cached retrieved set is returned and the reference is
//! accounted as saved cost.  On a miss the client executes the query against
//! the warehouse and then offers the freshly retrieved set with
//! [`QueryCache::insert`], passing the observed execution cost; the policy
//! decides whether to admit it (possibly evicting other sets) or reject it.
//! Both calls take an explicit logical [`Timestamp`] so that trace replay is
//! deterministic.

pub mod gds;
pub mod lcs;
pub mod lfu;
pub mod lnc;
pub mod lru;
pub mod lru_k;

use std::fmt;

use crate::clock::Timestamp;
use crate::key::QueryKey;
use crate::metrics::CacheStats;
use crate::value::{CachePayload, ExecutionCost};

/// Why an offered retrieved set was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The set is larger than the entire cache.
    TooLarge,
    /// The cache has zero capacity.
    ZeroCapacity,
    /// The admission test (Eq. 4 / Eq. 7) decided the set is not worth the
    /// evictions it would require.
    AdmissionTest,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::TooLarge => f.write_str("larger than the cache"),
            RejectReason::ZeroCapacity => f.write_str("zero-capacity cache"),
            RejectReason::AdmissionTest => f.write_str("failed the admission test"),
        }
    }
}

/// The result of offering a retrieved set to the cache.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertOutcome {
    /// The set was already cached; its metadata was refreshed.
    AlreadyCached,
    /// The set was admitted.  `evicted` lists the keys that were removed to
    /// make room (empty if the set fit in free space).
    Admitted {
        /// Keys of the retrieved sets evicted to make room.
        evicted: Vec<QueryKey>,
    },
    /// The set was not admitted.
    Rejected(RejectReason),
}

impl InsertOutcome {
    /// Whether the set ended up cached (either newly admitted or already
    /// present).
    pub fn is_cached(&self) -> bool {
        matches!(
            self,
            InsertOutcome::Admitted { .. } | InsertOutcome::AlreadyCached
        )
    }

    /// Whether the set was newly admitted by this call.
    pub fn is_admitted(&self) -> bool {
        matches!(self, InsertOutcome::Admitted { .. })
    }

    /// The keys evicted by this call (empty unless newly admitted with
    /// evictions).
    pub fn evicted(&self) -> &[QueryKey] {
        match self {
            InsertOutcome::Admitted { evicted } => evicted,
            _ => &[],
        }
    }
}

impl fmt::Display for InsertOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsertOutcome::AlreadyCached => f.write_str("already cached"),
            InsertOutcome::Admitted { evicted } if evicted.is_empty() => f.write_str("admitted"),
            InsertOutcome::Admitted { evicted } => {
                write!(f, "admitted, evicted {}", evicted.len())
            }
            InsertOutcome::Rejected(reason) => write!(f, "rejected ({reason})"),
        }
    }
}

/// The common interface of all retrieved-set cache policies.
pub trait QueryCache<V: CachePayload> {
    /// A short, stable policy name ("LNC-RA", "LRU", …) used in experiment
    /// output.
    fn name(&self) -> &'static str;

    /// Looks up the retrieved set for `key`, recording one query reference.
    ///
    /// Returns the cached value on a hit.  On a miss the caller is expected
    /// to execute the query and call [`QueryCache::insert`] with the result
    /// and its execution cost.
    fn get(&mut self, key: &QueryKey, now: Timestamp) -> Option<&V>;

    /// Offers a freshly retrieved set for admission after a miss.
    ///
    /// `cost` is the execution cost of the query that produced the set.  The
    /// same `now` that was passed to the preceding `get` should be used (or a
    /// later one); policies tolerate either.
    fn insert(
        &mut self,
        key: QueryKey,
        value: V,
        cost: ExecutionCost,
        now: Timestamp,
    ) -> InsertOutcome;

    /// Removes the retrieved set for `key`, returning whether it was
    /// resident.
    ///
    /// This is the *invalidation* entry point used by the cache-coherence
    /// machinery and the concurrent engine: removal is not an eviction, so it
    /// is not counted in the eviction statistics and does not retain
    /// reference information.
    fn remove(&mut self, key: &QueryKey) -> bool;

    /// Whether a retrieved set for `key` is currently cached.
    fn contains(&self, key: &QueryKey) -> bool;

    /// Number of cached retrieved sets.
    fn len(&self) -> usize;

    /// Whether the cache holds no retrieved sets.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently occupied by cached retrieved sets.
    fn used_bytes(&self) -> u64;

    /// Total cache capacity in bytes.
    fn capacity_bytes(&self) -> u64;

    /// Accumulated reference / cost statistics.
    fn stats(&self) -> &CacheStats;

    /// An owned snapshot of the accumulated statistics.
    ///
    /// Prefer this over [`QueryCache::stats`] when aggregating across several
    /// caches (for example the per-shard policies of the concurrent engine):
    /// owned snapshots can be summed with [`CacheStats::merge`] without
    /// holding borrows on the caches.
    fn stats_snapshot(&self) -> CacheStats {
        self.stats().clone()
    }

    /// Removes every cached retrieved set (statistics are preserved).
    fn clear(&mut self);

    /// A snapshot of the keys currently cached, in unspecified order.
    ///
    /// Used by the buffer-manager integration to determine which pages are
    /// redundant, and by tests.
    fn cached_keys(&self) -> Vec<QueryKey>;

    /// Fraction of capacity currently in use (zero for a zero-capacity
    /// cache).
    fn utilization(&self) -> f64 {
        let capacity = self.capacity_bytes();
        if capacity == 0 {
            0.0
        } else {
            self.used_bytes() as f64 / capacity as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_outcome_accessors() {
        let admitted = InsertOutcome::Admitted {
            evicted: vec![QueryKey::new("victim")],
        };
        assert!(admitted.is_cached());
        assert!(admitted.is_admitted());
        assert_eq!(admitted.evicted().len(), 1);

        let already = InsertOutcome::AlreadyCached;
        assert!(already.is_cached());
        assert!(!already.is_admitted());
        assert!(already.evicted().is_empty());

        let rejected = InsertOutcome::Rejected(RejectReason::AdmissionTest);
        assert!(!rejected.is_cached());
        assert!(!rejected.is_admitted());
        assert!(rejected.evicted().is_empty());
    }
}
