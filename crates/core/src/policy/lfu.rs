//! LFU (least frequently used) replacement over retrieved sets.
//!
//! One of the baselines adopted by the ADMS project (paper §5).  The victim
//! is the cached set with the fewest recorded references; ties are broken by
//! least-recent use.  Like LRU, LFU ignores retrieved-set sizes and query
//! execution costs, but unlike LRU it is not fooled by long scans of
//! never-repeated queries.
//!
//! Entries are bucketed by their `(reference count, last use)` pair in an
//! [`OrdIndex`] — the flattened form of the classic LFU frequency-bucket
//! scheme — so the victim is the head of the index and every admission,
//! hit and eviction maintains it in O(log n).

use crate::clock::Timestamp;
use crate::index::{EntryId, EntryStore, KeyedEntry};
use crate::key::QueryKey;
use crate::metrics::CacheStats;
use crate::policy::index::{OrdIndex, VictimIndexed};
use crate::policy::{InsertOutcome, QueryCache, RejectReason};
use crate::profit::Profit;
use crate::value::{CachePayload, ExecutionCost};

#[derive(Debug, Clone)]
struct LfuEntry<V> {
    key: QueryKey,
    value: V,
    size_bytes: u64,
    cost: ExecutionCost,
    references: u64,
    last_used: Timestamp,
}

impl<V> LfuEntry<V> {
    /// The victim-index key: fewest references first, then least recent use.
    fn rank(&self) -> (u64, Timestamp) {
        (self.references, self.last_used)
    }
}

impl<V> KeyedEntry for LfuEntry<V> {
    fn key(&self) -> &QueryKey {
        &self.key
    }
}

/// A retrieved-set cache with least-frequently-used replacement.
#[derive(Debug, Clone)]
pub struct LfuCache<V> {
    capacity_bytes: u64,
    entries: EntryStore<LfuEntry<V>>,
    /// Victim index over `(references, last_used)` frequency buckets.
    frequency: OrdIndex<(u64, Timestamp)>,
    used_bytes: u64,
    stats: CacheStats,
}

impl<V: CachePayload> LfuCache<V> {
    /// Creates an LFU cache with the given capacity in bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        LfuCache {
            capacity_bytes,
            entries: EntryStore::new(),
            frequency: OrdIndex::new(),
            used_bytes: 0,
            stats: CacheStats::new(),
        }
    }

    /// The entry LFU would evict next: fewest references, ties broken by
    /// least-recent use.  Single source of truth for `evict_one` and
    /// `min_cached_profit`.
    fn victim(&self) -> Option<EntryId> {
        self.frequency.min().map(|(_, id)| id)
    }

    /// Records one use of `id` at `now`, re-keying its index position.
    fn touch(&mut self, id: EntryId, now: Timestamp) {
        if let Some(entry) = self.entries.by_id_mut(id) {
            let old = entry.rank();
            entry.references += 1;
            entry.last_used = now;
            let new = entry.rank();
            self.frequency.update(old, new, id);
        }
    }

    /// The eviction order the pre-index implementation derived by scanning.
    /// Kept as the differential-test oracle.
    #[cfg(test)]
    pub(crate) fn reference_victim_plan(&self, needed: u64) -> Vec<QueryKey> {
        let mut excluded = std::collections::HashSet::new();
        let mut used = self.used_bytes;
        let mut plan = Vec::new();
        while used + needed > self.capacity_bytes {
            let Some((id, entry)) = self
                .entries
                .iter()
                .filter(|(id, _)| !excluded.contains(id))
                .min_by_key(|(_, e)| (e.references, e.last_used))
            else {
                break;
            };
            excluded.insert(id);
            used -= entry.size_bytes;
            plan.push(entry.key.clone());
        }
        plan
    }

    /// The eviction order the index would produce, without mutating.
    #[cfg(test)]
    pub(crate) fn indexed_victim_plan(&self, needed: u64) -> Vec<QueryKey> {
        let mut used = self.used_bytes;
        let mut plan = Vec::new();
        for (_, id) in self.frequency.iter() {
            if used + needed <= self.capacity_bytes {
                break;
            }
            let entry = self.entries.by_id(id).expect("indexed entry is cached");
            used -= entry.size_bytes;
            plan.push(entry.key.clone());
        }
        plan
    }
}

impl<V: CachePayload> VictimIndexed for LfuCache<V> {
    fn occupied_bytes(&self) -> u64 {
        self.used_bytes
    }

    fn limit_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    fn evict_one(&mut self, _now: Timestamp) -> Option<QueryKey> {
        let (rank, id) = self.frequency.min()?;
        self.frequency.remove(rank, id);
        let entry = self.entries.remove(id)?;
        self.used_bytes -= entry.size_bytes;
        self.stats.record_eviction(entry.size_bytes);
        Some(entry.key)
    }
}

impl<V: CachePayload> QueryCache<V> for LfuCache<V> {
    fn name(&self) -> &'static str {
        "LFU"
    }

    fn get(&mut self, key: &QueryKey, now: Timestamp) -> Option<&V> {
        match self.entries.find(key) {
            Some(id) => {
                self.touch(id, now);
                let cost = self.entries.by_id(id).map(|e| e.cost).unwrap_or_default();
                self.stats.record_hit(cost);
                self.entries.by_id(id).map(|e| &e.value)
            }
            None => None,
        }
    }

    fn insert(
        &mut self,
        key: QueryKey,
        value: V,
        cost: ExecutionCost,
        now: Timestamp,
    ) -> InsertOutcome {
        let size_bytes = value.size_bytes();
        self.stats.record_miss(cost);

        if let Some(id) = self.entries.find(&key) {
            if let Some(entry) = self.entries.by_id_mut(id) {
                let old = entry.size_bytes;
                entry.value = value;
                entry.cost = cost;
                entry.size_bytes = size_bytes;
                self.used_bytes = self.used_bytes - old + size_bytes;
            }
            self.touch(id, now);
            // Restore the capacity invariant if the refreshed payload grew.
            let evicted = self.evict_for(0, now);
            return InsertOutcome::AlreadyCached { evicted };
        }

        if self.capacity_bytes == 0 {
            self.stats.record_admission(false);
            return InsertOutcome::Rejected(RejectReason::ZeroCapacity);
        }
        if size_bytes > self.capacity_bytes {
            self.stats.record_admission(false);
            return InsertOutcome::Rejected(RejectReason::TooLarge);
        }

        let evicted = self.evict_for(size_bytes, now);
        let entry = LfuEntry {
            key,
            value,
            size_bytes,
            cost,
            references: 1,
            last_used: now,
        };
        let rank = entry.rank();
        let id = self.entries.insert(entry);
        self.frequency.insert(rank, id);
        self.used_bytes += size_bytes;
        self.stats.record_admission(true);
        InsertOutcome::Admitted { evicted }
    }

    fn remove(&mut self, key: &QueryKey) -> bool {
        match self.entries.find(key) {
            Some(id) => {
                let entry = self.entries.remove(id).expect("found entry is live");
                self.frequency.remove(entry.rank(), id);
                self.used_bytes -= entry.size_bytes;
                true
            }
            None => false,
        }
    }

    fn peek(&self, key: &QueryKey) -> Option<&V> {
        self.entries.get(key).map(|entry| &entry.value)
    }

    fn contains(&self, key: &QueryKey) -> bool {
        self.entries.contains(key)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    fn set_capacity_bytes(&mut self, capacity_bytes: u64, now: Timestamp) -> Vec<QueryKey> {
        self.capacity_bytes = capacity_bytes;
        // Shrinking below occupancy evicts least-frequently-used sets first.
        self.evict_for(0, now)
    }

    fn min_cached_profit(&mut self, _now: Timestamp) -> Option<Profit> {
        // LFU's next victim is the least-referenced set; report its estimated
        // profit (Eq. 6) since LFU keeps no rate estimate.
        self.victim()
            .and_then(|id| self.entries.by_id(id))
            .map(|e| Profit::estimated(e.cost, e.size_bytes))
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn record_coalesced_reference(&mut self, cost: ExecutionCost) {
        self.stats.record_coalesced(cost);
    }

    fn record_error_reference(&mut self) {
        self.stats.record_fetch_error();
    }

    fn record_stale_reference(&mut self, cost: ExecutionCost) {
        self.stats.record_stale(cost);
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.frequency.clear();
        self.used_bytes = 0;
    }

    fn cached_keys(&self) -> Vec<QueryKey> {
        self.entries.iter().map(|(_, e)| e.key.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SizedPayload;

    fn ts(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    fn key(name: &str) -> QueryKey {
        QueryKey::new(name.to_owned())
    }

    fn insert(
        cache: &mut LfuCache<SizedPayload>,
        name: &str,
        size: u64,
        now: u64,
    ) -> InsertOutcome {
        cache.insert(
            key(name),
            SizedPayload::new(size),
            ExecutionCost::from_blocks(10),
            ts(now),
        )
    }

    #[test]
    fn evicts_least_frequently_used() {
        let mut cache = LfuCache::new(300);
        insert(&mut cache, "popular", 100, 1);
        insert(&mut cache, "unpopular", 100, 2);
        insert(&mut cache, "middling", 100, 3);
        cache.get(&key("popular"), ts(4));
        cache.get(&key("popular"), ts(5));
        cache.get(&key("middling"), ts(6));
        let outcome = insert(&mut cache, "new", 100, 7);
        assert_eq!(outcome.evicted(), &[key("unpopular")]);
        assert!(cache.contains(&key("popular")));
        assert!(cache.contains(&key("middling")));
    }

    #[test]
    fn frequency_ties_broken_by_recency() {
        let mut cache = LfuCache::new(200);
        insert(&mut cache, "older", 100, 1);
        insert(&mut cache, "newer", 100, 2);
        // Both have 1 reference; the older one must be evicted first.
        let outcome = insert(&mut cache, "incoming", 100, 3);
        assert_eq!(outcome.evicted(), &[key("older")]);
    }

    #[test]
    fn scan_resistance_compared_to_lru() {
        // A hot set referenced many times survives a burst of one-off sets.
        let mut cache = LfuCache::new(300);
        insert(&mut cache, "hot", 100, 1);
        for t in 2..10 {
            cache.get(&key("hot"), ts(t));
        }
        for i in 0..20u64 {
            let name = format!("scan{i}");
            insert(&mut cache, &name, 100, 10 + i);
        }
        assert!(cache.contains(&key("hot")));
    }

    #[test]
    fn rejects_oversized_and_zero_capacity() {
        let mut cache = LfuCache::new(100);
        assert_eq!(
            insert(&mut cache, "big", 200, 1),
            InsertOutcome::Rejected(RejectReason::TooLarge)
        );
        let mut zero = LfuCache::new(0);
        assert_eq!(
            insert(&mut zero, "x", 1, 1),
            InsertOutcome::Rejected(RejectReason::ZeroCapacity)
        );
    }

    #[test]
    fn already_cached_increments_frequency() {
        let mut cache = LfuCache::new(300);
        insert(&mut cache, "a", 100, 1);
        assert_eq!(
            insert(&mut cache, "a", 100, 2),
            InsertOutcome::already_cached()
        );
        insert(&mut cache, "b", 100, 3);
        insert(&mut cache, "c", 100, 4);
        // "a" has 2 references, so "b" (1 reference, older) is the victim.
        let outcome = insert(&mut cache, "d", 100, 5);
        assert_eq!(outcome.evicted(), &[key("b")]);
        assert!(cache.contains(&key("a")));
    }

    #[test]
    fn capacity_invariant_holds() {
        let mut cache = LfuCache::new(500);
        for i in 0..100u64 {
            let name = format!("q{}", i % 17);
            insert(&mut cache, &name, 50 + (i % 5) * 60, i + 1);
            assert!(cache.used_bytes() <= cache.capacity_bytes());
        }
    }

    #[test]
    fn clear_and_stats() {
        let mut cache = LfuCache::new(300);
        insert(&mut cache, "a", 100, 1);
        cache.get(&key("a"), ts(2));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.cached_keys().len(), 0);
    }
}
