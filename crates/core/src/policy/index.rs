//! Incrementally maintained victim indexes shared by the cache policies.
//!
//! Before this module existed every policy re-derived its eviction victim by
//! scanning (or sorting) the whole cache on each admission, so an admission
//! under pressure cost O(n) *per victim* and a rebalancer pass polling
//! [`min_cached_profit`](crate::policy::QueryCache::min_cached_profit) cost
//! O(shards · n).  The policies now keep a priority index next to their
//! [`EntryStore`](crate::index::EntryStore) and update it on every reference,
//! admission, refresh and removal, which makes victim selection O(log n) —
//! the heap-managed replacement of GreedyDual-Size (Cao & Irani '97) and the
//! priority-queue LNC-R implementation sketched in the paper's §3.
//!
//! Two pieces live here:
//!
//! * [`OrdIndex`] — an ordered victim index (a B-tree set of
//!   `(priority key, entry id)` pairs).  A B-tree with *exact* deletion is
//!   used instead of the textbook lazy-deletion binary heap: the policies
//!   always know an entry's current key when it changes or leaves, so stale
//!   heap items (and the rebuild sweeps they eventually force) never need to
//!   exist, and peeking the victim does not have to mutate the structure to
//!   drain tombstones.  Every operation is O(log n).
//! * [`VictimIndexed`] — the shared eviction loop over such an index.  The
//!   per-policy `evict_for` loops were byte-for-byte clones of each other
//!   except for the single line that picked (and unlinked) the victim; the
//!   trait keeps that line per-policy ([`VictimIndexed::evict_one`]) and
//!   shares the loop.
//!
//! Tie-breaking is part of the policies' observable behaviour (deterministic
//! trace replays are asserted byte-identical), so the index encodes the tie
//! rules the old scans had: a scan with `Iterator::min_by_key` returned the
//! *first* minimal entry in slot order — [`OrdIndex::min`] with the
//! [`EntryId`] as the final key component returns the same entry — and
//! `Iterator::max_by_key` returned the *last* maximal one, which
//! [`OrdIndex::max`] reproduces likewise.
//!
//! LNC-R/LNC-RA cannot use a statically keyed index — its profit
//! `λᵢ(now)·cᵢ/sᵢ` re-evaluates the reference rate at every decision point,
//! and two sets' profits can cross as `now` advances — so it maintains an
//! epoch-cached ranking instead; see [`crate::policy::lnc`].

use std::collections::BTreeSet;

use crate::clock::Timestamp;
use crate::index::EntryId;
use crate::key::QueryKey;

/// A totally ordered `f64` wrapper (IEEE-754 `total_cmp` order), used to key
/// victim indexes by floating-point priorities such as the GreedyDual-Size
/// credit `H`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // The same comparison the old O(n) scan used (`f64::total_cmp`), so
        // victim order is unchanged down to NaN/signed-zero corner cases.
        self.0.total_cmp(&other.0)
    }
}

/// An ordered victim index: the policy's eviction priority for every cached
/// entry, kept in a B-tree set of `(key, id)` pairs.
///
/// The policy owns the key discipline: it must [`remove`](OrdIndex::remove)
/// an entry's *current* key before mutating state the key derives from, and
/// re-[`insert`](OrdIndex::insert) the new key afterwards (or call
/// [`update`](OrdIndex::update)).  Violations are caught by the debug
/// assertions on removal.
#[derive(Debug, Clone, Default)]
pub(crate) struct OrdIndex<K: Ord + Copy> {
    set: BTreeSet<(K, EntryId)>,
}

impl<K: Ord + Copy> OrdIndex<K> {
    /// Creates an empty index.
    pub fn new() -> Self {
        OrdIndex {
            set: BTreeSet::new(),
        }
    }

    /// Number of indexed entries.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Adds an entry under its current priority key.
    pub fn insert(&mut self, key: K, id: EntryId) {
        let fresh = self.set.insert((key, id));
        debug_assert!(fresh, "victim index already holds this (key, id) pair");
    }

    /// Removes an entry by its current priority key.
    pub fn remove(&mut self, key: K, id: EntryId) {
        let found = self.set.remove(&(key, id));
        debug_assert!(found, "victim index lost track of an entry's key");
    }

    /// Re-keys an entry whose priority changed.
    pub fn update(&mut self, old_key: K, new_key: K, id: EntryId) {
        self.remove(old_key, id);
        self.insert(new_key, id);
    }

    /// The entry with the smallest key; ties resolve to the smallest
    /// [`EntryId`] (the first match of the old slot-order scan).
    pub fn min(&self) -> Option<(K, EntryId)> {
        self.set.first().copied()
    }

    /// The entry with the largest key; ties resolve to the largest
    /// [`EntryId`] (the last match of the old slot-order scan).
    pub fn max(&self) -> Option<(K, EntryId)> {
        self.set.last().copied()
    }

    /// Iterates `(key, id)` pairs in ascending key order (used by the
    /// differential tests' non-mutating victim plans).
    #[cfg(test)]
    pub fn iter(&self) -> impl Iterator<Item = (K, EntryId)> + '_ {
        self.set.iter().copied()
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.set.clear();
    }
}

/// The shared eviction loop of the index-driven policies.
///
/// Implementors provide [`evict_one`](VictimIndexed::evict_one) — unlink the
/// single next victim from the entry store *and* the index, retain whatever
/// reference information the policy keeps, update byte accounting and the
/// eviction statistics, and return the victim's key — and inherit the loop
/// that frees space for `needed` incoming bytes.
pub(crate) trait VictimIndexed {
    /// Bytes currently occupied by cached sets.
    fn occupied_bytes(&self) -> u64;

    /// The capacity the loop must shrink under.
    fn limit_bytes(&self) -> u64;

    /// Evicts the policy's next victim, returning its key, or `None` when
    /// the cache is empty.  `now` is the logical time of the eviction (used
    /// by policies that retain victims' reference histories).
    fn evict_one(&mut self, now: Timestamp) -> Option<QueryKey>;

    /// Evicts victims until `needed` more bytes fit within the capacity.
    ///
    /// This is the loop every policy used to duplicate: it terminates when
    /// the invariant `occupied + needed <= capacity` is restored or the
    /// cache runs out of victims (the caller has already rejected sets that
    /// can never fit).
    fn evict_for(&mut self, needed: u64, now: Timestamp) -> Vec<QueryKey> {
        let mut evicted = Vec::new();
        while self.occupied_bytes() + needed > self.limit_bytes() {
            let Some(key) = self.evict_one(now) else {
                break;
            };
            evicted.push(key);
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: usize) -> EntryId {
        EntryId::from_index_for_tests(n)
    }

    #[test]
    fn min_and_max_respect_tie_order() {
        let mut index: OrdIndex<u64> = OrdIndex::new();
        index.insert(5, id(3));
        index.insert(5, id(1));
        index.insert(9, id(2));
        index.insert(9, id(7));
        // Smallest key, then smallest id — the first slot-order match.
        assert_eq!(index.min(), Some((5, id(1))));
        // Largest key, then largest id — the last slot-order match.
        assert_eq!(index.max(), Some((9, id(7))));
    }

    #[test]
    fn update_rekeys_in_place() {
        let mut index: OrdIndex<u64> = OrdIndex::new();
        index.insert(1, id(0));
        index.insert(2, id(1));
        index.update(1, 10, id(0));
        assert_eq!(index.min(), Some((2, id(1))));
        assert_eq!(index.max(), Some((10, id(0))));
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn ord_f64_is_total() {
        let mut keys = [OrdF64(2.0), OrdF64(-1.0), OrdF64(0.0), OrdF64(2.0)];
        keys.sort();
        assert_eq!(keys[0], OrdF64(-1.0));
        assert_eq!(keys[3], OrdF64(2.0));
    }
}
