//! Differential property tests: indexed victim selection vs. the scan/sort
//! reference implementations.
//!
//! Every policy keeps its pre-index victim selection — the O(n)-per-victim
//! scan (or, for LNC, the O(n log n) sort of Figure 1) — under `#[cfg(test)]`
//! as an oracle.  These properties replay random admit / reference / remove /
//! shrink traces against the real (index-driven) caches and assert, at every
//! step, that the index would pick *identical victim sequences* for a spread
//! of space demands, and that the capacity-planning signals
//! (`min_cached_profit`, `shrink_loss`, `grow_gain`) are value-identical.
//! Shrinks additionally check the *actual* eviction sequence end to end
//! against the oracle's plan, including a final shrink-to-zero drain of the
//! whole cache.
//!
//! The traces deliberately hammer the corners that break incremental
//! indexes: same-key refreshes that change sizes and priorities, removals
//! (invalidation does not evict), evictions of freshly admitted entries,
//! slot reuse after removal, and repeated decisions at both advancing and
//! unchanged timestamps.

use proptest::prelude::*;

use crate::clock::Timestamp;
use crate::key::QueryKey;
use crate::policy::gds::GreedyDualSizeCache;
use crate::policy::lcs::LcsCache;
use crate::policy::lfu::LfuCache;
use crate::policy::lnc::{LncCache, LncConfig};
use crate::policy::lru::LruCache;
use crate::policy::lru_k::LruKCache;
use crate::policy::QueryCache;
use crate::value::{ExecutionCost, SizedPayload};

/// One step of a generated trace.
#[derive(Debug, Clone)]
struct Op {
    /// Action selector: 0 = remove, 1 = shrink-and-regrow, else reference
    /// (get, insert on miss).
    action: u8,
    /// Which query (small id space so that repetitions occur).
    query: u8,
    /// Retrieved-set size in bytes.
    size: u64,
    /// Execution cost in block reads.
    cost: u64,
    /// Logical time increment before the operation (0 = reuse the previous
    /// timestamp, exercising the same-epoch paths).
    advance_us: u64,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..12, 0u8..24, 1u64..2_000, 1u64..20_000, 0u64..2_000_000).prop_map(
        |(action, query, size, cost, advance_us)| Op {
            action,
            query,
            size,
            cost,
            advance_us,
        },
    )
}

fn query_key(op: &Op) -> QueryKey {
    QueryKey::new(format!("diff-query-{}", op.query))
}

/// The space demands to probe victim plans with after each step: almost
/// nothing, barely one victim, a partial drain, everything, more than
/// everything.
fn needed_probes(used: u64, capacity: u64) -> [u64; 5] {
    let free = capacity.saturating_sub(used);
    [
        1,
        free + 1,
        free + used / 2,
        free + used,
        free + used + 1_000,
    ]
}

/// Drives one policy through a trace, checking the provided oracles after
/// every step.
///
/// * `plans(cache, needed, now)` must return the `(indexed, reference)`
///   victim plans for an incoming demand of `needed` bytes;
/// * `shrink_plan(cache, new_capacity, now)` must return the oracle's
///   predicted eviction sequence for a shrink to `new_capacity`;
/// * `signals(cache, now)` hosts per-policy signal equivalence checks.
fn run_differential<C, P, S, X>(mut cache: C, ops: &[Op], plans: P, shrink_plan: S, signals: X)
where
    C: QueryCache<SizedPayload>,
    P: Fn(&mut C, u64, Timestamp) -> (Vec<QueryKey>, Vec<QueryKey>),
    S: Fn(&mut C, u64, Timestamp) -> Vec<QueryKey>,
    X: Fn(&mut C, Timestamp),
{
    let mut now = 0u64;
    for op in ops {
        now += op.advance_us;
        let ts = Timestamp::from_micros(now.max(1));
        let key = query_key(op);
        match op.action {
            0 => {
                cache.remove(&key);
            }
            1 => {
                // Shrink to half the occupancy: the oracle predicts the exact
                // eviction sequence; then grow back so the trace continues.
                let capacity = cache.capacity_bytes();
                let target = cache.used_bytes() / 2;
                let expected = shrink_plan(&mut cache, target, ts);
                let evicted = cache.set_capacity_bytes(target, ts);
                assert_eq!(
                    evicted,
                    expected,
                    "{}: shrink eviction sequence diverged from the scan oracle",
                    cache.name()
                );
                cache.set_capacity_bytes(capacity, ts);
            }
            _ => {
                if cache.get(&key, ts).is_none() {
                    cache.insert(
                        key,
                        SizedPayload::new(op.size),
                        ExecutionCost::from_blocks(op.cost),
                        ts,
                    );
                }
            }
        }

        for needed in needed_probes(cache.used_bytes(), cache.capacity_bytes()) {
            let (indexed, reference) = plans(&mut cache, needed, ts);
            assert_eq!(
                indexed,
                reference,
                "{}: victim plan diverged for needed={needed}",
                cache.name()
            );
        }
        signals(&mut cache, ts);
    }

    // Final end-to-end drain: shrinking to zero must evict every cached set
    // in exactly the oracle's order.
    let ts = Timestamp::from_micros(now.max(1) + 1);
    let expected = shrink_plan(&mut cache, 0, ts);
    let evicted = cache.set_capacity_bytes(0, ts);
    assert_eq!(
        evicted,
        expected,
        "{}: full-drain eviction sequence diverged from the scan oracle",
        cache.name()
    );
    assert_eq!(cache.used_bytes(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lru_index_matches_scan_reference(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        capacity in 2_000u64..40_000,
    ) {
        run_differential(
            LruCache::<SizedPayload>::new(capacity),
            &ops,
            |cache, needed, _| {
                (cache.indexed_victim_plan(needed), cache.reference_victim_plan(needed))
            },
            |cache, target, _| cache.reference_victim_plan(cache.capacity_bytes() - target),
            |_, _| {},
        );
    }

    #[test]
    fn lru_k_index_matches_scan_reference(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        capacity in 2_000u64..40_000,
    ) {
        run_differential(
            LruKCache::<SizedPayload>::with_capacity(capacity, 3),
            &ops,
            |cache, needed, _| {
                (cache.indexed_victim_plan(needed), cache.reference_victim_plan(needed))
            },
            |cache, target, _| cache.reference_victim_plan(cache.capacity_bytes() - target),
            |_, _| {},
        );
    }

    #[test]
    fn lfu_index_matches_scan_reference(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        capacity in 2_000u64..40_000,
    ) {
        run_differential(
            LfuCache::<SizedPayload>::new(capacity),
            &ops,
            |cache, needed, _| {
                (cache.indexed_victim_plan(needed), cache.reference_victim_plan(needed))
            },
            |cache, target, _| cache.reference_victim_plan(cache.capacity_bytes() - target),
            |_, _| {},
        );
    }

    #[test]
    fn lcs_index_matches_scan_reference(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        capacity in 2_000u64..40_000,
    ) {
        run_differential(
            LcsCache::<SizedPayload>::new(capacity),
            &ops,
            |cache, needed, _| {
                (cache.indexed_victim_plan(needed), cache.reference_victim_plan(needed))
            },
            |cache, target, _| cache.reference_victim_plan(cache.capacity_bytes() - target),
            |_, _| {},
        );
    }

    #[test]
    fn gds_index_matches_scan_reference(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        capacity in 2_000u64..40_000,
    ) {
        run_differential(
            GreedyDualSizeCache::<SizedPayload>::new(capacity),
            &ops,
            |cache, needed, _| {
                (cache.indexed_victim_plan(needed), cache.reference_victim_plan(needed))
            },
            |cache, target, _| cache.reference_victim_plan(cache.capacity_bytes() - target),
            |_, _| {},
        );
    }

    #[test]
    fn lnc_ranking_matches_sort_reference(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        capacity in 2_000u64..40_000,
        admission in 0u8..2,
    ) {
        let config = if admission == 1 {
            LncConfig::lnc_ra(capacity)
        } else {
            LncConfig::lnc_r(capacity)
        };
        run_differential(
            LncCache::<SizedPayload>::new(config),
            &ops,
            |cache, needed, now| {
                let reference = cache
                    .select_victims_reference(needed, now)
                    .map(|ids| cache.keys_of(&ids))
                    .unwrap_or_default();
                let indexed = cache
                    .select_victims(needed, now)
                    .map(|ids| cache.keys_of(&ids))
                    .unwrap_or_default();
                (indexed, reference)
            },
            |cache, target, now| {
                let used = cache.used_bytes();
                if used <= target {
                    return Vec::new();
                }
                let ids = cache
                    .select_victims_reference(used - target, now)
                    .expect("evicting everything frees the overshoot");
                cache.keys_of(&ids)
            },
            |cache, now| {
                // The capacity-planning signals must be value-identical to
                // their scan/sort references.
                let fast = QueryCache::min_cached_profit(cache, now);
                let scan = LncCache::min_cached_profit(cache, now);
                assert_eq!(fast, scan, "min_cached_profit fast path diverged");
                for bytes in [1u64, 500, cache.capacity_bytes() / 2, cache.capacity_bytes()] {
                    let loss_ref = cache.shrink_loss_reference(bytes, now);
                    let loss = QueryCache::shrink_loss(cache, bytes, now);
                    assert_eq!(loss, loss_ref, "shrink_loss diverged for {bytes} bytes");
                    let gain_ref = cache.grow_gain_reference(bytes, now);
                    let gain = QueryCache::grow_gain(cache, bytes, now);
                    assert_eq!(gain, gain_ref, "grow_gain diverged for {bytes} bytes");
                }
            },
        );
    }
}
