//! Retained reference information (paper §2.4).
//!
//! With `K > 1`, a freshly admitted retrieved set has incomplete reference
//! information and is therefore among the first eviction candidates.  If its
//! reference history were discarded together with the set, the history would
//! have to be rebuilt from scratch after every re-reference and the set could
//! never accumulate enough references to stay cached — a starvation problem
//! first described for LRU-K.
//!
//! WATCHMAN therefore *retains* the reference information (timestamps, size
//! and execution cost) of evicted and admission-rejected sets in a side
//! table.  Instead of a wall-clock timeout (the "Five Minute Rule"), retained
//! entries are dropped whenever their profit falls below the smallest profit
//! among currently cached sets: valuable histories (small, expensive,
//! frequently referenced sets) survive long, worthless ones disappear
//! quickly, and the amount of retained information automatically scales with
//! the cache size.

use std::collections::HashMap;

use crate::clock::Timestamp;
use crate::history::ReferenceHistory;
use crate::key::QueryKey;
use crate::profit::Profit;
use crate::value::ExecutionCost;

/// Reference metadata kept for a retrieved set that is not currently cached.
#[derive(Debug, Clone)]
pub struct RetainedInfo {
    /// The query key the information belongs to.
    pub key: QueryKey,
    /// The size of the retrieved set when it was last materialized.
    pub size_bytes: u64,
    /// The execution cost of the associated query.
    pub cost: ExecutionCost,
    /// The last (up to) K reference times.
    pub history: ReferenceHistory,
}

impl RetainedInfo {
    /// The profit of the retrieved set this information describes, evaluated
    /// at time `now` using the maximal available number of reference samples
    /// (paper §2.4: fewer than K samples are used as-is).
    pub fn profit(&self, now: Timestamp) -> Profit {
        match self.history.rate(now) {
            Some(rate) => Profit::of_set(rate, self.cost, self.size_bytes),
            None => Profit::ZERO,
        }
    }

    /// Approximate number of bytes of cache metadata this entry occupies.
    pub fn metadata_bytes(&self) -> u64 {
        self.key.metadata_bytes() + self.history.metadata_bytes() + 16
    }
}

/// The side table of retained reference information.
#[derive(Debug, Clone, Default)]
pub struct RetainedStore {
    entries: HashMap<QueryKey, RetainedInfo>,
    /// Hard safety bound on the number of retained entries; the profit-based
    /// policy normally keeps the table far smaller, but a bound protects
    /// against pathological workloads where the cache is empty (min profit is
    /// undefined) for long stretches.
    max_entries: usize,
}

impl RetainedStore {
    /// Creates a store bounded to `max_entries` retained histories.
    pub fn new(max_entries: usize) -> Self {
        RetainedStore {
            entries: HashMap::new(),
            max_entries: max_entries.max(1),
        }
    }

    /// Number of retained histories.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total metadata bytes held by the store.
    pub fn metadata_bytes(&self) -> u64 {
        self.entries
            .values()
            .map(RetainedInfo::metadata_bytes)
            .sum()
    }

    /// Returns the retained information for `key`, if any.
    pub fn get(&self, key: &QueryKey) -> Option<&RetainedInfo> {
        self.entries.get(key)
    }

    /// Whether information for `key` is retained.
    pub fn contains(&self, key: &QueryKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Records a reference to a non-cached retrieved set, if its information
    /// is retained.  Returns `true` if information for the key is retained.
    ///
    /// A reference carrying the same timestamp as the most recent recorded
    /// one is **not** recorded again: one logical reference may reach the
    /// cache twice at the same logical time (a single-flight waiter retrying
    /// after an abandoned flight re-enters the lookup path), and double
    /// counting it would inflate the λ estimate of Eq. 3.
    pub fn record_reference(&mut self, key: &QueryKey, now: Timestamp) -> bool {
        match self.entries.get_mut(key) {
            Some(info) => {
                if info.history.last_reference() != Some(now) {
                    info.history.record(now);
                }
                true
            }
            None => false,
        }
    }

    /// Inserts or replaces retained information.  If the store is at its hard
    /// bound, the entry with the lowest profit is dropped first (ties broken
    /// by key signature, so displacement is deterministic rather than
    /// following hash-map iteration order).
    pub fn insert(&mut self, info: RetainedInfo, now: Timestamp) {
        if !self.entries.contains_key(&info.key) && self.entries.len() >= self.max_entries {
            if let Some(worst) = self
                .entries
                .values()
                .min_by_key(|i| (i.profit(now), i.key.signature().value()))
                .map(|i| i.key.clone())
            {
                // Only displace an existing entry if the newcomer is at least
                // as valuable; otherwise drop the newcomer.
                let worst_profit = self.entries[&worst].profit(now);
                if info.profit(now) >= worst_profit {
                    self.entries.remove(&worst);
                } else {
                    return;
                }
            }
        }
        self.entries.insert(info.key.clone(), info);
    }

    /// Removes and returns the retained information for `key`, typically
    /// because the retrieved set is being (re-)admitted to the cache.
    pub fn take(&mut self, key: &QueryKey) -> Option<RetainedInfo> {
        self.entries.remove(key)
    }

    /// Applies the paper's retention policy: drop every retained entry whose
    /// profit is smaller than `min_cached_profit`, the least profit among all
    /// currently cached retrieved sets.
    ///
    /// Returns the number of entries dropped.  When the cache is empty the
    /// caller should pass [`Profit::ZERO`], which retains everything (subject
    /// to the hard bound).
    pub fn purge_below(&mut self, min_cached_profit: Profit, now: Timestamp) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|_, info| info.profit(now) >= min_cached_profit);
        before - self.entries.len()
    }

    /// Removes every retained entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates over retained entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &RetainedInfo> {
        self.entries.values()
    }

    /// Retained entries ranked by descending profit at `now`, ties broken by
    /// key signature.
    ///
    /// This is the lookup discipline shared by the capacity-planning signals
    /// ([`QueryCache::grow_gain`](crate::policy::QueryCache::grow_gain)
    /// greedily packs this order): callers no longer sort hash-map iteration
    /// output themselves, which made tie outcomes depend on the map's seed.
    pub fn ranked_by_profit_desc(&self, now: Timestamp) -> Vec<&RetainedInfo> {
        let mut ranked: Vec<&RetainedInfo> = self.entries.values().collect();
        ranked.sort_unstable_by_key(|info| {
            (
                std::cmp::Reverse(info.profit(now)),
                info.key.signature().value(),
            )
        });
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    fn info(name: &str, size: u64, cost: f64, refs: &[u64], k: usize) -> RetainedInfo {
        let mut history = ReferenceHistory::new(k);
        for &r in refs {
            history.record(ts(r));
        }
        RetainedInfo {
            key: QueryKey::new(name.to_owned()),
            size_bytes: size,
            cost: ExecutionCost::from_block_reads(cost),
            history,
        }
    }

    #[test]
    fn record_reference_updates_existing_entry_only() {
        let mut store = RetainedStore::new(16);
        store.insert(info("q1", 100, 50.0, &[10], 2), ts(10));
        assert!(store.record_reference(&QueryKey::new("q1"), ts(20)));
        assert!(!store.record_reference(&QueryKey::new("q2"), ts(20)));
        assert_eq!(
            store
                .get(&QueryKey::new("q1"))
                .unwrap()
                .history
                .sample_count(),
            2
        );
    }

    #[test]
    fn duplicate_timestamp_references_are_recorded_once() {
        // A single-flight waiter retrying after an abandoned flight re-enters
        // the lookup path with the same logical timestamp; the retained
        // history must not count that logical reference twice.
        let mut store = RetainedStore::new(16);
        store.insert(info("q1", 100, 50.0, &[10], 4), ts(10));
        assert!(store.record_reference(&QueryKey::new("q1"), ts(20)));
        assert!(store.record_reference(&QueryKey::new("q1"), ts(20)));
        assert_eq!(
            store
                .get(&QueryKey::new("q1"))
                .unwrap()
                .history
                .sample_count(),
            2,
            "the second same-timestamp record must be a no-op"
        );
        // A later reference still counts.
        assert!(store.record_reference(&QueryKey::new("q1"), ts(30)));
        assert_eq!(
            store
                .get(&QueryKey::new("q1"))
                .unwrap()
                .history
                .sample_count(),
            3
        );
    }

    #[test]
    fn take_removes_the_entry() {
        let mut store = RetainedStore::new(16);
        store.insert(info("q1", 100, 50.0, &[10], 2), ts(10));
        let taken = store.take(&QueryKey::new("q1")).unwrap();
        assert_eq!(taken.size_bytes, 100);
        assert!(store.is_empty());
        assert!(store.take(&QueryKey::new("q1")).is_none());
    }

    #[test]
    fn purge_drops_entries_below_min_cached_profit() {
        let mut store = RetainedStore::new(16);
        // Valuable: small, expensive, recently referenced twice.
        store.insert(info("valuable", 10, 1_000.0, &[90, 100], 2), ts(100));
        // Worthless: huge, cheap, referenced once long ago.
        store.insert(info("worthless", 1_000_000, 1.0, &[1], 2), ts(100));
        let now = ts(200);
        let threshold = store.get(&QueryKey::new("valuable")).unwrap().profit(now);
        // Purge with a threshold equal to the valuable entry's profit: the
        // valuable entry survives (>=), the worthless one is dropped.
        let dropped = store.purge_below(threshold, now);
        assert_eq!(dropped, 1);
        assert!(store.contains(&QueryKey::new("valuable")));
        assert!(!store.contains(&QueryKey::new("worthless")));
    }

    #[test]
    fn purge_with_zero_threshold_keeps_everything() {
        let mut store = RetainedStore::new(16);
        store.insert(info("a", 10, 10.0, &[5], 2), ts(5));
        store.insert(info("b", 10, 10.0, &[6], 2), ts(6));
        assert_eq!(store.purge_below(Profit::ZERO, ts(100)), 0);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn hard_bound_displaces_lowest_profit_entry() {
        let mut store = RetainedStore::new(2);
        store.insert(info("low", 1_000_000, 1.0, &[1], 2), ts(1));
        store.insert(info("mid", 100, 100.0, &[2], 2), ts(2));
        // Store is full; inserting a high-profit entry displaces "low".
        store.insert(info("high", 10, 10_000.0, &[3], 2), ts(3));
        assert_eq!(store.len(), 2);
        assert!(store.contains(&QueryKey::new("high")));
        assert!(store.contains(&QueryKey::new("mid")));
        assert!(!store.contains(&QueryKey::new("low")));
    }

    #[test]
    fn hard_bound_rejects_entry_worse_than_all_retained() {
        let mut store = RetainedStore::new(2);
        store.insert(info("a", 10, 1_000.0, &[1, 2], 2), ts(2));
        store.insert(info("b", 10, 1_000.0, &[1, 2], 2), ts(2));
        store.insert(info("junk", 1_000_000, 1.0, &[3], 2), ts(3));
        assert_eq!(store.len(), 2);
        assert!(!store.contains(&QueryKey::new("junk")));
    }

    #[test]
    fn reinsert_same_key_replaces_in_place_even_when_full() {
        let mut store = RetainedStore::new(1);
        store.insert(info("a", 10, 10.0, &[1], 2), ts(1));
        store.insert(info("a", 20, 10.0, &[2], 2), ts(2));
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(&QueryKey::new("a")).unwrap().size_bytes, 20);
    }

    #[test]
    fn profit_of_entry_without_references_is_zero() {
        let i = info("empty", 100, 50.0, &[], 2);
        assert_eq!(i.profit(ts(10)), Profit::ZERO);
    }

    #[test]
    fn metadata_bytes_is_positive_and_additive() {
        let mut store = RetainedStore::new(8);
        assert_eq!(store.metadata_bytes(), 0);
        store.insert(info("a", 10, 10.0, &[1], 2), ts(1));
        let one = store.metadata_bytes();
        store.insert(info("bb", 10, 10.0, &[1, 2], 2), ts(2));
        assert!(store.metadata_bytes() > one);
    }

    #[test]
    fn clear_and_iter() {
        let mut store = RetainedStore::new(8);
        store.insert(info("a", 10, 10.0, &[1], 2), ts(1));
        store.insert(info("b", 10, 10.0, &[1], 2), ts(1));
        assert_eq!(store.iter().count(), 2);
        store.clear();
        assert!(store.is_empty());
    }
}
