//! Cached payloads and query execution costs.
//!
//! WATCHMAN caches *retrieved sets*: the materialized results of warehouse
//! queries.  The cache policies in this crate are generic over the payload
//! type; any type that can report its storage footprint via [`CachePayload`]
//! can be cached.  [`RetrievedSet`] is the concrete payload produced by the
//! warehouse substrate — a small columnar batch of aggregate rows — and
//! [`ExecutionCost`] is the paper's query execution cost `cᵢ`, measured in
//! logical block reads.

use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Types that can be stored in a WATCHMAN cache.
///
/// The only requirement is an accurate report of the number of bytes the
/// value occupies (`sᵢ` in the paper's profit metric).  The size must be
/// stable for the lifetime of the cached value: policies account space at
/// admission time and release exactly the same amount at eviction.
pub trait CachePayload {
    /// The storage footprint of the value in bytes.
    ///
    /// Must be greater than zero for the profit metric (`λᵢ·cᵢ/sᵢ`) to be
    /// well defined; implementations for possibly-empty containers should
    /// round up to at least one byte.
    fn size_bytes(&self) -> u64;
}

impl CachePayload for Bytes {
    fn size_bytes(&self) -> u64 {
        (self.len() as u64).max(1)
    }
}

impl CachePayload for Vec<u8> {
    fn size_bytes(&self) -> u64 {
        (self.len() as u64).max(1)
    }
}

impl CachePayload for String {
    fn size_bytes(&self) -> u64 {
        (self.len() as u64).max(1)
    }
}

impl<T: CachePayload> CachePayload for std::sync::Arc<T> {
    fn size_bytes(&self) -> u64 {
        self.as_ref().size_bytes()
    }
}

/// A payload that occupies a declared number of bytes without materializing
/// them.
///
/// The evaluation experiments replay traces of tens of thousands of queries;
/// only the *size* of each retrieved set affects policy decisions, so the
/// simulator uses `SizedPayload` to avoid allocating hundreds of megabytes of
/// synthetic rows.  Library users caching real data use [`RetrievedSet`] or
/// their own [`CachePayload`] type instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizedPayload {
    bytes: u64,
}

impl SizedPayload {
    /// Creates a payload standing in for `bytes` bytes of data (minimum 1).
    pub fn new(bytes: u64) -> Self {
        SizedPayload {
            bytes: bytes.max(1),
        }
    }
}

impl CachePayload for SizedPayload {
    fn size_bytes(&self) -> u64 {
        self.bytes
    }
}

/// A single value inside a retrieved-set row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Datum {
    /// 64-bit signed integer (counts, keys).
    Int(i64),
    /// 64-bit float (sums, averages).
    Float(f64),
    /// Short string (group-by keys such as return flags or nations).
    Text(String),
    /// SQL NULL.
    Null,
}

impl Datum {
    /// The number of bytes this value contributes to the retrieved-set size.
    pub fn size_bytes(&self) -> u64 {
        match self {
            Datum::Int(_) => 8,
            Datum::Float(_) => 8,
            Datum::Text(s) => s.len() as u64 + 4,
            Datum::Null => 1,
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Float(v) => write!(f, "{v:.4}"),
            Datum::Text(s) => write!(f, "{s}"),
            Datum::Null => write!(f, "NULL"),
        }
    }
}

/// A row of a retrieved set.
pub type Row = Vec<Datum>;

/// The materialized result of a warehouse query.
///
/// Decision-support queries typically return small sets of statistical data
/// (sums, counts, averages, grouped by a handful of keys), which is exactly
/// what makes retrieved-set caching attractive (paper §1).  A `RetrievedSet`
/// stores the column names and rows, and reports a size that includes both
/// the data and the per-row representation overhead.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RetrievedSet {
    columns: Vec<String>,
    rows: Vec<Row>,
}

impl RetrievedSet {
    /// Creates an empty retrieved set with the given column names.
    pub fn new(columns: Vec<String>) -> Self {
        RetrievedSet {
            columns,
            rows: Vec::new(),
        }
    }

    /// Creates a retrieved set from columns and rows.
    ///
    /// # Panics
    ///
    /// Panics if any row's arity differs from the number of columns.
    pub fn with_rows(columns: Vec<String>, rows: Vec<Row>) -> Self {
        for row in &rows {
            assert_eq!(
                row.len(),
                columns.len(),
                "row arity must match column count"
            );
        }
        RetrievedSet { columns, rows }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the number of columns.
    pub fn push_row(&mut self, row: Row) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity must match column count"
        );
        self.rows.push(row);
    }

    /// The column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the set has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl CachePayload for RetrievedSet {
    fn size_bytes(&self) -> u64 {
        let header: u64 = self.columns.iter().map(|c| c.len() as u64 + 8).sum();
        let data: u64 = self
            .rows
            .iter()
            .map(|r| 8 + r.iter().map(Datum::size_bytes).sum::<u64>())
            .sum();
        (header + data).max(1)
    }
}

/// The execution cost `cᵢ` of the query that produced a retrieved set.
///
/// Following the paper's experimental setup (§4.1), cost is expressed as the
/// number of logical block reads the query performs, which makes the estimate
/// independent of the buffer manager's state.  Costs are non-negative finite
/// floats; constructors clamp invalid inputs to zero.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct ExecutionCost(f64);

impl ExecutionCost {
    /// Zero cost (a query answered without touching storage).
    pub const ZERO: ExecutionCost = ExecutionCost(0.0);

    /// Creates a cost from a number of logical block reads.
    ///
    /// Negative, NaN and infinite inputs are clamped to zero so that the
    /// profit metric stays finite.
    pub fn from_block_reads(blocks: f64) -> Self {
        if blocks.is_finite() && blocks > 0.0 {
            ExecutionCost(blocks)
        } else {
            ExecutionCost(0.0)
        }
    }

    /// Creates a cost from an integral block-read count.
    pub fn from_blocks(blocks: u64) -> Self {
        ExecutionCost(blocks as f64)
    }

    /// Returns the cost as a float.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns the sum of two costs.
    pub fn saturating_add(self, other: ExecutionCost) -> ExecutionCost {
        ExecutionCost(self.0 + other.0)
    }
}

impl Default for ExecutionCost {
    fn default() -> Self {
        ExecutionCost::ZERO
    }
}

impl fmt::Display for ExecutionCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} blocks", self.0)
    }
}

impl From<u64> for ExecutionCost {
    fn from(blocks: u64) -> Self {
        ExecutionCost::from_blocks(blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_payload_reports_declared_size() {
        assert_eq!(SizedPayload::new(1024).size_bytes(), 1024);
    }

    #[test]
    fn sized_payload_rounds_zero_up_to_one() {
        assert_eq!(SizedPayload::new(0).size_bytes(), 1);
    }

    #[test]
    fn bytes_payload_size() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b.size_bytes(), 5);
        assert_eq!(Bytes::new().size_bytes(), 1);
    }

    #[test]
    fn vec_and_string_payload_size() {
        assert_eq!(vec![0u8; 16].size_bytes(), 16);
        assert_eq!("abc".to_owned().size_bytes(), 3);
        assert_eq!(String::new().size_bytes(), 1);
    }

    #[test]
    fn arc_payload_delegates() {
        let inner = SizedPayload::new(77);
        assert_eq!(std::sync::Arc::new(inner).size_bytes(), 77);
    }

    #[test]
    fn retrieved_set_size_grows_with_rows() {
        let mut rs = RetrievedSet::new(vec!["sum".into(), "count".into()]);
        let empty = rs.size_bytes();
        rs.push_row(vec![Datum::Float(10.0), Datum::Int(3)]);
        assert!(rs.size_bytes() > empty);
        assert_eq!(rs.len(), 1);
        assert!(!rs.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn retrieved_set_rejects_mismatched_row() {
        let mut rs = RetrievedSet::new(vec!["a".into()]);
        rs.push_row(vec![Datum::Int(1), Datum::Int(2)]);
    }

    #[test]
    fn retrieved_set_with_rows_checks_arity() {
        let rs = RetrievedSet::with_rows(
            vec!["a".into()],
            vec![vec![Datum::Int(1)], vec![Datum::Null]],
        );
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.columns(), &["a".to_owned()]);
    }

    #[test]
    fn datum_sizes() {
        assert_eq!(Datum::Int(1).size_bytes(), 8);
        assert_eq!(Datum::Float(1.0).size_bytes(), 8);
        assert_eq!(Datum::Text("ab".into()).size_bytes(), 6);
        assert_eq!(Datum::Null.size_bytes(), 1);
    }

    #[test]
    fn datum_display() {
        assert_eq!(Datum::Int(7).to_string(), "7");
        assert_eq!(Datum::Text("x".into()).to_string(), "x");
        assert_eq!(Datum::Null.to_string(), "NULL");
    }

    #[test]
    fn execution_cost_clamps_invalid_values() {
        assert_eq!(ExecutionCost::from_block_reads(-5.0).value(), 0.0);
        assert_eq!(ExecutionCost::from_block_reads(f64::NAN).value(), 0.0);
        assert_eq!(ExecutionCost::from_block_reads(f64::INFINITY).value(), 0.0);
        assert_eq!(ExecutionCost::from_block_reads(12.5).value(), 12.5);
    }

    #[test]
    fn execution_cost_addition() {
        let a = ExecutionCost::from_blocks(10);
        let b = ExecutionCost::from_blocks(32);
        assert_eq!(a.saturating_add(b).value(), 42.0);
    }

    #[test]
    fn execution_cost_display_and_from() {
        let c: ExecutionCost = 100u64.into();
        assert_eq!(c.to_string(), "100.0 blocks");
    }
}
