//! Performance metrics (paper §2.1 and §4.1).
//!
//! The paper evaluates WATCHMAN with three metrics:
//!
//! * **Cost savings ratio (CSR)** — the fraction of total query execution
//!   cost that was saved by answering references from the cache:
//!   `CSR = Σᵢ cᵢ·hᵢ / Σᵢ cᵢ·rᵢ` (primary metric).
//! * **Hit ratio (HR)** — `HR = Σᵢ hᵢ / Σᵢ rᵢ` (secondary metric).
//! * **Average external fragmentation** — the average fraction of unused
//!   cache space (tertiary metric).
//!
//! [`CacheStats`] accumulates the counters needed for CSR and HR and is
//! maintained by every policy; [`FragmentationTracker`] samples cache
//! occupancy over time and is driven by the simulator.

use serde::{Deserialize, Serialize};

use crate::value::ExecutionCost;

/// Counters accumulated by a cache policy over its lifetime.
///
/// The counting protocol is: every logical query reference results in exactly
/// one [`record_hit`](CacheStats::record_hit), one
/// [`record_miss`](CacheStats::record_miss), one
/// [`record_coalesced`](CacheStats::record_coalesced), one
/// [`record_fetch_error`](CacheStats::record_fetch_error) *or* one
/// [`record_stale`](CacheStats::record_stale) call (policies record hits and
/// misses from their `get`/`insert` implementations; the concurrent engine
/// records coalesced, error and stale references), so
/// `references = hits + coalesced + fetch_errors + stale_serves + misses`
/// and the cost accumulators cover every reference exactly once.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total number of query references observed.
    pub references: u64,
    /// References satisfied from the cache.
    pub hits: u64,
    /// References satisfied by waiting on another session's in-flight
    /// execution of the same query (single-flight coalescing).  Like a hit,
    /// a coalesced reference saves its full execution cost; unlike a hit, the
    /// retrieved set was not yet cached when the reference arrived.
    pub coalesced: u64,
    /// References that ended in a terminal fetch error (retry budget spent
    /// or fatal error, and no stale serve applied).  An errored reference
    /// neither paid nor saved execution cost, so it stays out of both CSR
    /// accumulators — failure must not flatter *or* tank the savings ratio.
    pub fetch_errors: u64,
    /// References answered with a last-known-good value after a fetch
    /// failure or an open circuit breaker.  A stale serve pays its refetch
    /// cost into `total_cost` but adds **nothing** to `saved_cost`: serving
    /// possibly-wrong bytes is degradation, and degradation must never
    /// inflate CSR.
    pub stale_serves: u64,
    /// Σ cᵢ over all references (the CSR denominator).
    pub total_cost: f64,
    /// Σ cᵢ over references satisfied from cache (the CSR numerator).
    pub saved_cost: f64,
    /// Number of retrieved sets offered for admission.
    pub insertions_offered: u64,
    /// Number of retrieved sets actually admitted.
    pub admissions: u64,
    /// Number of admission rejections (admission test failed or set too big).
    pub rejections: u64,
    /// Number of cached sets evicted to make room.
    pub evictions: u64,
    /// Total bytes evicted.
    pub bytes_evicted: u64,
}

impl CacheStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a reference satisfied from the cache for a set whose query
    /// execution cost is `cost`.
    pub fn record_hit(&mut self, cost: ExecutionCost) {
        self.references += 1;
        self.hits += 1;
        self.total_cost += cost.value();
        self.saved_cost += cost.value();
    }

    /// Records a reference that missed the cache and required executing a
    /// query of the given cost.
    pub fn record_miss(&mut self, cost: ExecutionCost) {
        self.references += 1;
        self.total_cost += cost.value();
    }

    /// Records a reference that was satisfied by coalescing onto another
    /// session's in-flight execution of the same query (hit-equivalent at the
    /// leader's observed cost: the reference saved `cost` without executing).
    pub fn record_coalesced(&mut self, cost: ExecutionCost) {
        self.references += 1;
        self.coalesced += 1;
        self.total_cost += cost.value();
        self.saved_cost += cost.value();
    }

    /// Records a reference that ended in a terminal fetch error.  No cost
    /// moves: the query was never answered, so there is nothing to pay or
    /// save — only the reference itself is accounted.
    pub fn record_fetch_error(&mut self) {
        self.references += 1;
        self.fetch_errors += 1;
    }

    /// Records a reference answered with a stale last-known-good value for a
    /// set whose refetch cost is `cost`.  The cost lands in the CSR
    /// denominator (the reference *wanted* a fresh answer of that price) but
    /// not the numerator: a stale serve is availability, not savings.
    pub fn record_stale(&mut self, cost: ExecutionCost) {
        self.references += 1;
        self.stale_serves += 1;
        self.total_cost += cost.value();
    }

    /// Records the outcome of an admission attempt.
    pub fn record_admission(&mut self, admitted: bool) {
        self.insertions_offered += 1;
        if admitted {
            self.admissions += 1;
        } else {
            self.rejections += 1;
        }
    }

    /// Records the eviction of a cached set of the given size.
    pub fn record_eviction(&mut self, size_bytes: u64) {
        self.evictions += 1;
        self.bytes_evicted += size_bytes;
    }

    /// Number of references that missed the cache and paid their execution
    /// cost (coalesced references neither hit nor paid; errored references
    /// paid nothing; stale serves were answered without executing).
    pub fn misses(&self) -> u64 {
        self.references - self.hits - self.coalesced - self.fetch_errors - self.stale_serves
    }

    /// The hit ratio `HR` (Eq. 17); zero when no reference has been observed.
    ///
    /// Coalesced references count as satisfied: they were answered without
    /// executing the query, exactly like cache hits.  Stale serves and
    /// errored references do **not** count as satisfied (they sit in the
    /// denominator only): HR, like CSR, reports fresh answers.
    pub fn hit_ratio(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            (self.hits + self.coalesced) as f64 / self.references as f64
        }
    }

    /// The cost savings ratio `CSR` (Eq. 1); zero when no cost has been
    /// observed.
    pub fn cost_savings_ratio(&self) -> f64 {
        if self.total_cost <= 0.0 {
            0.0
        } else {
            self.saved_cost / self.total_cost
        }
    }

    /// The total execution cost actually *incurred* (cost of references that
    /// missed the cache) — the quantity LNC-R/LNC-A aim to minimize.
    pub fn incurred_cost(&self) -> f64 {
        self.total_cost - self.saved_cost
    }

    /// Merges another set of counters into this one (used when aggregating
    /// per-shard statistics from the concurrent wrapper).
    pub fn merge(&mut self, other: &CacheStats) {
        self.references += other.references;
        self.hits += other.hits;
        self.coalesced += other.coalesced;
        self.fetch_errors += other.fetch_errors;
        self.stale_serves += other.stale_serves;
        self.total_cost += other.total_cost;
        self.saved_cost += other.saved_cost;
        self.insertions_offered += other.insertions_offered;
        self.admissions += other.admissions;
        self.rejections += other.rejections;
        self.evictions += other.evictions;
        self.bytes_evicted += other.bytes_evicted;
    }
}

/// Samples cache occupancy to measure average external fragmentation.
///
/// The paper defines external fragmentation as the average fraction of
/// *unused* cache space; the complementary "fraction of used space" is what
/// Figure 6 plots.  The simulator records one sample after every query.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FragmentationTracker {
    samples: u64,
    used_fraction_sum: f64,
    min_used_fraction: f64,
    initialized: bool,
}

impl FragmentationTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one occupancy sample.  Samples with zero capacity are ignored.
    pub fn record(&mut self, used_bytes: u64, capacity_bytes: u64) {
        if capacity_bytes == 0 {
            return;
        }
        let fraction = (used_bytes as f64 / capacity_bytes as f64).clamp(0.0, 1.0);
        self.samples += 1;
        self.used_fraction_sum += fraction;
        if !self.initialized || fraction < self.min_used_fraction {
            self.min_used_fraction = fraction;
            self.initialized = true;
        }
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Average fraction of cache space that was in use (what Fig. 6 plots).
    pub fn average_used_fraction(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.used_fraction_sum / self.samples as f64
        }
    }

    /// Average external fragmentation: `1 − average_used_fraction`.
    pub fn average_fragmentation(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            1.0 - self.average_used_fraction()
        }
    }

    /// The minimum observed used fraction (the paper reports "the fraction of
    /// used space never drops below …").
    pub fn min_used_fraction(&self) -> f64 {
        if self.initialized {
            self.min_used_fraction
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(c: f64) -> ExecutionCost {
        ExecutionCost::from_block_reads(c)
    }

    #[test]
    fn empty_stats_have_zero_ratios() {
        let stats = CacheStats::new();
        assert_eq!(stats.hit_ratio(), 0.0);
        assert_eq!(stats.cost_savings_ratio(), 0.0);
        assert_eq!(stats.incurred_cost(), 0.0);
        assert_eq!(stats.misses(), 0);
    }

    #[test]
    fn hit_ratio_counts_references() {
        let mut stats = CacheStats::new();
        stats.record_hit(cost(10.0));
        stats.record_miss(cost(10.0));
        stats.record_miss(cost(10.0));
        stats.record_hit(cost(10.0));
        assert_eq!(stats.references, 4);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses(), 2);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn csr_weights_by_cost() {
        let mut stats = CacheStats::new();
        // Hit on an expensive query, miss on a cheap one.
        stats.record_hit(cost(900.0));
        stats.record_miss(cost(100.0));
        assert!((stats.cost_savings_ratio() - 0.9).abs() < 1e-12);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);
        assert!((stats.incurred_cost() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn csr_and_hr_diverge_for_skewed_costs() {
        let mut stats = CacheStats::new();
        // Many cheap hits, one expensive miss: HR high, CSR low.
        for _ in 0..9 {
            stats.record_hit(cost(1.0));
        }
        stats.record_miss(cost(991.0));
        assert!(stats.hit_ratio() > 0.89);
        assert!(stats.cost_savings_ratio() < 0.01);
    }

    #[test]
    fn coalesced_references_are_hit_equivalent() {
        let mut stats = CacheStats::new();
        stats.record_miss(cost(100.0)); // the leader executes
        stats.record_coalesced(cost(100.0)); // a waiter shares the result
        stats.record_hit(cost(100.0)); // a later reference hits the cache
        assert_eq!(stats.references, 3);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.coalesced, 1);
        assert_eq!(stats.misses(), 1);
        assert_eq!(
            stats.references,
            stats.hits + stats.coalesced + stats.misses()
        );
        // Two of three references saved their cost.
        assert!((stats.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert!((stats.cost_savings_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert!((stats.incurred_cost() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn merge_includes_coalesced() {
        let mut a = CacheStats::new();
        a.record_coalesced(cost(10.0));
        let mut b = CacheStats::new();
        b.record_coalesced(cost(5.0));
        a.merge(&b);
        assert_eq!(a.coalesced, 2);
        assert_eq!(a.references, 2);
        assert!((a.saved_cost - 15.0).abs() < 1e-12);
    }

    #[test]
    fn admission_and_eviction_counters() {
        let mut stats = CacheStats::new();
        stats.record_admission(true);
        stats.record_admission(false);
        stats.record_admission(true);
        stats.record_eviction(128);
        stats.record_eviction(64);
        assert_eq!(stats.insertions_offered, 3);
        assert_eq!(stats.admissions, 2);
        assert_eq!(stats.rejections, 1);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.bytes_evicted, 192);
    }

    #[test]
    fn errors_and_stale_serves_partition_references() {
        let mut stats = CacheStats::new();
        stats.record_hit(cost(100.0));
        stats.record_miss(cost(100.0));
        stats.record_coalesced(cost(100.0));
        stats.record_fetch_error();
        stats.record_stale(cost(100.0));
        assert_eq!(stats.references, 5);
        assert_eq!(stats.misses(), 1);
        assert_eq!(
            stats.references,
            stats.hits + stats.coalesced + stats.fetch_errors + stats.stale_serves + stats.misses()
        );
        // CSR: hit + coalesced saved 200 of the 400 cost observed (the
        // errored reference moved no cost; the stale serve paid but saved
        // nothing).
        assert!((stats.cost_savings_ratio() - 0.5).abs() < 1e-12);
        // HR: only fresh answers count — 2 of 5.
        assert!((stats.hit_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn stale_serves_never_inflate_csr() {
        let mut stats = CacheStats::new();
        stats.record_miss(cost(100.0));
        let before = stats.cost_savings_ratio();
        stats.record_stale(cost(900.0));
        assert!(
            stats.cost_savings_ratio() <= before,
            "a degraded answer must not look like a saving"
        );
        assert_eq!(stats.saved_cost, 0.0);
        assert!((stats.total_cost - 1_000.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_failure_counters() {
        let mut a = CacheStats::new();
        a.record_fetch_error();
        let mut b = CacheStats::new();
        b.record_stale(cost(3.0));
        b.record_fetch_error();
        a.merge(&b);
        assert_eq!(a.fetch_errors, 2);
        assert_eq!(a.stale_serves, 1);
        assert_eq!(a.references, 3);
        assert_eq!(a.misses(), 0);
    }

    #[test]
    fn merge_adds_all_counters() {
        let mut a = CacheStats::new();
        a.record_hit(cost(5.0));
        a.record_admission(true);
        let mut b = CacheStats::new();
        b.record_miss(cost(7.0));
        b.record_eviction(10);
        a.merge(&b);
        assert_eq!(a.references, 2);
        assert_eq!(a.hits, 1);
        assert!((a.total_cost - 12.0).abs() < 1e-12);
        assert_eq!(a.evictions, 1);
    }

    #[test]
    fn fragmentation_average() {
        let mut frag = FragmentationTracker::new();
        frag.record(50, 100);
        frag.record(100, 100);
        assert_eq!(frag.samples(), 2);
        assert!((frag.average_used_fraction() - 0.75).abs() < 1e-12);
        assert!((frag.average_fragmentation() - 0.25).abs() < 1e-12);
        assert!((frag.min_used_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fragmentation_ignores_zero_capacity() {
        let mut frag = FragmentationTracker::new();
        frag.record(10, 0);
        assert_eq!(frag.samples(), 0);
        assert_eq!(frag.average_used_fraction(), 0.0);
        assert_eq!(frag.min_used_fraction(), 0.0);
    }

    #[test]
    fn fragmentation_clamps_overfull_samples() {
        let mut frag = FragmentationTracker::new();
        frag.record(200, 100);
        assert!((frag.average_used_fraction() - 1.0).abs() < 1e-12);
    }
}
