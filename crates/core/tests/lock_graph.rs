//! Lock-order graph assertions over busy engine scenarios.
//!
//! These tests only exist under `--features lock-graph`: every
//! `watchman_core::sync` lock acquisition records (held class → acquired
//! class) edges into a global graph, and after driving the engine through
//! its concurrent paths the suite asserts the graph is **acyclic** (no
//! potential deadlock), **rank-disciplined** (same-class locks — the shard
//! vector — only ever nest in index order) and free of locks held across
//! task polls.  CI runs `cargo test --features lock-graph` so any future
//! code path that inverts an acquisition order fails the build with both
//! witness stacks in the panic message.

#![cfg(feature = "lock-graph")]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use watchman_core::clock::Timestamp;
use watchman_core::engine::{PolicyKind, RebalanceConfig, Watchman};
use watchman_core::key::QueryKey;
use watchman_core::runtime::block_on;
use watchman_core::sync::lock_graph;
use watchman_core::value::{CachePayload, ExecutionCost, SizedPayload};

/// The whole-engine scenario: concurrent sessions (sync and async),
/// coalesced misses, manual rebalance passes and atomic snapshots, all in
/// one process.  The graph this paints must be clean, and it must actually
/// contain edges — an empty graph would mean the instrumentation is off.
#[test]
fn busy_engine_keeps_the_lock_graph_acyclic() {
    const THREADS: usize = 4;
    const OPS: usize = 400;

    let engine: Watchman<SizedPayload> = Watchman::builder()
        .shards(4)
        .policy(PolicyKind::LncRa { k: 4 })
        .capacity_bytes(80_000)
        .rebalance(
            RebalanceConfig::new()
                .manual()
                .with_min_shard_fraction(0.25)
                .with_step_fraction(0.2),
        )
        .build();
    let clock = Arc::new(AtomicU64::new(1));

    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let engine = engine.clone();
            let clock = Arc::clone(&clock);
            scope.spawn(move || {
                for i in 0..OPS {
                    let now = Timestamp::from_micros(clock.fetch_add(7, Ordering::Relaxed));
                    // A hot set shared across threads (coalescing + hits)
                    // plus a cold tail (admissions + evictions).
                    let name = if i % 3 == 0 {
                        format!("tail-{thread}-{i}")
                    } else {
                        format!("hot-{}", i % 5)
                    };
                    let key = QueryKey::new(name);
                    if i % 2 == 0 {
                        engine.get_or_execute(&key, now, || {
                            (SizedPayload::new(900), ExecutionCost::from_blocks(40))
                        });
                    } else {
                        let handle = engine.runtime().spawn(engine.get_or_execute_async(
                            &key,
                            now,
                            move || (SizedPayload::new(900), ExecutionCost::from_blocks(40)),
                        ));
                        let lookup = block_on(handle).expect("async lookup completes");
                        assert!(lookup.value.size_bytes() > 0);
                    }
                    if i % 64 == 63 {
                        engine.rebalance_now(now);
                    }
                    if i % 97 == 96 {
                        let snapshot = engine.stats_snapshot();
                        assert_eq!(snapshot.per_shard_capacity.iter().sum::<u64>(), 80_000);
                    }
                }
            });
        }
    });
    engine.clear();

    let report = lock_graph::report();
    assert!(
        !report.edges.is_empty(),
        "no lock-order edges recorded — is the instrumentation compiled in?"
    );
    lock_graph::assert_clean();
}

/// The IO reactor's two lock classes — the registration table and the
/// per-registration readiness cells — are documented as **leaves** of the
/// lock hierarchy (`CONCURRENCY.md`): they may be acquired while a task's
/// future-slot lock is held (every net poll runs inside a task poll), but
/// nothing may be acquired while *they* are held.  This scenario drives
/// real sockets through the reactor with engine lookups inside the session
/// tasks, so the graph contains reactor, scheduler and shard classes
/// together, then asserts reactor classes only ever appear as edge
/// *targets* and the combined graph stays acyclic.
#[test]
fn reactor_locks_stay_leaves_of_the_hierarchy() {
    use watchman_core::runtime::net::TcpListener;
    use watchman_core::runtime::Runtime;

    const CONNECTIONS: usize = 8;

    let runtime = Arc::new(Runtime::with_workers(2));
    let engine: Watchman<SizedPayload> = Watchman::builder()
        .shards(2)
        .policy(PolicyKind::LncRa { k: 4 })
        .capacity_bytes(40_000)
        .runtime(Arc::clone(&runtime))
        .build();
    let listener = TcpListener::bind(&runtime, "127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");

    // The accept task spawns one echo session per connection; each session
    // resolves its 8-byte request through the engine (shard locks, flight
    // cells, scheduler — the full hierarchy above the reactor's leaves).
    let accept_task = {
        let runtime_for_sessions = Arc::clone(&runtime);
        let engine = engine.clone();
        runtime.spawn(async move {
            let mut sessions = Vec::new();
            for _ in 0..CONNECTIONS {
                let (stream, _peer) = listener.accept().await.expect("accept");
                let engine = engine.clone();
                sessions.push(runtime_for_sessions.spawn(async move {
                    let mut request = [0u8; 8];
                    stream.read_exact(&mut request).await.expect("read request");
                    let key = QueryKey::new(format!("conn-{}", request[0] % 4));
                    let now = Timestamp::from_micros(u64::from(request[0]) + 1);
                    let lookup = engine
                        .get_or_execute_async(&key, now, || {
                            (SizedPayload::new(700), ExecutionCost::from_blocks(25))
                        })
                        .await;
                    assert!(lookup.value.size_bytes() > 0);
                    stream.write_all(&request).await.expect("write response");
                }));
            }
            for session in sessions {
                session.await.expect("session completes");
            }
        })
    };

    std::thread::scope(|scope| {
        for conn in 0..CONNECTIONS {
            scope.spawn(move || {
                use std::io::{Read, Write};
                let mut stream = std::net::TcpStream::connect(addr).expect("client connects");
                let request = [conn as u8; 8];
                stream.write_all(&request).expect("client writes");
                let mut response = [0u8; 8];
                stream.read_exact(&mut response).expect("client reads echo");
                assert_eq!(response, request);
            });
        }
    });
    block_on(accept_task).expect("accept task completes");

    let report = lock_graph::report();
    let reactor_class = |label: &str| label.contains("runtime/reactor.rs");
    assert!(
        report.edges.iter().any(|edge| reactor_class(&edge.to)),
        "no edge into a reactor lock class was recorded — did the IO path \
         run under instrumentation?\n{}",
        report.describe()
    );
    assert!(
        report.edges.iter().all(|edge| !reactor_class(&edge.from)),
        "a reactor lock was held while acquiring another lock — the \
         registration table and readiness cells must stay leaf classes:\n{}",
        report.describe()
    );
    lock_graph::assert_clean();
}

/// The work-stealing run queue's lock classes — the per-worker slot locks,
/// the injector, the idle list and the park permits (all declared in
/// `runtime/queue.rs`) — are leaves of the hierarchy, like the reactor's:
/// a waker fired during a task poll acquires a queue lock while the task's
/// future-slot lock is held (the expected inbound edge), but no queue lock
/// is ever held while acquiring anything else.  That discipline is what
/// lets `steal` raid victims in any order without ranking: each raid holds
/// exactly one victim lock at a time.  This scenario keeps two workers
/// busy with timers, yields and cross-task joins, then asserts queue
/// classes only appear as edge *targets*.
#[test]
fn run_queue_locks_stay_leaves_of_the_hierarchy() {
    use std::time::Duration;
    use watchman_core::runtime::Runtime;

    const TASKS: usize = 24;

    let runtime = Arc::new(Runtime::with_workers(2));
    let handles: Vec<_> = (0..TASKS)
        .map(|i| {
            let runtime_inner = Arc::clone(&runtime);
            runtime.spawn(async move {
                // Timer wakes exercise the unpark path; yields re-queue
                // from inside a poll (the self-wake FIFO branch); the
                // chained join wakes a sibling task from whichever worker
                // completes this one (the LIFO hand-off branch).  Between
                // them every schedule() branch runs.
                runtime_inner
                    .sleep(Duration::from_micros(i as u64 % 7))
                    .await;
                watchman_core::runtime::yield_now().await;
                let sibling = runtime_inner.spawn(async move { i * 2 });
                assert_eq!(sibling.await.expect("sibling completes"), i * 2);
                i
            })
        })
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        assert_eq!(block_on(handle).expect("task completes"), i);
    }
    drop(runtime);

    let report = lock_graph::report();
    let queue_class = |label: &str| label.contains("runtime/queue.rs");
    assert!(
        report.edges.iter().any(|edge| queue_class(&edge.to)),
        "no edge into a run-queue lock class was recorded — did the \
         scheduler run under instrumentation?\n{}",
        report.describe()
    );
    assert!(
        report.edges.iter().all(|edge| !queue_class(&edge.from)),
        "a run-queue lock was held while acquiring another lock — the slot, \
         injector, idle-list and permit locks must stay leaf classes:\n{}",
        report.describe()
    );
    lock_graph::assert_clean();
}

/// Regression pin for the rebalancer's two-lock transfer: donor and
/// recipient shard locks must be acquired in **index order** (the shard
/// index is the lock's declared rank).  If someone reorders the transfer to
/// lock donor-then-recipient, a donor with the higher index produces a rank
/// violation here, with the offending stack in the failure message.
#[test]
fn rebalancer_two_lock_transfer_keeps_index_order() {
    let engine: Watchman<SizedPayload> = Watchman::builder()
        .shards(4)
        .policy(PolicyKind::LncRa { k: 4 })
        .capacity_bytes(40_000)
        .rebalance(
            RebalanceConfig::new()
                .manual()
                .with_min_shard_fraction(0.25)
                .with_step_fraction(0.2),
        )
        .build();

    // Skew the load so shard pressures diverge, then run manual passes
    // until a transfer actually happens (each moves capacity donor →
    // recipient under both shard locks).
    let mut now_us = 1u64;
    let mut transfers = 0;
    for round in 0..64 {
        for i in 0..200 {
            now_us += 11;
            let key = QueryKey::new(format!("skew-{}-{}", round, i % 23));
            engine.get_or_execute(&key, Timestamp::from_micros(now_us), || {
                (SizedPayload::new(1_400), ExecutionCost::from_blocks(60))
            });
        }
        engine.rebalance_now(Timestamp::from_micros(now_us));
        transfers = engine.rebalance_count();
        if transfers > 0 {
            break;
        }
    }
    assert!(transfers > 0, "workload never provoked a capacity transfer");

    let report = lock_graph::report();
    assert!(
        report.ranked_nestings > 0,
        "no ranked same-class nesting recorded: the two-lock transfer path \
         did not run under instrumentation"
    );
    assert!(
        report.rank_violations.is_empty(),
        "shard locks nested out of index order:\n{}",
        report.describe()
    );
    lock_graph::assert_clean();
}
