//! Scenario-level integration tests for the LNC-RA cache manager: the
//! situations the paper uses to motivate its design decisions, exercised
//! through the public API only.

use watchman_core::prelude::*;

fn ts(secs: u64) -> Timestamp {
    Timestamp::from_secs(secs)
}

fn key(name: &str) -> QueryKey {
    QueryKey::new(name.to_owned())
}

/// References a query: get, and on miss insert with the given size and cost.
fn reference(
    cache: &mut LncCache<SizedPayload>,
    name: &str,
    size: u64,
    cost: u64,
    secs: u64,
) -> bool {
    let k = key(name);
    if cache.get(&k, ts(secs)).is_some() {
        true
    } else {
        cache.insert(
            k,
            SizedPayload::new(size),
            ExecutionCost::from_blocks(cost),
            ts(secs),
        );
        false
    }
}

#[test]
fn projection_flood_cannot_wipe_out_expensive_aggregates() {
    // The paper's motivating example (§1): caching a cheap multi-attribute
    // projection must not evict hundreds of expensive sums and averages.
    let mut cache = LncCache::lnc_ra(100 * 1_024);
    // 100 expensive 1 KB aggregates fill the cache.
    for i in 0..100 {
        reference(&mut cache, &format!("aggregate-{i}"), 1_024, 50_000, i);
    }
    // Re-reference them so their rate estimates are established.
    for round in 1..3u64 {
        for i in 0..100 {
            reference(
                &mut cache,
                &format!("aggregate-{i}"),
                1_024,
                50_000,
                200 * round + i,
            );
        }
    }
    assert_eq!(cache.len(), 100);

    // A flood of cheap large projections arrives; none of them should displace
    // the aggregate working set.
    for i in 0..50 {
        reference(
            &mut cache,
            &format!("projection-{i}"),
            60 * 1_024,
            500,
            1_000 + i,
        );
    }
    let survivors = (0..100)
        .filter(|i| cache.contains(&key(&format!("aggregate-{i}"))))
        .count();
    assert!(
        survivors >= 95,
        "only {survivors}/100 aggregates survived the projection flood"
    );
    assert!(
        cache.stats().rejections >= 40,
        "the flood should mostly be rejected"
    );
}

#[test]
fn lru_baseline_is_wiped_out_by_the_same_flood() {
    // The same scenario against vanilla LRU destroys the aggregate working
    // set — the contrast the paper draws.
    let mut cache: LruCache<SizedPayload> = LruCache::new(100 * 1_024);
    for i in 0..100u64 {
        let k = key(&format!("aggregate-{i}"));
        cache.insert(
            k,
            SizedPayload::new(1_024),
            ExecutionCost::from_blocks(50_000),
            ts(i),
        );
    }
    for i in 0..50u64 {
        let k = key(&format!("projection-{i}"));
        cache.insert(
            k,
            SizedPayload::new(60 * 1_024),
            ExecutionCost::from_blocks(500),
            ts(1_000 + i),
        );
    }
    let survivors = (0..100)
        .filter(|i| cache.contains(&key(&format!("aggregate-{i}"))))
        .count();
    assert!(
        survivors < 20,
        "LRU unexpectedly preserved {survivors}/100 aggregates"
    );
}

#[test]
fn starvation_without_retained_info_and_recovery_with_it() {
    // §2.4: with K > 1 and no retained reference information, a hot set keeps
    // getting evicted before it can accumulate enough references; retaining
    // the information fixes it.
    let run = |retained: bool| -> bool {
        let config = LncConfig::lnc_ra(4 * 1_024)
            .with_k(3)
            .with_retained_info(retained);
        let mut cache: LncCache<SizedPayload> = LncCache::new(config);
        // Residents: four established 1 KB sets re-referenced regularly.
        for i in 0..4u64 {
            reference(&mut cache, &format!("resident-{i}"), 1_024, 1_000, i);
        }
        for round in 1..6u64 {
            for i in 0..4u64 {
                reference(
                    &mut cache,
                    &format!("resident-{i}"),
                    1_024,
                    1_000,
                    round * 40 + i,
                );
            }
        }
        // The contender is equally sized but referenced far more often; it
        // should eventually be cached when its history can survive evictions.
        let mut last_hit = false;
        for r in 0..12u64 {
            last_hit = reference(&mut cache, "contender", 1_024, 1_000, 300 + r * 3);
        }
        last_hit
    };
    assert!(
        run(true),
        "with retained reference information the hot contender must end up cached"
    );
    // Without retained information the contender is starved (its history
    // restarts from scratch on every re-reference, so it keeps losing the
    // admission comparison against established residents).
    assert!(
        !run(false),
        "without retained reference information the contender should starve"
    );
}

#[test]
fn coherence_invalidation_forces_recomputation() {
    // §3: when the warehouse manager applies an update, affected retrieved
    // sets are invalidated and the next reference recomputes them.
    let mut cache: LncCache<SizedPayload> = LncCache::lnc_ra(1 << 20);
    let mut index = DependencyIndex::new();

    let orders_summary = key("SELECT o_orderpriority, count(*) FROM orders GROUP BY 1");
    cache.insert(
        orders_summary.clone(),
        SizedPayload::new(256),
        ExecutionCost::from_blocks(9_000),
        ts(1),
    );
    index.register(orders_summary.clone(), ["ORDERS", "LINEITEM"]);
    assert!(cache.get(&orders_summary, ts(2)).is_some());

    // A batch update lands on ORDERS.
    let report = invalidate_affected(&mut index, "ORDERS", |k| cache.remove(k).is_some());
    assert_eq!(report.invalidated, vec![orders_summary.clone()]);
    assert!(
        cache.get(&orders_summary, ts(3)).is_none(),
        "stale set must be gone"
    );

    // The application recomputes and re-registers.
    cache.insert(
        orders_summary.clone(),
        SizedPayload::new(256),
        ExecutionCost::from_blocks(9_000),
        ts(3),
    );
    index.register(orders_summary.clone(), ["ORDERS", "LINEITEM"]);
    assert!(cache.get(&orders_summary, ts(4)).is_some());
}

#[test]
fn equivalence_canonical_keys_raise_the_hit_ratio() {
    // §6 future work: matching canonically-equivalent queries instead of
    // exact text turns syntactic variants into hits.
    use watchman_core::equivalence::canonical_key;

    let variants = [
        "SELECT sum(l_extendedprice) FROM lineitem WHERE l_shipdate >= '1995-01-01' AND l_discount > 0.05",
        "select SUM(l_extendedprice) from lineitem where l_discount > 0.05 and l_shipdate >= '1995-01-01'",
        "SELECT Sum(l_extendedprice) FROM Lineitem WHERE l_shipdate >= '1995-01-01' AND l_discount > 0.05",
    ];

    // Exact matching: three distinct entries.
    let mut exact: LncCache<SizedPayload> = LncCache::lnc_ra(1 << 20);
    for (i, sql) in variants.iter().enumerate() {
        let k = QueryKey::from_raw_query(sql);
        if exact.get(&k, ts(i as u64)).is_none() {
            exact.insert(
                k,
                SizedPayload::new(64),
                ExecutionCost::from_blocks(1_000),
                ts(i as u64),
            );
        }
    }
    assert_eq!(exact.stats().hits, 0);

    // Canonical matching: one entry, two hits.
    let mut canonical: LncCache<SizedPayload> = LncCache::lnc_ra(1 << 20);
    for (i, sql) in variants.iter().enumerate() {
        let k = canonical_key(sql);
        if canonical.get(&k, ts(i as u64)).is_none() {
            canonical.insert(
                k,
                SizedPayload::new(64),
                ExecutionCost::from_blocks(1_000),
                ts(i as u64),
            );
        }
    }
    assert_eq!(canonical.stats().hits, 2);
    assert_eq!(canonical.len(), 1);
}

#[test]
fn drill_down_session_keeps_the_upper_levels_cached() {
    // A hierarchical drill-down: the level-0 summary is referenced before
    // every descent, deeper levels are one-off.  The summary must stay cached
    // and its repeated references must be served from the cache.
    let mut cache = LncCache::lnc_ra(16 * 1_024);
    let mut hits_on_summary = 0;
    for session in 0..20u64 {
        let t = session * 100;
        if reference(&mut cache, "level0-summary", 512, 20_000, t) {
            hits_on_summary += 1;
        }
        reference(
            &mut cache,
            &format!("level1-{}", session % 5),
            2_048,
            8_000,
            t + 10,
        );
        reference(
            &mut cache,
            &format!("level2-{session}"),
            6_000,
            3_000,
            t + 20,
        );
    }
    assert!(
        hits_on_summary >= 18,
        "the top-level summary should be served from cache ({hits_on_summary}/19 possible hits)"
    );
    assert!(cache.contains(&key("level0-summary")));
    assert!(cache.used_bytes() <= cache.capacity_bytes());
}
