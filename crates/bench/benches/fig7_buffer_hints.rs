//! Figure 7 bench: buffer-manager hit ratio as a function of the
//! p₀-redundancy threshold used by WATCHMAN's hints.
//!
//! The printed table uses a reduced trace (the full experiment replays tens
//! of millions of page references; run `cargo run --release -p watchman-sim
//! --bin fig7_buffer_hints` for paper scale).

use criterion::{criterion_group, criterion_main, Criterion};
use watchman_sim::experiments::buffer_hints::{BufferHintConfig, BufferHintExperiment};
use watchman_sim::ExperimentScale;

fn bench_fig7(c: &mut Criterion) {
    let report_config = BufferHintConfig {
        buffer_bytes: 4 * 1024 * 1024,
        cache_bytes: 4 * 1024 * 1024,
        ..BufferHintConfig::default()
    };
    let experiment = BufferHintExperiment::run_with(ExperimentScale::quick(1_200), report_config);
    println!("\n{}", experiment.render());

    let measure_config = BufferHintConfig {
        buffer_bytes: 2 * 1024 * 1024,
        cache_bytes: 2 * 1024 * 1024,
        thresholds: [1.0, 0.8, 0.6, 0.4, 0.2, 0.0],
    };
    let mut group = c.benchmark_group("fig7_buffer_hints");
    group.sample_size(10);
    group.bench_function("sweep_200_queries", |b| {
        b.iter(|| BufferHintExperiment::run_with(ExperimentScale::quick(200), measure_config))
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
