//! Wire-protocol cost: frame codec throughput and loopback round trips.
//!
//! Two questions about the networked front end:
//!
//! * **Codec** — how many GET request/response frames per second can one
//!   core encode and decode?  This bounds a session thread's parse
//!   overhead; it should sit far above any realistic per-connection rate.
//! * **Loopback RTT** — what does a *served* cache hit cost end to end
//!   (socket, framing, session thread, shard lock) at pipeline depths 1,
//!   8 and 64?  Deep pipelines amortize the round trip, which is how the
//!   load generator reaches engine-limited throughput from few
//!   connections.
//!
//! Run with `--quick` for a CI-sized smoke pass.

use std::time::{Duration, Instant};

use watchman_core::engine::PolicyKind;
use watchman_server::wire::{self, GetRequest, Request};
use watchman_server::{serve, Client, ServerConfig};

fn sample_request() -> Request {
    Request::Get(GetRequest {
        key: "SELECT l_returnflag, sum(l_extendedprice) FROM lineitem WHERE l_shipdate <= 1995 \
              GROUP BY l_returnflag"
            .to_owned(),
        timestamp_us: 123_456_789,
        result_bytes: 3_072,
        cost_blocks: 41_000,
        fetch_delay_us: 0,
        deadline_hint_us: 0,
        payload_prefix_cap: 0,
    })
}

fn bench_codec(rounds: u64) {
    let request = sample_request();
    let start = Instant::now();
    let mut decoded = 0u64;
    for id in 0..rounds {
        let body = wire::encode_request(id, &request);
        let (back_id, _back) = wire::decode_request(&body).expect("round trip");
        assert_eq!(back_id, id);
        decoded += 1;
    }
    let elapsed = start.elapsed();
    println!(
        "codec: {decoded} GET encode+decode round trips in {elapsed:.2?} \
         ({:.0} frames/s)",
        decoded as f64 / elapsed.as_secs_f64()
    );
}

fn bench_loopback(rounds: u64) {
    let server = serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: 4,
        policy: PolicyKind::LNC_RA,
        capacity_bytes: 16 << 20,
        runtime_workers: 2,
        rebalance: None,
    })
    .expect("bench server binds");
    let mut client = Client::connect(server.addr().to_string()).expect("bench client");

    // Prime one hot key: everything after this is the served-hit path.
    let hot =
        |timestamp_us: u64| GetRequest::metrics_only("SELECT hot FROM t", timestamp_us, 512, 9_000);
    client.get(hot(1)).expect("prime");

    println!(
        "\n{:>10} {:>14} {:>16} {:>14}",
        "pipeline", "batches", "wall", "served hits/s"
    );
    for pipeline in [1usize, 8, 64] {
        let batches = (rounds as usize / pipeline).max(8);
        let start = Instant::now();
        for batch_index in 0..batches {
            let batch: Vec<GetRequest> = (0..pipeline)
                .map(|i| hot((batch_index * pipeline + i + 2) as u64))
                .collect();
            let responses = client.get_many(batch).expect("hit batch");
            debug_assert_eq!(responses.len(), pipeline);
        }
        let elapsed = start.elapsed();
        let served = (batches * pipeline) as f64;
        println!(
            "{:>10} {:>14} {:>16.2?} {:>14.0}",
            pipeline,
            batches,
            elapsed,
            served / elapsed.as_secs_f64()
        );
    }

    let snapshot = server.engine().stats_snapshot();
    assert!(
        snapshot.total.hits > 0,
        "the loopback rounds must be served hits"
    );
    server.join();
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds: u64 = if quick { 20_000 } else { 500_000 };
    let loopback_rounds: u64 = if quick { 2_000 } else { 50_000 };
    println!("wire_roundtrip: codec rounds {rounds}, loopback rounds {loopback_rounds}\n");
    bench_codec(rounds);
    bench_loopback(loopback_rounds);
    // The codec must never be the bottleneck of a session thread; fail the
    // bench loudly if it regresses below a floor even CI machines clear.
    let floor_start = Instant::now();
    let request = sample_request();
    for id in 0..10_000u64 {
        let body = wire::encode_request(id, &request);
        std::hint::black_box(wire::decode_request(&body).expect("round trip"));
    }
    let per_frame = floor_start.elapsed() / 10_000;
    assert!(
        per_frame < Duration::from_micros(50),
        "codec regressed: {per_frame:?} per frame"
    );
    println!("\ndone");
}
