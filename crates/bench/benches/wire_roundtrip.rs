//! Wire-protocol cost: frame codec throughput and loopback round trips.
//!
//! Two questions about the networked front end:
//!
//! * **Codec** — how many GET request/response frames per second can one
//!   core encode and decode?  This bounds a session thread's parse
//!   overhead; it should sit far above any realistic per-connection rate.
//! * **Loopback RTT** — what does a *served* cache hit cost end to end
//!   (socket, framing, session task, shard lock) at pipeline depths 1,
//!   8 and 64?  Deep pipelines amortize the round trip, which is how the
//!   load generator reaches engine-limited throughput from few
//!   connections.
//! * **Connection scaling** — what happens when connections stop being
//!   threads?  A 64-connection trace replay (the workload the
//!   thread-per-connection server was last measured on) pins latency
//!   against the recorded baseline, and a 512-connection storm records the
//!   session-vs-thread counts the task refactor exists for.  The report is
//!   written to `BENCH_connection_scaling.json` at the workspace root.
//!
//! Run with `--quick` for a CI-sized smoke pass.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use watchman_core::engine::PolicyKind;
use watchman_core::runtime::net::stats as net_stats;
use watchman_server::wire::{self, GetRequest, Request};
use watchman_server::{run_connection_storm, run_load, serve, Client, LoadOptions, ServerConfig};
use watchman_sim::{ExperimentScale, Workload};

/// Counts every heap allocation in the process so the loopback table can
/// report *allocations per served frame* — the number the reusable
/// session buffers exist to shrink.  Deallocations are free passes-through;
/// reallocs count (they may move the block, which is the cost we care
/// about).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System` unchanged; the counter is a
// relaxed atomic with no allocation of its own, so the allocator contract
// (including no reentrancy) is exactly `System`'s.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// One measured loopback pipeline depth: served-hit throughput plus the
/// per-frame syscall and allocation costs over the whole process (server
/// sessions drive the async `TcpStream` counters; the allocator counter
/// covers both sides of the loopback).
struct PipelineRow {
    pipeline: usize,
    frames: u64,
    throughput_qps: f64,
    syscalls_per_frame: f64,
    allocs_per_frame: f64,
}

fn sample_request() -> Request {
    Request::Get(GetRequest {
        key: "SELECT l_returnflag, sum(l_extendedprice) FROM lineitem WHERE l_shipdate <= 1995 \
              GROUP BY l_returnflag"
            .to_owned(),
        timestamp_us: 123_456_789,
        result_bytes: 3_072,
        cost_blocks: 41_000,
        fetch_delay_us: 0,
        deadline_hint_us: 0,
        payload_prefix_cap: 0,
    })
}

fn bench_codec(rounds: u64) {
    let request = sample_request();
    let start = Instant::now();
    let mut decoded = 0u64;
    for id in 0..rounds {
        let body = wire::encode_request(id, &request);
        let (back_id, _back) = wire::decode_request(&body).expect("round trip");
        assert_eq!(back_id, id);
        decoded += 1;
    }
    let elapsed = start.elapsed();
    println!(
        "codec: {decoded} GET encode+decode round trips in {elapsed:.2?} \
         ({:.0} frames/s)",
        decoded as f64 / elapsed.as_secs_f64()
    );
}

fn bench_loopback(rounds: u64) -> Vec<PipelineRow> {
    let server = serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: 4,
        policy: PolicyKind::LNC_RA,
        capacity_bytes: 16 << 20,
        runtime_workers: 2,
        rebalance: None,
        ..ServerConfig::default()
    })
    .expect("bench server binds");
    let mut client = Client::connect(server.addr().to_string()).expect("bench client");

    // Prime one hot key: everything after this is the served-hit path.
    let hot =
        |timestamp_us: u64| GetRequest::metrics_only("SELECT hot FROM t", timestamp_us, 512, 9_000);
    client.get(hot(1)).expect("prime");

    let mut rows = Vec::new();
    println!(
        "\n{:>10} {:>14} {:>16} {:>14} {:>16} {:>14}",
        "pipeline", "batches", "wall", "served hits/s", "syscalls/frame", "allocs/frame"
    );
    for pipeline in [1usize, 8, 64] {
        let batches = (rounds as usize / pipeline).max(8);
        let syscalls_before = net_stats::read_syscalls() + net_stats::write_syscalls();
        let allocs_before = allocation_count();
        let start = Instant::now();
        for batch_index in 0..batches {
            let batch: Vec<GetRequest> = (0..pipeline)
                .map(|i| hot((batch_index * pipeline + i + 2) as u64))
                .collect();
            let responses = client.get_many(batch).expect("hit batch");
            debug_assert_eq!(responses.len(), pipeline);
        }
        let elapsed = start.elapsed();
        let frames = (batches * pipeline) as u64;
        let syscalls = net_stats::read_syscalls() + net_stats::write_syscalls() - syscalls_before;
        let allocs = allocation_count() - allocs_before;
        let row = PipelineRow {
            pipeline,
            frames,
            throughput_qps: frames as f64 / elapsed.as_secs_f64(),
            syscalls_per_frame: syscalls as f64 / frames as f64,
            allocs_per_frame: allocs as f64 / frames as f64,
        };
        println!(
            "{:>10} {:>14} {:>16.2?} {:>14.0} {:>16.2} {:>14.2}",
            pipeline,
            batches,
            elapsed,
            row.throughput_qps,
            row.syscalls_per_frame,
            row.allocs_per_frame,
        );
        rows.push(row);
    }

    let snapshot = server.engine().stats_snapshot();
    assert!(
        snapshot.total.hits > 0,
        "the loopback rounds must be served hits"
    );
    server.join();
    rows
}

/// The thread-per-connection server's last measured p99, in microseconds,
/// for exactly the replay row below (`tpcd_skewed`, 64 clients, pipeline 1,
/// 12 800 queries, loopback, 1-core container) — recorded immediately
/// before the reactor refactor landed.
const THREAD_PER_CONN_P99_US: u64 = 5_430;
/// Tolerance over the baseline: same-box reruns of the blocking server
/// jittered ~1.5x on the shared 1-core CI container, so the gate trips at
/// 3x — loose enough to ignore noise, tight enough to catch the reactor
/// adding a polling tick or a lost-wakeup stall to every round trip.
const P99_TOLERANCE: u64 = 3;

/// The unbuffered wire path's measured loopback costs at pipeline depth 64
/// (`--quick`, this container), recorded immediately before the buffered
/// `FrameReader`/`FrameWriter` landed: 3.22 syscalls and 12.05 allocations
/// per served frame (2 reads + 1 write per frame, fresh `Vec`s per body).
/// The buffered path must beat them by the ratios below.
const UNBUFFERED_SYSCALLS_PER_FRAME: f64 = 3.22;
const UNBUFFERED_ALLOCS_PER_FRAME: f64 = 12.05;
/// Required improvement ratios at pipeline 64 (ISSUE 8 acceptance
/// criteria): ≥5x fewer syscalls per frame, ≥2x fewer allocations.
const SYSCALL_IMPROVEMENT_MIN: f64 = 5.0;
const ALLOC_IMPROVEMENT_MIN: f64 = 2.0;

/// The uninstrumented wire path's pipeline-64 loopback throughput (full
/// rounds, this container), measured at the commit immediately before the
/// telemetry layer landed — same day, same machine as the instrumented
/// run it gates, so the comparison prices the instrumentation rather than
/// the container's load drift (an earlier run of the same uninstrumented
/// code recorded 755 519 qps; the shared 1-core box moves that much).
/// The instrumented hot path — histogram records on every lookup,
/// suspension-detecting stall probes around every fill and flush — must
/// hold throughput to within [`TELEMETRY_OVERHEAD_MAX`] of it: the
/// layer's contract is "atomics on the side, never a lock on the hot
/// path", and this gate is where that contract is priced.
const UNINSTRUMENTED_P64_QPS: f64 = 696_563.4;
/// Allowed slowdown factor for the instrumented path at pipeline 64.  The
/// full-rounds gate trips at 1.10x; `--quick` runs only 2 000 loopback
/// rounds on a shared 1-core container, where warmup alone can halve the
/// observed rate, so the smoke pass widens to 2x — still tight enough to
/// catch a mutex or a syscall sneaking into the per-frame path.
const TELEMETRY_OVERHEAD_MAX: f64 = 1.10;
const TELEMETRY_OVERHEAD_MAX_QUICK: f64 = 2.0;

fn bench_connection_scaling(quick: bool, loopback: &[PipelineRow]) {
    let overhead_max = if quick {
        TELEMETRY_OVERHEAD_MAX_QUICK
    } else {
        TELEMETRY_OVERHEAD_MAX
    };
    let queries = if quick { 3_200 } else { 12_800 };
    let storm_connections = if quick { 128 } else { 512 };
    let storm_rounds = 4;

    // Row 1: the baseline's exact workload — 64 unpipelined connections
    // replaying the skewed TPC-D trace, capacity at 1% of the database
    // (what `loadgen --spawn` builds).
    let workload = Workload::tpcd_skewed(ExperimentScale::quick(queries));
    let capacity = (workload.database_bytes() as f64 * 0.01).round() as u64;
    let replay_server = serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        capacity_bytes: capacity,
        ..ServerConfig::default()
    })
    .expect("replay server binds");
    let replay_addr = replay_server.addr().to_string();
    let options = LoadOptions {
        clients: 64,
        pipeline: 1,
        fetch_delay_us: 0,
        payload_prefix_cap: 0,
    };
    let replay = run_load(&replay_addr, &workload.trace, &options).expect("64-connection replay");
    replay_server.join();
    let replay_p99 = replay.latency_quantile_us(0.99);
    println!(
        "\nconnection scaling: 64-conn replay p50 {} us  p95 {} us  p99 {} us \
         ({:.0} q/s; thread-per-connection baseline p99 {} us)",
        replay.latency_quantile_us(0.50),
        replay.latency_quantile_us(0.95),
        replay_p99,
        replay.throughput_qps(),
        THREAD_PER_CONN_P99_US,
    );

    // Row 2: the storm — connections far past any sane thread count, with
    // the server's SERVER_INFO sampled while all of them are open.
    let storm_server = serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        capacity_bytes: capacity,
        ..ServerConfig::default()
    })
    .expect("storm server binds");
    let storm = run_connection_storm(
        &storm_server.addr().to_string(),
        storm_connections,
        storm_rounds,
    )
    .expect("connection storm");
    storm_server.join();
    println!(
        "connection scaling: {}-conn storm p50 {} us  p99 {} us  wall {:.2} s  \
         ({} sessions on {} server threads; {} client-side steals, {} parks)",
        storm.connections,
        storm.latency_quantile_us(0.50),
        storm.latency_quantile_us(0.99),
        storm.wall.as_secs_f64(),
        storm.server_sessions,
        storm.server_threads,
        storm.client_steals,
        storm.client_parks,
    );

    let pipeline_64 = loopback
        .iter()
        .find(|row| row.pipeline == 64)
        .expect("loopback sweep includes pipeline 64");
    let loopback_rows: String = loopback
        .iter()
        .map(|row| {
            format!(
                "    {{\"mode\": \"loopback\", \"pipeline\": {}, \"frames\": {}, \
                 \"throughput_qps\": {:.1}, \"syscalls_per_frame\": {:.2}, \
                 \"allocs_per_frame\": {:.2}}},\n",
                row.pipeline,
                row.frames,
                row.throughput_qps,
                row.syscalls_per_frame,
                row.allocs_per_frame
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"wire_roundtrip/connection_scaling\",\n  \"quick\": {quick},\n  \
         \"baseline\": {{\"mode\": \"thread-per-connection\", \"connections\": 64, \
         \"pipeline\": 1, \"queries\": 12800, \"p99_us\": {THREAD_PER_CONN_P99_US}, \
         \"unbuffered_syscalls_per_frame\": {UNBUFFERED_SYSCALLS_PER_FRAME}, \
         \"unbuffered_allocs_per_frame\": {UNBUFFERED_ALLOCS_PER_FRAME}}},\n  \
         \"rows\": [\n{loopback_rows}    \
         {{\"mode\": \"replay\", \"connections\": 64, \"pipeline\": 1, \"queries\": {queries}, \
         \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"throughput_qps\": {:.1}}},\n    \
         {{\"mode\": \"storm\", \"connections\": {}, \"rounds\": {storm_rounds}, \
         \"sessions\": {}, \"server_threads\": {}, \"runtime_workers\": {}, \
         \"client_steals\": {}, \"client_parks\": {}, \
         \"p50_us\": {}, \"p99_us\": {}, \"wall_ms\": {:.1}}}\n  ],\n  \
         \"gate\": {{\"p99_us_observed\": {replay_p99}, \"p99_us_max\": {}, \
         \"pipeline64_syscalls_per_frame\": {:.2}, \"pipeline64_syscalls_max\": {:.2}, \
         \"pipeline64_allocs_per_frame\": {:.2}, \"pipeline64_allocs_max\": {:.2}, \
         \"uninstrumented_p64_qps\": {UNINSTRUMENTED_P64_QPS}, \
         \"telemetry_overhead_max\": {overhead_max}, \
         \"pipeline64_qps_observed\": {:.1}, \"pipeline64_qps_min\": {:.1}}}\n}}\n",
        replay.latency_quantile_us(0.50),
        replay.latency_quantile_us(0.95),
        replay_p99,
        replay.throughput_qps(),
        storm.connections,
        storm.server_sessions,
        storm.server_threads,
        storm.server_workers,
        storm.client_steals,
        storm.client_parks,
        storm.latency_quantile_us(0.50),
        storm.latency_quantile_us(0.99),
        storm.wall.as_secs_f64() * 1_000.0,
        THREAD_PER_CONN_P99_US * P99_TOLERANCE,
        pipeline_64.syscalls_per_frame,
        UNBUFFERED_SYSCALLS_PER_FRAME / SYSCALL_IMPROVEMENT_MIN,
        pipeline_64.allocs_per_frame,
        UNBUFFERED_ALLOCS_PER_FRAME / ALLOC_IMPROVEMENT_MIN,
        pipeline_64.throughput_qps,
        UNINSTRUMENTED_P64_QPS / overhead_max,
    );
    // Cargo runs benches with the package directory as CWD; anchor the
    // report at the workspace root next to BENCH_policy_ops.json.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_connection_scaling.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(error) => println!("could not write {path}: {error}"),
    }

    assert!(
        storm.server_sessions >= storm.connections as u32,
        "storm sessions ({}) below its connection count ({})",
        storm.server_sessions,
        storm.connections
    );
    assert!(
        storm.client_steals > 0,
        "storm reported zero client-side steals: {} connection tasks on 4 \
         workers never redistributed — is the work-stealing path wired in?",
        storm.connections
    );
    assert!(
        replay_p99 <= THREAD_PER_CONN_P99_US * P99_TOLERANCE,
        "64-connection p99 regressed past the thread-per-connection server: \
         {replay_p99} us observed vs {} us baseline (x{P99_TOLERANCE} tolerance)",
        THREAD_PER_CONN_P99_US,
    );
    assert!(
        pipeline_64.syscalls_per_frame <= UNBUFFERED_SYSCALLS_PER_FRAME / SYSCALL_IMPROVEMENT_MIN,
        "buffered wire path regressed: {:.2} syscalls/frame at pipeline 64, \
         need <= {:.2} ({}x under the unbuffered baseline of {:.1})",
        pipeline_64.syscalls_per_frame,
        UNBUFFERED_SYSCALLS_PER_FRAME / SYSCALL_IMPROVEMENT_MIN,
        SYSCALL_IMPROVEMENT_MIN,
        UNBUFFERED_SYSCALLS_PER_FRAME,
    );
    assert!(
        pipeline_64.allocs_per_frame <= UNBUFFERED_ALLOCS_PER_FRAME / ALLOC_IMPROVEMENT_MIN,
        "buffered wire path regressed: {:.2} allocs/frame at pipeline 64, \
         need <= {:.2} ({}x under the unbuffered baseline of {:.1})",
        pipeline_64.allocs_per_frame,
        UNBUFFERED_ALLOCS_PER_FRAME / ALLOC_IMPROVEMENT_MIN,
        ALLOC_IMPROVEMENT_MIN,
        UNBUFFERED_ALLOCS_PER_FRAME,
    );
    assert!(
        pipeline_64.throughput_qps >= UNINSTRUMENTED_P64_QPS / overhead_max,
        "telemetry overhead gate: {:.0} qps at pipeline 64, need >= {:.0} \
         ({:.2}x of the uninstrumented baseline {:.0}) — a histogram record \
         or stall probe on the per-frame path got expensive",
        pipeline_64.throughput_qps,
        UNINSTRUMENTED_P64_QPS / overhead_max,
        overhead_max,
        UNINSTRUMENTED_P64_QPS,
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds: u64 = if quick { 20_000 } else { 500_000 };
    let loopback_rounds: u64 = if quick { 2_000 } else { 50_000 };
    println!("wire_roundtrip: codec rounds {rounds}, loopback rounds {loopback_rounds}\n");
    bench_codec(rounds);
    let loopback = bench_loopback(loopback_rounds);
    bench_connection_scaling(quick, &loopback);
    // The codec must never be the bottleneck of a session thread; fail the
    // bench loudly if it regresses below a floor even CI machines clear.
    let floor_start = Instant::now();
    let request = sample_request();
    for id in 0..10_000u64 {
        let body = wire::encode_request(id, &request);
        std::hint::black_box(wire::decode_request(&body).expect("round trip"));
    }
    let per_frame = floor_start.elapsed() / 10_000;
    assert!(
        per_frame < Duration::from_micros(50),
        "codec regressed: {per_frame:?} per frame"
    );
    println!("\ndone");
}
