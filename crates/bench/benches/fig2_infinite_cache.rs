//! Figure 2 bench: infinite-cache CSR/HR and working-set size for both
//! benchmark traces, plus a measurement of the infinite-cache replay.

use criterion::{criterion_group, criterion_main, Criterion};
use watchman_bench::{measure_scale, report_scale};
use watchman_sim::{run_infinite, ExperimentScale, InfiniteCacheExperiment, Workload};

fn bench_fig2(c: &mut Criterion) {
    // Print the figure table once.
    let experiment = InfiniteCacheExperiment::run(report_scale());
    println!("\n{}", experiment.render());

    // Measure infinite-cache replay of the TPC-D trace.
    let workload = Workload::tpcd(measure_scale());
    let mut group = c.benchmark_group("fig2_infinite_cache");
    group.sample_size(10);
    group.bench_function("replay_tpcd_infinite", |b| {
        b.iter(|| run_infinite(&workload.trace))
    });
    group.bench_function("experiment_quick", |b| {
        b.iter(|| InfiniteCacheExperiment::run(ExperimentScale::quick(500)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
