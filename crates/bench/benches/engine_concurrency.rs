//! Multi-threaded get-heavy benchmark: the sharded engine against a 1-shard
//! configuration (one big mutex — what the long-removed `SharedCache`
//! wrapper used to be).
//!
//! Each measurement spawns `THREADS` sessions that hammer a pre-warmed
//! engine with lookups (all hits after warm-up — the contention-bound
//! regime).  A 1-shard engine serializes every session behind one lock; an
//! 8-shard engine lets sessions touching different shards acquire their
//! locks in parallel.
//!
//! Interpreting the numbers: the sharding win is a *parallelism* win, so it
//! scales with physical cores.  On a single-core host (such as the CI
//! container this was developed in) the scheduler interleaves sessions and
//! lock acquisitions are rarely contended, so the two configurations measure
//! within noise of each other; on an N-core host the 1-shard engine caps
//! get-throughput at one core's worth while the sharded engine approaches
//! N-fold scaling.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use watchman_core::engine::{PolicyKind, Watchman};
use watchman_core::prelude::*;

const THREADS: usize = 8;
const KEYS: usize = 512;
const OPS_PER_THREAD_PER_ITER: usize = 200;

fn warmed_engine(shards: usize) -> Watchman<SizedPayload> {
    let engine: Watchman<SizedPayload> = Watchman::builder()
        .shards(shards)
        .policy(PolicyKind::LncRa { k: 4 })
        .capacity_bytes(256 << 20)
        .build();
    for i in 0..KEYS {
        engine.insert(
            QueryKey::new(format!("warm-query-{i}")),
            SizedPayload::new(512),
            ExecutionCost::from_blocks(1_000),
            Timestamp::from_micros(i as u64 + 1),
        );
    }
    engine
}

/// Runs `iters` rounds of the threaded get-heavy workload.  Each round is
/// timed as the duration of its slowest session (the completion time of the
/// round); timing inside the worker threads keeps the coordinator's own
/// scheduling delays out of the measurement, which matters on few-core boxes.
fn run_threaded(engine: &Watchman<SizedPayload>, iters: u64) -> Duration {
    let keys: Arc<Vec<QueryKey>> = Arc::new(
        (0..KEYS)
            .map(|i| QueryKey::new(format!("warm-query-{i}")))
            .collect(),
    );
    let tick = AtomicU64::new(1_000_000);
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let barrier = Barrier::new(THREADS);
        let round = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|thread| {
                    let engine = engine.clone();
                    let keys = Arc::clone(&keys);
                    let barrier = &barrier;
                    let tick = &tick;
                    scope.spawn(move || {
                        barrier.wait(); // start together
                        let start = Instant::now();
                        for i in 0..OPS_PER_THREAD_PER_ITER {
                            let key = &keys[(i * 7 + thread * 61) % KEYS];
                            let now = Timestamp::from_micros(tick.fetch_add(1, Ordering::Relaxed));
                            let hit = engine.get(key, now);
                            assert!(hit.is_some(), "warmed key must hit");
                        }
                        start.elapsed()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("session thread panicked"))
                .max()
                .unwrap_or(Duration::ZERO)
        });
        total += round;
    }
    total
}

fn bench_sharded_vs_single_mutex(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_concurrency");
    group.sample_size(12);

    let mut medians: Vec<(usize, f64)> = Vec::new();
    for shards in [1, 8] {
        let engine = warmed_engine(shards);
        // A pre-measurement probe (median of several rounds) for the summary
        // line printed after the sweep.
        let probe_rounds = 15;
        let mut rounds: Vec<Duration> = (0..probe_rounds)
            .map(|_| run_threaded(&engine, 1))
            .collect();
        rounds.sort();
        let per_op =
            rounds[probe_rounds / 2].as_nanos() as f64 / (THREADS * OPS_PER_THREAD_PER_ITER) as f64;
        medians.push((shards, per_op));

        group.bench_function(format!("{THREADS}threads_get_hit/{shards}shard"), |b| {
            b.iter_custom(|iters| run_threaded(&engine, iters))
        });
    }
    group.finish();

    if let [(_, single), (_, sharded)] = medians[..] {
        println!(
            "\n{THREADS}-thread get-heavy: 1 shard {:.0} ns/op, 8 shards {:.0} ns/op ({:.2}x)",
            single,
            sharded,
            single / sharded
        );
    }
}

criterion_group!(benches, bench_sharded_vs_single_mutex);
criterion_main!(benches);
