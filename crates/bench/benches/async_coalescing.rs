//! Blocking vs async single-flight coalescing under contention.
//!
//! N sessions miss on the same query at once; one leads, the rest coalesce
//! onto its flight while the fetch "executes" (sleeps a few milliseconds,
//! standing in for a multi-second warehouse scan).  The same storm is run
//! two ways:
//!
//! * **blocking** — N OS threads call the synchronous
//!   `Watchman::get_or_execute`: every waiter parks a whole thread (plus the
//!   cost of creating it) for the duration of the leader's fetch;
//! * **async** — N tasks on a fixed 2-worker runtime await
//!   `Watchman::get_or_execute_async`: waiters suspend as registered wakers,
//!   and the thread count stays at the pool size no matter how many
//!   sessions pile up.
//!
//! The wall-clock of one storm is dominated by the fetch itself in both
//! modes (coalescing works either way); what the comparison shows is the
//! *overhead around it* — thread creation and scheduling for the blocking
//! mode versus task spawning for the async mode — which is exactly the cost
//! that grows with the session count in a real front end.  Run with
//! `--quick` for a CI-sized smoke pass.

use std::time::{Duration, Instant};

use watchman_core::engine::{PolicyKind, Watchman};
use watchman_core::prelude::*;
use watchman_core::runtime::block_on;

const FETCH_MILLIS: u64 = 3;

fn fresh_engine() -> Watchman<SizedPayload> {
    Watchman::builder()
        .shards(4)
        .policy(PolicyKind::LncRa { k: 4 })
        .capacity_bytes(64 << 20)
        .runtime_workers(2)
        .build()
}

/// One storm via the synchronous front door: N OS threads, one per session.
fn blocking_storm(engine: &Watchman<SizedPayload>, sessions: usize, round: u64) -> Duration {
    let key = QueryKey::new(format!("blocking-storm-{round}"));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for session in 0..sessions {
            let engine = engine.clone();
            let key = key.clone();
            scope.spawn(move || {
                engine.get_or_execute(
                    &key,
                    Timestamp::from_micros(round * 1_000 + session as u64 + 1),
                    || {
                        std::thread::sleep(Duration::from_millis(FETCH_MILLIS));
                        (SizedPayload::new(1_024), ExecutionCost::from_blocks(50_000))
                    },
                );
            });
        }
    });
    start.elapsed()
}

/// One storm via the asynchronous front door: N tasks on the 2-worker pool.
fn async_storm(engine: &Watchman<SizedPayload>, sessions: usize, round: u64) -> Duration {
    let runtime = engine.runtime();
    let key = QueryKey::new(format!("async-storm-{round}"));
    let start = Instant::now();
    let handles: Vec<_> = (0..sessions)
        .map(|session| {
            let engine = engine.clone();
            let key = key.clone();
            runtime.spawn(async move {
                engine
                    .get_or_execute_async(
                        &key,
                        Timestamp::from_micros(round * 1_000 + session as u64 + 1),
                        || {
                            std::thread::sleep(Duration::from_millis(FETCH_MILLIS));
                            (SizedPayload::new(1_024), ExecutionCost::from_blocks(50_000))
                        },
                    )
                    .await;
            })
        })
        .collect();
    for handle in handles {
        block_on(handle).expect("session task completed");
    }
    start.elapsed()
}

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds: u64 = if quick { 5 } else { 25 };
    println!(
        "async_coalescing: {rounds} rounds per cell, fetch {FETCH_MILLIS} ms, \
         2-worker runtime vs one OS thread per session\n"
    );
    println!(
        "{:>10} {:>16} {:>16} {:>14}",
        "sessions", "blocking/storm", "async/storm", "overhead ratio"
    );
    for sessions in [8usize, 64, 256] {
        if quick && sessions > 64 {
            continue;
        }
        let blocking_engine = fresh_engine();
        let async_engine = fresh_engine();
        // Warm both paths once (runtime creation, allocator warm-up).
        blocking_storm(&blocking_engine, sessions, 1_000_000);
        async_storm(&async_engine, sessions, 1_000_000);

        let blocking = median(
            (0..rounds)
                .map(|round| blocking_storm(&blocking_engine, sessions, round))
                .collect(),
        );
        let asynchronous = median(
            (0..rounds)
                .map(|round| async_storm(&async_engine, sessions, round))
                .collect(),
        );
        // Overhead = storm wall-clock minus the irreducible fetch.
        let fetch = Duration::from_millis(FETCH_MILLIS);
        let blocking_overhead = blocking.saturating_sub(fetch);
        let async_overhead = asynchronous.saturating_sub(fetch);
        let ratio = if async_overhead.as_nanos() == 0 {
            f64::INFINITY
        } else {
            blocking_overhead.as_nanos() as f64 / async_overhead.as_nanos() as f64
        };
        println!(
            "{:>10} {:>14.2?} {:>14.2?} {:>13.2}x",
            sessions, blocking, asynchronous, ratio
        );

        // Sanity: coalescing actually happened on both paths.
        let snapshot = async_engine.stats_snapshot();
        assert!(
            snapshot.total.coalesced > 0,
            "async storms must coalesce waiters"
        );
        let snapshot = blocking_engine.stats_snapshot();
        assert!(
            snapshot.total.coalesced > 0,
            "blocking storms must coalesce waiters"
        );
    }
    println!("\ndone");
}
