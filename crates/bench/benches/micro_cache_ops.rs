//! Micro-benchmarks of the cache-manager hot paths: lookups (hit and miss),
//! admission with eviction, LNC-R victim selection pressure, and the
//! concurrent shared-cache wrapper.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use watchman_core::prelude::*;

fn prefilled_lnc(entries: usize, capacity: u64) -> LncCache<SizedPayload> {
    let mut cache = LncCache::lnc_ra(capacity);
    for i in 0..entries {
        let key = QueryKey::new(format!("warm-query-{i}"));
        let now = Timestamp::from_micros(i as u64 + 1);
        cache.insert(
            key,
            SizedPayload::new(512),
            ExecutionCost::from_blocks(1_000),
            now,
        );
    }
    cache
}

fn bench_lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_lookup");
    let mut cache = prefilled_lnc(1_000, 10 * 1024 * 1024);
    let hit_key = QueryKey::new("warm-query-500".to_owned());
    let miss_key = QueryKey::new("never-seen".to_owned());
    let mut tick = 1_000_000u64;
    group.bench_function("get_hit", |b| {
        b.iter(|| {
            tick += 1;
            cache.get(&hit_key, Timestamp::from_micros(tick)).is_some()
        })
    });
    group.bench_function("get_miss", |b| {
        b.iter(|| {
            tick += 1;
            cache.get(&miss_key, Timestamp::from_micros(tick)).is_none()
        })
    });
    group.finish();
}

fn bench_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_admission");
    group.sample_size(20);
    // Insert into a full cache of 1 000 entries: every admission must run the
    // LNC-R victim selection over the whole cache.
    group.bench_function("insert_with_eviction_1000_entries", |b| {
        let mut counter = 0u64;
        b.iter_batched(
            || prefilled_lnc(1_000, 1_000 * 512),
            |mut cache| {
                counter += 1;
                let key = QueryKey::new(format!("newcomer-{counter}"));
                cache.insert(
                    key,
                    SizedPayload::new(2_048),
                    ExecutionCost::from_blocks(50_000),
                    Timestamp::from_micros(10_000_000 + counter),
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_key_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_key");
    let raw = "SELECT l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice) \
               FROM lineitem WHERE l_shipdate <= date '1998-12-01' GROUP BY l_returnflag";
    group.bench_function("query_key_from_raw", |b| {
        b.iter(|| QueryKey::from_raw_query(raw))
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_engine");
    let engine: Watchman<SizedPayload> = Watchman::builder()
        .shards(8)
        .policy(PolicyKind::LncRa { k: 4 })
        .capacity_bytes(10 * 1024 * 1024)
        .build();
    for i in 0..1_000u64 {
        engine.insert(
            QueryKey::new(format!("warm-query-{i}")),
            SizedPayload::new(512),
            ExecutionCost::from_blocks(1_000),
            Timestamp::from_micros(i + 1),
        );
    }
    let key = QueryKey::new("warm-query-100".to_owned());
    let mut tick = 2_000_000u64;
    group.bench_function("engine_get_hit", |b| {
        b.iter(|| {
            tick += 1;
            engine.get(&key, Timestamp::from_micros(tick))
        })
    });
    group.bench_function("engine_get_or_execute_hit", |b| {
        b.iter(|| {
            tick += 1;
            engine.get_or_execute(&key, Timestamp::from_micros(tick), || {
                unreachable!("warmed key must hit")
            })
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lookups,
    bench_admission,
    bench_key_hashing,
    bench_engine
);
criterion_main!(benches);
