//! Micro-benchmarks of the cache-manager hot paths: lookups (hit and miss),
//! admission with eviction, LNC-R victim selection pressure, and the
//! concurrent engine — plus an **eviction-pressure report**: every policy is
//! filled to capacity and hammered with admissions that each force an
//! eviction, measuring sustained admissions/sec against the pre-index
//! scan/sort implementations (re-created locally below as baselines).  The
//! report is written to `BENCH_policy_ops.json` at the workspace root so
//! the perf trajectory of the replacement machinery is recorded run over
//! run.  Pass `--quick` for a CI-sized smoke pass.

use std::time::Instant;

use criterion::{criterion_group, BatchSize, Criterion};
use watchman_core::engine::{PolicyKind, Watchman};
use watchman_core::prelude::*;

fn prefilled_lnc(entries: usize, capacity: u64) -> LncCache<SizedPayload> {
    let mut cache = LncCache::lnc_ra(capacity);
    for i in 0..entries {
        let key = QueryKey::new(format!("warm-query-{i}"));
        let now = Timestamp::from_micros(i as u64 + 1);
        cache.insert(
            key,
            SizedPayload::new(512),
            ExecutionCost::from_blocks(1_000),
            now,
        );
    }
    cache
}

fn bench_lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_lookup");
    let mut cache = prefilled_lnc(1_000, 10 * 1024 * 1024);
    let hit_key = QueryKey::new("warm-query-500".to_owned());
    let miss_key = QueryKey::new("never-seen".to_owned());
    let mut tick = 1_000_000u64;
    group.bench_function("get_hit", |b| {
        b.iter(|| {
            tick += 1;
            cache.get(&hit_key, Timestamp::from_micros(tick)).is_some()
        })
    });
    group.bench_function("get_miss", |b| {
        b.iter(|| {
            tick += 1;
            cache.get(&miss_key, Timestamp::from_micros(tick)).is_none()
        })
    });
    group.finish();
}

fn bench_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_admission");
    group.sample_size(20);
    // Insert into a full cache of 1 000 entries: every admission must run the
    // LNC-R victim selection over the whole cache.
    group.bench_function("insert_with_eviction_1000_entries", |b| {
        let mut counter = 0u64;
        b.iter_batched(
            || prefilled_lnc(1_000, 1_000 * 512),
            |mut cache| {
                counter += 1;
                let key = QueryKey::new(format!("newcomer-{counter}"));
                cache.insert(
                    key,
                    SizedPayload::new(2_048),
                    ExecutionCost::from_blocks(50_000),
                    Timestamp::from_micros(10_000_000 + counter),
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_key_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_key");
    let raw = "SELECT l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice) \
               FROM lineitem WHERE l_shipdate <= date '1998-12-01' GROUP BY l_returnflag";
    group.bench_function("query_key_from_raw", |b| {
        b.iter(|| QueryKey::from_raw_query(raw))
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_engine");
    let engine: Watchman<SizedPayload> = Watchman::builder()
        .shards(8)
        .policy(PolicyKind::LncRa { k: 4 })
        .capacity_bytes(10 * 1024 * 1024)
        .build();
    for i in 0..1_000u64 {
        engine.insert(
            QueryKey::new(format!("warm-query-{i}")),
            SizedPayload::new(512),
            ExecutionCost::from_blocks(1_000),
            Timestamp::from_micros(i + 1),
        );
    }
    let key = QueryKey::new("warm-query-100".to_owned());
    let mut tick = 2_000_000u64;
    group.bench_function("engine_get_hit", |b| {
        b.iter(|| {
            tick += 1;
            engine.get(&key, Timestamp::from_micros(tick))
        })
    });
    group.bench_function("engine_get_or_execute_hit", |b| {
        b.iter(|| {
            tick += 1;
            engine.get_or_execute(&key, Timestamp::from_micros(tick), || {
                unreachable!("warmed key must hit")
            })
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lookups,
    bench_admission,
    bench_key_hashing,
    bench_engine
);

// ---------------------------------------------------------------------------
// Eviction-pressure report
// ---------------------------------------------------------------------------

/// Bytes per retrieved set in the pressure workload.
const PAYLOAD_BYTES: u64 = 512;

/// Admissions/sec measured once at the pre-index commit (the parent of the
/// victim-index rewrite) on this repo's 1-core CI-grade container, same
/// workload (10 000 entries, 500 pressure ops).  Kept as fixed reference
/// points so every report can state the speedup against the *actual*
/// replaced implementation, not just the re-runnable scan baselines below.
const PRE_PR_MEASURED_10K: &[(&str, f64)] = &[
    ("LNC-RA", 3_322.0),
    ("LNC-R", 3_513.0),
    ("LRU", 1_955_256.0),
    ("LRU-4", 4_833.0),
    ("LFU", 68_279.0),
    ("LCS", 63_529.0),
    ("GreedyDual-Size", 51_637.0),
];

/// One measured cell of the report.
struct PressureResult {
    policy: String,
    entries: usize,
    ops: u64,
    elapsed_ms: f64,
    admissions_per_sec: f64,
}

impl PressureResult {
    fn json(&self) -> String {
        format!(
            "{{\"policy\": \"{}\", \"entries\": {}, \"ops\": {}, \"elapsed_ms\": {:.3}, \"admissions_per_sec\": {:.1}}}",
            self.policy, self.entries, self.ops, self.elapsed_ms, self.admissions_per_sec
        )
    }
}

/// Sustained admissions/sec into a full cache of `entries` sets: every
/// insert must evict through the policy's replacement machinery.
fn measure_policy(kind: PolicyKind, entries: usize, ops: u64) -> PressureResult {
    let capacity = entries as u64 * PAYLOAD_BYTES;
    let mut cache = kind.build::<SizedPayload>(capacity);
    for i in 0..entries as u64 {
        cache.insert(
            QueryKey::new(format!("warm-{i}")),
            SizedPayload::new(PAYLOAD_BYTES),
            ExecutionCost::from_blocks(1_000),
            Timestamp::from_micros(i + 1),
        );
    }
    assert_eq!(cache.len(), entries, "{kind}: prefill must fill the cache");
    let base = entries as u64 + 1;
    let start = Instant::now();
    for i in 0..ops {
        // Expensive newcomers so cost-aware admission tests admit them and
        // the eviction path runs on every operation.
        cache.insert(
            QueryKey::new(format!("pressure-{i}")),
            SizedPayload::new(PAYLOAD_BYTES),
            ExecutionCost::from_blocks(50_000),
            Timestamp::from_micros(base + i),
        );
    }
    let elapsed = start.elapsed();
    PressureResult {
        policy: kind.label(),
        entries,
        ops,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        admissions_per_sec: ops as f64 / elapsed.as_secs_f64(),
    }
}

/// The pre-index GreedyDual-Size replacement loop: one O(n) scan per victim
/// (exactly what `gds.rs::evict_for` did before the credit index), kept here
/// as the measured baseline the speedup criterion compares against.
struct ScanGds {
    capacity: u64,
    used: u64,
    inflation: f64,
    /// (credit, size) per cached set.
    sets: Vec<(f64, u64)>,
}

impl ScanGds {
    fn insert(&mut self, cost_over_size: f64, size: u64) {
        while self.used + size > self.capacity {
            let Some((index, &(credit, victim_size))) = self
                .sets
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
            else {
                break;
            };
            self.inflation = self.inflation.max(credit);
            self.used -= victim_size;
            self.sets.swap_remove(index);
        }
        self.sets.push((self.inflation + cost_over_size, size));
        self.used += size;
    }
}

fn measure_scan_gds(entries: usize, ops: u64) -> PressureResult {
    let capacity = entries as u64 * PAYLOAD_BYTES;
    let mut cache = ScanGds {
        capacity,
        used: 0,
        inflation: 0.0,
        sets: Vec::new(),
    };
    for _ in 0..entries {
        cache.insert(1_000.0 / PAYLOAD_BYTES as f64, PAYLOAD_BYTES);
    }
    let start = Instant::now();
    for _ in 0..ops {
        cache.insert(50_000.0 / PAYLOAD_BYTES as f64, PAYLOAD_BYTES);
    }
    let elapsed = start.elapsed();
    PressureResult {
        policy: "GreedyDual-Size (pre-index scan)".to_owned(),
        entries,
        ops,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        admissions_per_sec: ops as f64 / elapsed.as_secs_f64(),
    }
}

/// The pre-index LNC-R admission path, cost-faithful to what `lnc.rs` did
/// per admission before the epoch-cached ranking:
///
/// 1. re-sum every entry's size (the `total` recompute this PR fixed),
/// 2. collect every cached set's `(samples, profit)` and stable-sort the lot
///    (`select_victims`), evicting the prefix,
/// 3. retain the victims' reference information (§2.4),
/// 4. re-scan all cached profits for the minimum and purge the retained
///    table below it (`purge_retained` ran on every admission).
struct SortLnc {
    capacity: u64,
    used: u64,
    /// (first_reference_us, cost, size) per cached set (K = 1 histories:
    /// the scans and the sort dominate either way).
    sets: Vec<(u64, f64, u64)>,
    /// Retained reference information: (first_reference_us, cost, size).
    retained: Vec<(u64, f64, u64)>,
}

impl SortLnc {
    fn profit(&self, set: &(u64, f64, u64), now_us: u64) -> f64 {
        let rate = 1.0 / now_us.saturating_sub(set.0).max(1) as f64;
        rate * set.1 / set.2 as f64
    }

    fn insert(&mut self, cost: f64, size: u64, now_us: u64) {
        let available = self.capacity - self.used;
        if available < size {
            let total: u64 = self.sets.iter().map(|s| s.2).sum();
            assert!(total >= size - available);
            let needed = size - available;
            let mut ranked: Vec<(f64, usize, u64)> = self
                .sets
                .iter()
                .enumerate()
                .map(|(index, set)| (self.profit(set, now_us), index, set.2))
                .collect();
            ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut freed = 0u64;
            let mut victims: Vec<usize> = Vec::new();
            for &(_, index, s) in &ranked {
                if freed >= needed {
                    break;
                }
                victims.push(index);
                freed += s;
            }
            victims.sort_unstable_by(|a, b| b.cmp(a));
            for index in victims {
                let victim = self.sets[index];
                self.used -= victim.2;
                if self.retained.len() < 16_384 {
                    self.retained.push(victim);
                }
                self.sets.swap_remove(index);
            }
        }
        self.sets.push((now_us, cost, size));
        self.used += size;
        // purge_retained: the minimum cached profit is a second full scan,
        // then every retained history is re-priced against it.
        if !self.retained.is_empty() {
            let min = self
                .sets
                .iter()
                .map(|set| self.profit(set, now_us))
                .fold(f64::INFINITY, f64::min);
            let keep: Vec<(u64, f64, u64)> = self
                .retained
                .iter()
                .copied()
                .filter(|set| self.profit(set, now_us) >= min)
                .collect();
            self.retained = keep;
        }
    }
}

fn measure_sort_lnc(entries: usize, ops: u64) -> PressureResult {
    let capacity = entries as u64 * PAYLOAD_BYTES;
    let mut cache = SortLnc {
        capacity,
        used: 0,
        sets: Vec::new(),
        retained: Vec::new(),
    };
    for i in 0..entries as u64 {
        cache.insert(1_000.0, PAYLOAD_BYTES, i + 1);
    }
    let base = entries as u64 + 1;
    let start = Instant::now();
    for i in 0..ops {
        cache.insert(50_000.0, PAYLOAD_BYTES, base + i);
    }
    let elapsed = start.elapsed();
    PressureResult {
        policy: "LNC-R (pre-index sort)".to_owned(),
        entries,
        ops,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        admissions_per_sec: ops as f64 / elapsed.as_secs_f64(),
    }
}

/// Operation count per cell, scaled down with the cache size so the report
/// stays CI-sized.
fn ops_for(entries: usize, quick: bool) -> u64 {
    let ops = (40_000_000 / entries.max(1)) as u64;
    let ops = ops.clamp(500, 20_000);
    if quick {
        ops / 4
    } else {
        ops
    }
}

/// How far below a committed reference rate a re-run may land before the
/// guard fails.  Generous on purpose: CI runners vary several-fold in
/// absolute throughput, and the guard's job is to catch *structural*
/// regressions — above all, debugging instrumentation (the `lock-graph`
/// feature) accidentally compiled into the default build — not to chase
/// scheduler noise.
const REFERENCE_TOLERANCE: f64 = 3.0;

/// Parses `(policy, entries, admissions_per_sec)` rows out of a previously
/// committed `BENCH_policy_ops.json` (the format this bench writes).  Only
/// the `results` section is read; the scan baselines are measured with
/// different op counts and are not comparable across runs.
fn parse_reference(json: &str) -> Vec<(String, usize, f64)> {
    // The bench writes one result object per line; a row is complete when
    // all three fields appear on it.
    fn scalar<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let rest = &line[line.find(key)? + key.len()..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
    let mut rows = Vec::new();
    for line in json.lines() {
        if line.trim_start().starts_with("\"scan_baselines\"") {
            break;
        }
        let policy = line
            .find("\"policy\": \"")
            .map(|i| &line[i + "\"policy\": \"".len()..])
            .and_then(|rest| rest.split('"').next());
        if let (Some(policy), Some(Ok(entries)), Some(Ok(rate))) = (
            policy,
            scalar(line, "\"entries\": ").map(str::parse::<usize>),
            scalar(line, "\"admissions_per_sec\": ").map(str::parse::<f64>),
        ) {
            rows.push((policy.to_owned(), entries, rate));
        }
    }
    rows
}

/// The PR 6 bench guard: with instrumentation compiled out, the measured
/// admissions/sec must stay within [`REFERENCE_TOLERANCE`] of the committed
/// reference for every (policy, entries) cell both runs cover.
fn assert_against_reference(ref_path: &str, results: &[PressureResult]) {
    let json = std::fs::read_to_string(ref_path)
        .unwrap_or_else(|error| panic!("cannot read reference {ref_path}: {error}"));
    let reference = parse_reference(&json);
    assert!(
        !reference.is_empty(),
        "reference {ref_path} contains no results — wrong file?"
    );
    println!("\nbench guard vs {ref_path} (tolerance {REFERENCE_TOLERANCE}x):");
    let mut compared = 0;
    for (policy, entries, ref_rate) in &reference {
        let Some(current) = results
            .iter()
            .find(|r| &r.policy == policy && r.entries == *entries)
        else {
            continue; // quick runs skip the 100k tier
        };
        compared += 1;
        let factor = current.admissions_per_sec / ref_rate;
        println!("{policy:>34} @{entries}: {factor:>6.2}x of reference");
        assert!(
            factor * REFERENCE_TOLERANCE >= 1.0,
            "{policy} at {entries} entries regressed to {:.0} admissions/sec \
             ({factor:.2}x of the committed {ref_rate:.0}) — is debugging \
             instrumentation compiled into the default build?",
            current.admissions_per_sec
        );
    }
    assert!(
        compared > 0,
        "no comparable cells between run and reference"
    );
    println!("bench guard passed: {compared} cells within tolerance");
}

fn eviction_pressure_report(quick: bool, assert_ref: Option<&str>) {
    let sizes: &[usize] = if quick { &[10_000] } else { &[10_000, 100_000] };
    let mut results = Vec::new();
    let mut baselines = Vec::new();
    println!(
        "\neviction-pressure report (payload {PAYLOAD_BYTES} B, full cache, every insert evicts)\n"
    );
    println!(
        "{:>34} {:>9} {:>8} {:>12} {:>16}",
        "policy", "entries", "ops", "elapsed", "admissions/sec"
    );
    for &entries in sizes {
        for kind in PolicyKind::all() {
            let result = measure_policy(kind, entries, ops_for(entries, quick));
            println!(
                "{:>34} {:>9} {:>8} {:>9.1} ms {:>16.0}",
                result.policy,
                result.entries,
                result.ops,
                result.elapsed_ms,
                result.admissions_per_sec
            );
            results.push(result);
        }
        // The scan baselines re-create the pre-index replacement loops; they
        // get fewer operations (each one is O(n) or O(n log n)).
        let scan_ops = ops_for(entries, quick).min(if quick { 250 } else { 1_000 });
        for baseline in [
            measure_scan_gds(entries, scan_ops),
            measure_sort_lnc(entries, scan_ops),
        ] {
            println!(
                "{:>34} {:>9} {:>8} {:>9.1} ms {:>16.0}",
                baseline.policy,
                baseline.entries,
                baseline.ops,
                baseline.elapsed_ms,
                baseline.admissions_per_sec
            );
            baselines.push(baseline);
        }
    }

    let speedup = |policy: &str, baseline_policy: &str, entries: usize| -> Option<f64> {
        let indexed = results
            .iter()
            .find(|r| r.policy == policy && r.entries == entries)?;
        let scan = baselines
            .iter()
            .find(|r| r.policy == baseline_policy && r.entries == entries)?;
        Some(indexed.admissions_per_sec / scan.admissions_per_sec)
    };
    let gds_speedup = speedup(
        "GreedyDual-Size",
        "GreedyDual-Size (pre-index scan)",
        10_000,
    );
    let lnc_speedup = speedup("LNC-R", "LNC-R (pre-index sort)", 10_000);
    if let (Some(gds), Some(lnc)) = (gds_speedup, lnc_speedup) {
        println!("\nspeedup vs in-bench scan baselines at 10k entries: GreedyDual-Size {gds:.1}x, LNC-R {lnc:.1}x");
        assert!(
            gds >= 5.0 || lnc >= 5.0,
            "the worst pre-index offender must be at least 5x faster under the victim indexes \
             (GreedyDual-Size {gds:.1}x, LNC-R {lnc:.1}x)"
        );
    }
    let mut pre_pr_speedups = Vec::new();
    for &(policy, pre_pr_rate) in PRE_PR_MEASURED_10K {
        if let Some(result) = results
            .iter()
            .find(|r| r.policy == policy && r.entries == 10_000)
        {
            let factor = result.admissions_per_sec / pre_pr_rate;
            println!("{policy:>34} vs pre-PR measured: {factor:.1}x");
            pre_pr_speedups.push(format!("\"{policy}\": {factor:.2}"));
        }
    }

    let json = format!(
        "{{\n  \"benchmark\": \"micro_cache_ops/eviction_pressure\",\n  \"payload_bytes\": {},\n  \"quick\": {},\n  \"results\": [\n    {}\n  ],\n  \"scan_baselines\": [\n    {}\n  ],\n  \"pre_pr_measured_at_10k\": [\n    {}\n  ],\n  \"speedup_vs_scan_baseline_at_10k\": {{\"GreedyDual-Size\": {}, \"LNC-R\": {}}},\n  \"speedup_vs_pre_pr_at_10k\": {{{}}}\n}}\n",
        PAYLOAD_BYTES,
        quick,
        results
            .iter()
            .map(PressureResult::json)
            .collect::<Vec<_>>()
            .join(",\n    "),
        baselines
            .iter()
            .map(PressureResult::json)
            .collect::<Vec<_>>()
            .join(",\n    "),
        PRE_PR_MEASURED_10K
            .iter()
            .map(|(policy, rate)| format!(
                "{{\"policy\": \"{policy}\", \"entries\": 10000, \"admissions_per_sec\": {rate:.1}}}"
            ))
            .collect::<Vec<_>>()
            .join(",\n    "),
        gds_speedup.map_or("null".to_owned(), |s| format!("{s:.2}")),
        lnc_speedup.map_or("null".to_owned(), |s| format!("{s:.2}")),
        pre_pr_speedups.join(", "),
    );
    // Cargo runs benches with the package directory as CWD; anchor the
    // report at the workspace root so the committed artifact stays in place.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_policy_ops.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(error) => println!("could not write {path}: {error}"),
    }

    if let Some(ref_path) = assert_ref {
        assert_against_reference(ref_path, &results);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let assert_ref = args.iter().position(|a| a == "--assert-ref").map(|i| {
        args.get(i + 1)
            .expect("--assert-ref requires a reference JSON path")
            .clone()
    });
    benches();
    eviction_pressure_report(quick, assert_ref.as_deref());
}
