//! Figure 4 bench: cost savings ratio vs cache size for LNC-RA, LNC-R and
//! LRU on both benchmark traces, plus the §4.2 improvement-factor summary.

use criterion::{criterion_group, criterion_main, Criterion};
use watchman_bench::{measure_scale, report_scale};
use watchman_sim::experiments::cost_savings::QUICK_CACHE_FRACTIONS;
use watchman_sim::{run_policy, CostSavingsExperiment, PolicyKind, Workload};

fn bench_fig4(c: &mut Criterion) {
    let experiment =
        CostSavingsExperiment::run_with_fractions(report_scale(), &QUICK_CACHE_FRACTIONS);
    println!("\n{}", experiment.render_cost_savings());
    println!("{}", experiment.render_summary());

    let workload = Workload::tpcd(measure_scale());
    let mut group = c.benchmark_group("fig4_cost_savings");
    group.sample_size(10);
    for kind in PolicyKind::paper_trio() {
        group.bench_function(format!("replay_{}", kind.label()), |b| {
            b.iter(|| run_policy(&workload.trace, kind, 0.01))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
