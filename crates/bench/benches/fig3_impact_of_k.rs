//! Figure 3 bench: CSR of LNC-RA and LRU-K as a function of the reference
//! window K (cache = 1 % of the database).

use criterion::{criterion_group, criterion_main, Criterion};
use watchman_bench::{measure_scale, report_scale};
use watchman_sim::{run_policy, ImpactOfKExperiment, PolicyKind, Workload};

fn bench_fig3(c: &mut Criterion) {
    let experiment = ImpactOfKExperiment::run(report_scale());
    println!("\n{}", experiment.render());

    let workload = Workload::tpcd(measure_scale());
    let mut group = c.benchmark_group("fig3_impact_of_k");
    group.sample_size(10);
    for k in [1usize, 4] {
        group.bench_function(format!("lnc_ra_k{k}"), |b| {
            b.iter(|| run_policy(&workload.trace, PolicyKind::LncRa { k }, 0.01))
        });
        group.bench_function(format!("lru_k{k}"), |b| {
            b.iter(|| run_policy(&workload.trace, PolicyKind::LruK { k }, 0.01))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
