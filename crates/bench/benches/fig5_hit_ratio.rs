//! Figure 5 bench: hit ratio vs cache size for LNC-RA, LNC-R and LRU on both
//! benchmark traces.

use criterion::{criterion_group, criterion_main, Criterion};
use watchman_bench::{measure_scale, report_scale};
use watchman_sim::experiments::cost_savings::QUICK_CACHE_FRACTIONS;
use watchman_sim::{run_policy, CostSavingsExperiment, PolicyKind, Workload};

fn bench_fig5(c: &mut Criterion) {
    let experiment =
        CostSavingsExperiment::run_with_fractions(report_scale(), &QUICK_CACHE_FRACTIONS);
    println!("\n{}", experiment.render_hit_ratio());

    // Measure the Set Query replay (the other trace is measured by fig4).
    let workload = Workload::set_query(measure_scale());
    let mut group = c.benchmark_group("fig5_hit_ratio");
    group.sample_size(10);
    for kind in PolicyKind::paper_trio() {
        group.bench_function(format!("replay_sq_{}", kind.label()), |b| {
            b.iter(|| run_policy(&workload.trace, kind, 0.01))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
