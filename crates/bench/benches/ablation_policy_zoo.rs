//! Extension ablation bench: the full policy zoo (LNC-RA, LNC-R, LRU, LRU-K,
//! LFU, LCS, GreedyDual-Size) and the optimality-gap comparison against the
//! static LNC* oracle.

use criterion::{criterion_group, criterion_main, Criterion};
use watchman_bench::{measure_scale, report_scale};
use watchman_sim::{run_policy, OptimalityExperiment, PolicyKind, PolicyZooExperiment, Workload};

fn bench_ablation(c: &mut Criterion) {
    let zoo = PolicyZooExperiment::run(report_scale());
    println!("\n{}", zoo.render());
    let optimality = OptimalityExperiment::run(report_scale(), &[0.01, 0.05]);
    println!("{}", optimality.render());

    let workload = Workload::set_query(measure_scale());
    let mut group = c.benchmark_group("ablation_policy_zoo");
    group.sample_size(10);
    for kind in [PolicyKind::Lfu, PolicyKind::Lcs, PolicyKind::GreedyDualSize] {
        group.bench_function(format!("replay_{}", kind.label()), |b| {
            b.iter(|| run_policy(&workload.trace, kind, 0.01))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
