//! Figure 6 bench: external cache fragmentation (fraction of cache space in
//! use) for LNC-RA, LNC-R and LRU across cache sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use watchman_bench::{measure_scale, report_scale};
use watchman_sim::{replay_trace, ExperimentScale, FragmentationExperiment, PolicyKind, Workload};

fn bench_fig6(c: &mut Criterion) {
    let experiment =
        FragmentationExperiment::run_with_fractions(report_scale(), &[0.005, 0.01, 0.03, 0.05]);
    println!("\n{}", experiment.render());

    let workload = Workload::set_query(measure_scale());
    let capacity = (workload.database_bytes() as f64 * 0.01) as u64;
    let mut group = c.benchmark_group("fig6_fragmentation");
    group.sample_size(10);
    group.bench_function("replay_with_occupancy_sampling", |b| {
        b.iter(|| {
            let mut cache = PolicyKind::LNC_RA.build(capacity);
            replay_trace(&workload.trace, cache.as_mut(), 0.01)
        })
    });
    group.bench_function("experiment_quick", |b| {
        b.iter(|| FragmentationExperiment::run_with_fractions(ExperimentScale::quick(400), &[0.01]))
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
