//! # watchman-bench
//!
//! Criterion benchmark harnesses that regenerate every table and figure of
//! the WATCHMAN paper's evaluation section, plus micro-benchmarks of the
//! cache-manager hot paths.
//!
//! Each `fig*` bench does two things:
//!
//! 1. **Prints the figure's table** (once, before measurement) at a reduced
//!    but representative scale, so `cargo bench` output contains the same
//!    rows/series the paper reports.  Paper-scale runs are available through
//!    the `watchman-sim` binaries (`cargo run --release -p watchman-sim --bin
//!    run_all`).
//! 2. **Measures** the end-to-end experiment runtime with Criterion, so
//!    regressions in the policies or the simulator show up as benchmark
//!    regressions.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use watchman_sim::ExperimentScale;

/// The trace length used when a figure bench prints its table.
pub const REPORT_QUERIES: usize = 4_000;

/// The trace length used inside Criterion measurement loops (smaller, so the
/// measured iterations stay in the tens of milliseconds).
pub const MEASURE_QUERIES: usize = 1_000;

/// The scale used to print figure tables from benches.
pub fn report_scale() -> ExperimentScale {
    ExperimentScale::quick(REPORT_QUERIES)
}

/// The scale used inside Criterion measurement loops.
pub fn measure_scale() -> ExperimentScale {
    ExperimentScale::quick(MEASURE_QUERIES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(report_scale().query_count > measure_scale().query_count);
    }
}
