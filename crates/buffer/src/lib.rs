//! # watchman-buffer
//!
//! The page-level buffer manager used to study the interaction between
//! WATCHMAN and the DBMS buffer pool (paper §3 and Figure 7).
//!
//! * [`pool::BufferPool`] — a fixed-capacity LRU page buffer with an
//!   additional *demote* operation that moves pages to the cold end of the
//!   LRU chain;
//! * [`hints::QueryReferenceTracker`] — per-page query reference sets and the
//!   p₀-redundancy computation that decides which pages WATCHMAN's hints
//!   name.
//!
//! ```
//! use watchman_buffer::{BufferPool, QueryReferenceTracker};
//! use watchman_core::key::Signature;
//! use watchman_warehouse::{PageId, RelationId};
//!
//! let mut pool = BufferPool::new(128);
//! let mut tracker = QueryReferenceTracker::new();
//! let page = PageId::new(RelationId(0), 7);
//!
//! pool.access(page);
//! tracker.record(page, Signature(42));
//!
//! // Query 42's retrieved set just got cached by WATCHMAN: demote the pages
//! // that only it uses.
//! let hint = tracker.redundant_pages(&[page], 0.6, |sig| sig == Signature(42));
//! pool.demote(&hint);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod hints;
pub mod pool;

pub use hints::{QueryReferenceTracker, RedundancyHintObserver};
pub use pool::{BufferPool, BufferStats};
