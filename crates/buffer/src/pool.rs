//! A page-level LRU buffer pool with support for WATCHMAN hints.
//!
//! The buffer manager simulated in paper §3 implements plain LRU page
//! replacement, with one extension: upon receiving a hint from WATCHMAN it
//! moves the named pages to the *end* of the LRU chain (the next victims),
//! because those pages are mostly used by queries whose retrieved sets are
//! already cached and are therefore unlikely to be needed again soon.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};
use watchman_warehouse::{PageId, PAGE_SIZE_BYTES};

/// Buffer-pool access statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferStats {
    /// Total page references.
    pub references: u64,
    /// References satisfied from the pool.
    pub hits: u64,
    /// Pages evicted.
    pub evictions: u64,
    /// Pages demoted to the cold end of the LRU chain by hints.
    pub demotions: u64,
}

impl BufferStats {
    /// The buffer hit ratio (zero when no reference has been made).
    pub fn hit_ratio(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            self.hits as f64 / self.references as f64
        }
    }
}

/// A fixed-capacity LRU page buffer pool.
#[derive(Debug)]
pub struct BufferPool {
    capacity_pages: usize,
    /// page → its position key in `order`.
    resident: HashMap<PageId, u64>,
    /// position key → page; iteration order = eviction order (oldest first).
    order: BTreeMap<u64, PageId>,
    /// Monotonically increasing key for normal (hot) insertions.
    next_hot: u64,
    /// Monotonically decreasing key for demoted (cold) pages; always smaller
    /// than every hot key, so demoted pages are evicted first.
    next_cold: u64,
    stats: BufferStats,
}

impl BufferPool {
    /// Creates a pool that can hold `capacity_pages` pages.
    pub fn new(capacity_pages: usize) -> Self {
        BufferPool {
            capacity_pages,
            resident: HashMap::with_capacity(capacity_pages),
            order: BTreeMap::new(),
            next_hot: u64::MAX / 2,
            next_cold: u64::MAX / 2 - 1,
            stats: BufferStats::default(),
        }
    }

    /// Creates a pool sized in bytes (rounded down to whole pages).
    pub fn with_capacity_bytes(bytes: u64) -> Self {
        Self::new((bytes / PAGE_SIZE_BYTES) as usize)
    }

    /// The pool capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Number of pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Whether a page is currently buffered.
    pub fn contains(&self, page: PageId) -> bool {
        self.resident.contains_key(&page)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BufferStats {
        &self.stats
    }

    /// References a page: a hit refreshes its recency, a miss faults it in,
    /// evicting the least recently used page if the pool is full.
    ///
    /// Returns `true` on a hit.
    pub fn access(&mut self, page: PageId) -> bool {
        self.stats.references += 1;
        if self.capacity_pages == 0 {
            return false;
        }
        let hit = if let Some(&key) = self.resident.get(&page) {
            self.order.remove(&key);
            self.stats.hits += 1;
            true
        } else {
            if self.resident.len() >= self.capacity_pages {
                self.evict_one();
            }
            false
        };
        let key = self.next_hot;
        self.next_hot += 1;
        self.order.insert(key, page);
        self.resident.insert(page, key);
        hit
    }

    fn evict_one(&mut self) {
        if let Some((&key, &victim)) = self.order.iter().next() {
            self.order.remove(&key);
            self.resident.remove(&victim);
            self.stats.evictions += 1;
        }
    }

    /// Applies a WATCHMAN hint: every named page that is currently resident
    /// is moved to the cold end of the LRU chain so it becomes the next
    /// eviction victim.  Pages that are not resident are ignored.
    ///
    /// Returns the number of pages actually demoted.
    pub fn demote(&mut self, pages: &[PageId]) -> usize {
        let mut demoted = 0;
        for &page in pages {
            if let Some(&key) = self.resident.get(&page) {
                self.order.remove(&key);
                let cold_key = self.next_cold;
                self.next_cold -= 1;
                self.order.insert(cold_key, page);
                self.resident.insert(page, cold_key);
                demoted += 1;
            }
        }
        self.stats.demotions += demoted as u64;
        demoted
    }

    /// Empties the pool (statistics are preserved).
    pub fn clear(&mut self) {
        self.resident.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watchman_warehouse::RelationId;

    fn page(rel: u16, p: u32) -> PageId {
        PageId::new(RelationId(rel), p)
    }

    #[test]
    fn faults_and_hits_are_counted() {
        let mut pool = BufferPool::new(2);
        assert!(!pool.access(page(0, 1)));
        assert!(!pool.access(page(0, 2)));
        assert!(pool.access(page(0, 1)));
        assert_eq!(pool.stats().references, 3);
        assert_eq!(pool.stats().hits, 1);
        assert!((pool.stats().hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(pool.resident_pages(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut pool = BufferPool::new(2);
        pool.access(page(0, 1));
        pool.access(page(0, 2));
        pool.access(page(0, 1)); // page 1 is now the most recent
        pool.access(page(0, 3)); // evicts page 2
        assert!(pool.contains(page(0, 1)));
        assert!(!pool.contains(page(0, 2)));
        assert!(pool.contains(page(0, 3)));
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn capacity_is_respected() {
        let mut pool = BufferPool::new(8);
        for i in 0..100 {
            pool.access(page(0, i));
            assert!(pool.resident_pages() <= 8);
        }
    }

    #[test]
    fn zero_capacity_pool_never_hits() {
        let mut pool = BufferPool::new(0);
        assert!(!pool.access(page(0, 1)));
        assert!(!pool.access(page(0, 1)));
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.resident_pages(), 0);
    }

    #[test]
    fn with_capacity_bytes_converts_to_pages() {
        let pool = BufferPool::with_capacity_bytes(10 * PAGE_SIZE_BYTES + 123);
        assert_eq!(pool.capacity_pages(), 10);
    }

    #[test]
    fn demoted_pages_are_evicted_first() {
        let mut pool = BufferPool::new(3);
        pool.access(page(0, 1));
        pool.access(page(0, 2));
        pool.access(page(0, 3));
        // Page 3 is the most recently used, but a hint demotes it.
        assert_eq!(pool.demote(&[page(0, 3)]), 1);
        pool.access(page(0, 4)); // must evict the demoted page 3, not page 1
        assert!(pool.contains(page(0, 1)));
        assert!(pool.contains(page(0, 2)));
        assert!(!pool.contains(page(0, 3)));
        assert_eq!(pool.stats().demotions, 1);
    }

    #[test]
    fn demoting_non_resident_pages_is_a_noop() {
        let mut pool = BufferPool::new(2);
        pool.access(page(0, 1));
        assert_eq!(pool.demote(&[page(5, 99)]), 0);
        assert!(pool.contains(page(0, 1)));
    }

    #[test]
    fn re_access_restores_a_demoted_page() {
        let mut pool = BufferPool::new(2);
        pool.access(page(0, 1));
        pool.access(page(0, 2));
        pool.demote(&[page(0, 1)]);
        // Touching the demoted page makes it hot again.
        assert!(pool.access(page(0, 1)));
        pool.access(page(0, 3)); // evicts page 2, not page 1
        assert!(pool.contains(page(0, 1)));
        assert!(!pool.contains(page(0, 2)));
    }

    #[test]
    fn clear_empties_but_keeps_stats() {
        let mut pool = BufferPool::new(4);
        pool.access(page(0, 1));
        pool.clear();
        assert_eq!(pool.resident_pages(), 0);
        assert_eq!(pool.stats().references, 1);
        assert!(!pool.contains(page(0, 1)));
    }
}
