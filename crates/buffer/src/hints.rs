//! Query reference sets and p₀-redundancy hints (paper §3).
//!
//! For the simulation of the WATCHMAN ↔ buffer-manager interaction, the
//! buffer manager maintains with every buffered page its *query reference
//! set*: the IDs of all queries that have referenced the page.  A page is
//! **p-redundant** if at least a fraction `p` of the queries in its reference
//! set currently have their retrieved sets cached by WATCHMAN — re-executing
//! those queries is unnecessary, so the page itself is unlikely to be read
//! again.  After caching a retrieved set, WATCHMAN sends the buffer manager a
//! hint listing all pages that are p₀-redundant for a fixed threshold p₀; the
//! buffer manager moves them to the end of its LRU chain.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use watchman_core::engine::{CacheEvent, CacheObserver};
use watchman_core::key::{QueryKey, Signature};
use watchman_core::sync::{Mutex, MutexGuard};
use watchman_warehouse::PageId;

use crate::pool::BufferPool;

/// Tracks, for every page, the set of queries that referenced it.
///
/// `max_queries_per_page` bounds the per-page set; the paper notes that
/// compression and sampling techniques can be used to keep this structure
/// small, and a bounded set is the simplest such scheme (once the bound is
/// reached, new queries are not recorded, which only makes redundancy
/// estimates conservative).
#[derive(Debug)]
pub struct QueryReferenceTracker {
    per_page: HashMap<PageId, HashSet<Signature>>,
    max_queries_per_page: usize,
}

impl Default for QueryReferenceTracker {
    /// Equivalent to [`QueryReferenceTracker::new`].  (A derived `Default`
    /// would set the per-page bound to zero, silently recording nothing.)
    fn default() -> Self {
        Self::new()
    }
}

impl QueryReferenceTracker {
    /// Creates a tracker with the default per-page bound (64 queries).
    pub fn new() -> Self {
        Self::with_bound(64)
    }

    /// Creates a tracker that records at most `max_queries_per_page` distinct
    /// queries per page.
    pub fn with_bound(max_queries_per_page: usize) -> Self {
        QueryReferenceTracker {
            per_page: HashMap::new(),
            max_queries_per_page: max_queries_per_page.max(1),
        }
    }

    /// Records that `query` referenced `page`.
    pub fn record(&mut self, page: PageId, query: Signature) {
        let set = self.per_page.entry(page).or_default();
        if set.len() < self.max_queries_per_page {
            set.insert(query);
        }
    }

    /// Records that `query` referenced every page in `pages`.
    pub fn record_all(&mut self, pages: &[PageId], query: Signature) {
        for &page in pages {
            self.record(page, query);
        }
    }

    /// The query reference set of a page (empty if the page was never seen).
    pub fn reference_set(&self, page: PageId) -> Option<&HashSet<Signature>> {
        self.per_page.get(&page)
    }

    /// Number of tracked pages.
    pub fn tracked_pages(&self) -> usize {
        self.per_page.len()
    }

    /// The fraction of `page`'s query reference set whose retrieved sets are
    /// currently cached (`is_cached` decides membership).  Returns 0 for an
    /// untracked page.
    pub fn redundancy<F>(&self, page: PageId, is_cached: F) -> f64
    where
        F: Fn(Signature) -> bool,
    {
        match self.per_page.get(&page) {
            None => 0.0,
            Some(set) if set.is_empty() => 0.0,
            Some(set) => {
                let cached = set.iter().filter(|&&sig| is_cached(sig)).count();
                cached as f64 / set.len() as f64
            }
        }
    }

    /// Returns the subset of `pages` that are p₀-redundant: pages whose
    /// redundancy is at least `threshold` (`p₀ ∈ [0, 1]`).
    ///
    /// This is the hint WATCHMAN sends to the buffer manager after caching a
    /// retrieved set.  With `threshold = 0` every tracked page qualifies
    /// (degenerating the buffer's LRU into MRU, as the paper's Figure 7
    /// shows); with `threshold = 1` only pages used exclusively by cached
    /// queries qualify.
    pub fn redundant_pages<F>(&self, pages: &[PageId], threshold: f64, is_cached: F) -> Vec<PageId>
    where
        F: Fn(Signature) -> bool,
    {
        let threshold = threshold.clamp(0.0, 1.0);
        pages
            .iter()
            .copied()
            .filter(|&page| {
                self.per_page.contains_key(&page) && self.redundancy(page, &is_cached) >= threshold
            })
            .collect()
    }

    /// Forgets all reference sets.
    pub fn clear(&mut self) {
        self.per_page.clear();
    }
}

/// A [`CacheObserver`] that turns the engine's event stream into p₀ buffer
/// hints (paper §3).
///
/// The observer mirrors the cache's contents as a set of query signatures:
/// admissions add, evictions and invalidations remove.  When a retrieved set
/// is admitted, it resolves the query's page accesses with `resolver`,
/// computes which of those pages are p₀-redundant against the mirrored
/// signature set, and demotes them in the shared [`BufferPool`] — exactly the
/// hint WATCHMAN sends the buffer manager after caching a set, now driven
/// automatically by the engine instead of hand-wired in the simulation loop.
///
/// Query page references still need to be recorded as queries execute; call
/// [`RedundancyHintObserver::record_access`] from the execution path (misses
/// only, since hits perform no page I/O).
pub struct RedundancyHintObserver<F> {
    pool: Arc<Mutex<BufferPool>>,
    threshold: f64,
    resolver: F,
    state: Mutex<HintState>,
}

#[derive(Debug, Default)]
struct HintState {
    tracker: QueryReferenceTracker,
    cached: HashSet<Signature>,
}

impl<F> RedundancyHintObserver<F>
where
    F: Fn(&QueryKey) -> Vec<PageId> + Send + Sync,
{
    /// Creates an observer demoting pages whose redundancy reaches
    /// `threshold` (`p₀ ∈ [0, 1]`), resolving each admitted query's page
    /// accesses with `resolver`.
    pub fn new(pool: Arc<Mutex<BufferPool>>, threshold: f64, resolver: F) -> Self {
        RedundancyHintObserver {
            pool,
            threshold: threshold.clamp(0.0, 1.0),
            resolver,
            state: Mutex::new(HintState::default()),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, HintState> {
        self.state.lock()
    }

    /// Records that `query` read every page in `pages` (call on every cache
    /// miss that executes against the warehouse).
    pub fn record_access(&self, pages: &[PageId], query: Signature) {
        self.lock_state().tracker.record_all(pages, query);
    }

    /// The shared buffer pool this observer demotes pages in.
    pub fn pool(&self) -> &Arc<Mutex<BufferPool>> {
        &self.pool
    }

    /// The number of query signatures currently mirrored as cached.
    pub fn cached_queries(&self) -> usize {
        self.lock_state().cached.len()
    }
}

impl<F> CacheObserver for RedundancyHintObserver<F>
where
    F: Fn(&QueryKey) -> Vec<PageId> + Send + Sync,
{
    fn on_cache_event(&self, event: &CacheEvent) {
        match event {
            CacheEvent::Admitted { key, .. } => {
                let pages = (self.resolver)(key);
                let hint = {
                    let mut state = self.lock_state();
                    state.cached.insert(key.signature());
                    let cached = &state.cached;
                    state
                        .tracker
                        .redundant_pages(&pages, self.threshold, |sig| cached.contains(&sig))
                };
                if !hint.is_empty() {
                    self.pool.lock().demote(&hint);
                }
            }
            CacheEvent::Evicted { key, .. } | CacheEvent::Invalidated { key, .. } => {
                self.lock_state().cached.remove(&key.signature());
            }
            CacheEvent::Rejected { .. } => {}
        }
    }
}

impl<F> std::fmt::Debug for RedundancyHintObserver<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RedundancyHintObserver")
            .field("threshold", &self.threshold)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watchman_warehouse::RelationId;

    fn page(p: u32) -> PageId {
        PageId::new(RelationId(0), p)
    }

    fn sig(n: u64) -> Signature {
        Signature(n)
    }

    #[test]
    fn records_and_reports_reference_sets() {
        let mut tracker = QueryReferenceTracker::new();
        tracker.record(page(1), sig(10));
        tracker.record(page(1), sig(20));
        tracker.record(page(2), sig(10));
        assert_eq!(tracker.reference_set(page(1)).unwrap().len(), 2);
        assert_eq!(tracker.reference_set(page(2)).unwrap().len(), 1);
        assert!(tracker.reference_set(page(3)).is_none());
        assert_eq!(tracker.tracked_pages(), 2);
    }

    #[test]
    fn duplicate_references_are_not_double_counted() {
        let mut tracker = QueryReferenceTracker::new();
        tracker.record(page(1), sig(10));
        tracker.record(page(1), sig(10));
        assert_eq!(tracker.reference_set(page(1)).unwrap().len(), 1);
    }

    #[test]
    fn redundancy_is_the_cached_fraction() {
        let mut tracker = QueryReferenceTracker::new();
        tracker.record_all(&[page(1)], sig(1));
        tracker.record_all(&[page(1)], sig(2));
        tracker.record_all(&[page(1)], sig(3));
        tracker.record_all(&[page(1)], sig(4));
        // 2 of the 4 referencing queries are cached → 50 % redundant.
        let cached: HashSet<Signature> = [sig(1), sig(2)].into_iter().collect();
        let redundancy = tracker.redundancy(page(1), |s| cached.contains(&s));
        assert!((redundancy - 0.5).abs() < 1e-12);
        assert_eq!(tracker.redundancy(page(9), |_| true), 0.0);
    }

    #[test]
    fn redundant_pages_filters_by_threshold() {
        let mut tracker = QueryReferenceTracker::new();
        // Page 1: only query 1 (cached) → 100 % redundant.
        tracker.record(page(1), sig(1));
        // Page 2: queries 1 (cached) and 2 (not cached) → 50 %.
        tracker.record(page(2), sig(1));
        tracker.record(page(2), sig(2));
        // Page 3: only query 2 → 0 %.
        tracker.record(page(3), sig(2));
        let cached: HashSet<Signature> = [sig(1)].into_iter().collect();
        let is_cached = |s: Signature| cached.contains(&s);
        let pages = [page(1), page(2), page(3), page(4)];
        assert_eq!(
            tracker.redundant_pages(&pages, 1.0, is_cached),
            vec![page(1)]
        );
        assert_eq!(
            tracker.redundant_pages(&pages, 0.6, is_cached),
            vec![page(1)]
        );
        assert_eq!(
            tracker.redundant_pages(&pages, 0.5, is_cached),
            vec![page(1), page(2)]
        );
        // Threshold 0: every *tracked* page qualifies (page 4 was never seen).
        assert_eq!(
            tracker.redundant_pages(&pages, 0.0, is_cached),
            vec![page(1), page(2), page(3)]
        );
    }

    #[test]
    fn per_page_bound_limits_set_growth() {
        let mut tracker = QueryReferenceTracker::with_bound(2);
        for q in 0..10 {
            tracker.record(page(1), sig(q));
        }
        assert_eq!(tracker.reference_set(page(1)).unwrap().len(), 2);
    }

    #[test]
    fn clear_forgets_everything() {
        let mut tracker = QueryReferenceTracker::new();
        tracker.record(page(1), sig(1));
        tracker.clear();
        assert_eq!(tracker.tracked_pages(), 0);
    }

    #[test]
    fn observer_demotes_redundant_pages_on_admission() {
        use watchman_core::clock::Timestamp;
        use watchman_core::engine::{PolicyKind, Watchman};
        use watchman_core::value::{ExecutionCost, SizedPayload};

        let pool = Arc::new(Mutex::new(BufferPool::new(8)));
        // Every query touches pages 1 and 2.
        let pages = vec![page(1), page(2)];
        let observer = {
            let pages = pages.clone();
            Arc::new(RedundancyHintObserver::new(
                Arc::clone(&pool),
                0.6,
                move |_key: &QueryKey| pages.clone(),
            ))
        };
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .policy(PolicyKind::Lru)
            .capacity_bytes(1_000)
            .observer(observer.clone())
            .build();

        // The query executes: its pages enter the pool and the tracker.
        let key = QueryKey::new("q1");
        {
            let mut pool = pool.lock();
            for &p in &pages {
                pool.access(p);
            }
        }
        observer.record_access(&pages, key.signature());

        // Admission: both pages are used only by the now-cached query, so
        // both are p0-redundant and get demoted.
        engine.insert(
            key.clone(),
            SizedPayload::new(100),
            ExecutionCost::from_blocks(50),
            Timestamp::from_secs(1),
        );
        assert_eq!(observer.cached_queries(), 1);
        assert_eq!(pool.lock().stats().demotions, 2);

        // Invalidation clears the mirrored signature.
        assert!(engine.invalidate(&key));
        assert_eq!(observer.cached_queries(), 0);
    }
}
