//! Lock-order graph assertion over the full wire stack.
//!
//! Compiled only under `--features lock-graph`: drives a real loopback
//! server — accept loop, session threads, engine shards, single-flight
//! coalescing, manual rebalancing — then asserts the global lock-order
//! graph is acyclic and rank-disciplined.  This is the networked
//! counterpart of `crates/core/tests/lock_graph.rs`: the server adds its
//! own lock classes (session registry, shutdown plumbing) on top of the
//! engine's, and a cycle between the two layers would only ever show up
//! here.

#![cfg(feature = "lock-graph")]

use std::sync::{Arc, Barrier};

use watchman_core::engine::{PolicyKind, RebalanceConfig};
use watchman_core::sync::lock_graph;
use watchman_server::{serve, Client, GetRequest, ServerConfig};

#[test]
fn wire_stack_keeps_the_lock_graph_acyclic() {
    const CLIENTS: usize = 6;
    const OPS: usize = 60;

    let server = serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: 4,
        policy: PolicyKind::LNC_RA,
        capacity_bytes: 4 << 20,
        runtime_workers: 4,
        rebalance: Some(
            RebalanceConfig::new()
                .with_period(std::time::Duration::from_millis(2))
                .with_min_shard_fraction(0.25)
                .with_step_fraction(0.2),
        ),
        ..ServerConfig::default()
    })
    .expect("server binds on loopback");
    let addr = server.addr().to_string();
    let barrier = Arc::new(Barrier::new(CLIENTS));

    std::thread::scope(|scope| {
        for client_index in 0..CLIENTS {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                barrier.wait();
                for i in 0..OPS {
                    // Overlapping hot keys (cross-connection coalescing)
                    // plus a per-client tail (admissions and evictions).
                    let key = if i % 3 == 0 {
                        format!("SELECT tail FROM c{client_index} WHERE i = {i}")
                    } else {
                        format!("SELECT hot FROM shared WHERE g = {}", i % 7)
                    };
                    let response = client
                        .get(GetRequest {
                            key,
                            timestamp_us: (i as u64 + 1) * 500,
                            result_bytes: 40_000,
                            cost_blocks: 200,
                            fetch_delay_us: if i % 9 == 0 { 800 } else { 0 },
                            deadline_hint_us: 0,
                            payload_prefix_cap: 8,
                        })
                        .expect("wire get");
                    assert_eq!(response.full_len, 40_000);
                }
            });
        }
    });
    drop(server); // joins the accept loop and session threads

    let report = lock_graph::report();
    assert!(
        !report.edges.is_empty(),
        "no lock-order edges recorded — is the instrumentation compiled in?"
    );
    lock_graph::assert_clean();
}
