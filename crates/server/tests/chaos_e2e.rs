//! Chaos end-to-end: the failure-domain acceptance proofs over real
//! sockets.
//!
//! * the **canonical fault-plan storm**: 8 clients hammer a server whose
//!   fetches fail on schedule and whose connections are reset and stalled
//!   mid-stream — every client-observed outcome must be explained by the
//!   plan (zero unexplained errors) and the degradation machinery must
//!   actually engage;
//! * the **doomed-key walk**: the deterministic stale-serving life cycle
//!   (warm-up, eviction, terminal refetch failure, negative-cache hit)
//!   observed step by step through one connection;
//! * the **empty-plan replay**: installing a no-op fault plan routes every
//!   GET through the fallible pipeline, and the result is byte-identical
//!   to the in-process infallible replay of the same TPC-D trace — the
//!   failure domain adds zero replay-visible semantics;
//! * **overload shedding**: a saturated admission gate answers `BUSY` with
//!   a retry-after hint instead of queueing without bound;
//! * the **slow loris**: a connection that commits to a frame and stops
//!   feeding it is evicted by the read deadline while healthy sessions
//!   proceed.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use watchman_core::engine::{
    BreakerConfig, FailureConfig, NegativeCacheConfig, PolicyKind, RebalanceConfig, RetryPolicy,
    StalenessPolicy, Watchman,
};
use watchman_core::key::QueryKey;
use watchman_core::value::SizedPayload;
use watchman_server::wire;
use watchman_server::{
    replay_trace_wire, run_chaos_load, serve, ChaosOptions, Client, ClientError, FaultPlan,
    GetRequest, ServerConfig, ServerHandle, WireSource,
};
use watchman_sim::{replay_trace_engine_async, ExperimentScale, Workload};

/// A server wired for degradation: stale serving and the breaker enabled, a
/// small admission gate, a read deadline, and (optionally) a fault plan.
fn degradation_server(
    capacity_bytes: u64,
    shards: usize,
    max_inflight: usize,
    plan: Option<Arc<FaultPlan>>,
) -> ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards,
        capacity_bytes,
        failure: FailureConfig {
            retry: RetryPolicy::default(),
            breaker: Some(BreakerConfig::default()),
            staleness: Some(StalenessPolicy {
                max_entries: 1_024,
                min_cost_per_byte: 0.0,
                max_age_us: None,
            }),
            negative: NegativeCacheConfig::default(),
        },
        max_inflight,
        read_deadline: Some(Duration::from_millis(250)),
        fault_plan: plan,
        ..ServerConfig::default()
    })
    .expect("server binds on loopback")
}

#[test]
fn canonical_chaos_storm_explains_every_error() {
    let plan = Arc::new(FaultPlan::canonical(0xC4A0_5EED));
    let options = ChaosOptions {
        rounds: 120,
        ..ChaosOptions::default()
    };
    // Capacity far below the keyspace footprint: doomed keys must be
    // evicted so their refetches fail and stale serving engages.
    let capacity = options.keyspace as u64 * options.result_bytes / 4;
    let server = degradation_server(capacity, 4, 2, Some(Arc::clone(&plan)));
    let addr = server.addr().to_string();

    let report = run_chaos_load(&addr, &options).expect("chaos storm");
    server.join();

    // The hard gate: the fault plan explains every error the clients saw.
    assert_eq!(report.unexplained, 0, "unexplained client errors");
    assert_eq!(report.requests, (options.clients * options.rounds) as u64);
    assert_eq!(
        report.ok() + report.fetch_errors + report.busy + report.reconnects + report.unexplained,
        report.requests,
        "every request lands in exactly one client-side bucket"
    );

    // The plan really fired, on both seams.
    assert!(
        plan.injected_fetch_errors() > 0,
        "the plan injected no fetch failures"
    );
    let mut resets = plan.triggered_resets();
    resets.sort_unstable();
    assert_eq!(
        resets,
        vec![2, 5],
        "connections 2 and 5 never accumulated three reads"
    );

    // The degradation machinery engaged rather than surfacing raw errors.
    let snapshot = &report.snapshot;
    assert!(snapshot.total.stale_serves > 0, "no stale serves");
    assert!(snapshot.sheds > 0, "the admission gate never shed");
    assert!(snapshot.fetch_retries > 0, "flaky keys were never retried");

    // Every usable response the clients saw corresponds to an engine
    // reference (sheds are refused before the engine; lost requests may
    // replay, so the engine can see a handful more).
    assert!(
        snapshot.total.references >= report.ok() + report.fetch_errors,
        "engine references ({}) below client-visible outcomes ({})",
        snapshot.total.references,
        report.ok() + report.fetch_errors
    );
}

/// Finds a key of the wanted class under `plan`'s seed by probing a
/// scratch copy: invocation 0 faults only for flaky keys, invocation 1
/// faults only for doomed keys.
fn find_key(scratch: &FaultPlan, doomed: bool, salt: &mut u64) -> String {
    loop {
        *salt += 1;
        let key = format!("SELECT payload FROM probe WHERE k = {salt}");
        // The same normalization the server applies to wire keys.
        let signature = QueryKey::from_raw_query(&key).signature().value();
        let first = scratch.fetch_fault(signature).is_some();
        let second = scratch.fetch_fault(signature).is_some();
        if doomed && !first && second {
            return key;
        }
        if !doomed && !first && !second {
            return key;
        }
    }
}

#[test]
fn doomed_key_walk_warms_evicts_then_serves_stale() {
    const SEED: u64 = 0xD00D;
    let scratch = FaultPlan::canonical(SEED);
    let mut salt = 0;
    let doomed = find_key(&scratch, true, &mut salt);
    // One shard, room for two retrieved sets: the doomed set plus a little.
    let server = degradation_server(64 << 10, 1, 0, Some(Arc::new(FaultPlan::canonical(SEED))));
    let mut client = Client::connect(server.addr().to_string()).expect("client connects");

    // Warm-up: the doomed key's first fetch succeeds, seeding the cache
    // and the stale store.
    let request = |key: &str, ts: u64| GetRequest {
        key: key.to_owned(),
        timestamp_us: ts,
        result_bytes: 32 << 10,
        cost_blocks: 100,
        fetch_delay_us: 0,
        deadline_hint_us: 0,
        payload_prefix_cap: 0,
    };
    let warm = client.get(request(&doomed, 1_000)).expect("warm-up get");
    assert_eq!(warm.source, WireSource::Executed);
    assert_eq!(
        client.get(request(&doomed, 2_000)).expect("hit").source,
        WireSource::Hit
    );

    // Eviction pressure: a handful of healthy high-profit sets, referenced
    // round after round so their arrival-rate estimates grow, push the
    // cheap doomed set out of the 64 KiB shard (its stale copy survives
    // the eviction).
    let fillers: Vec<String> = (0..4)
        .map(|_| find_key(&scratch, false, &mut salt))
        .collect();
    let mut evicted = false;
    'rounds: for round in 0..12u64 {
        for (index, key) in fillers.iter().enumerate() {
            let ts = 10_000 + round * 2_000 + index as u64 * 100;
            let response = client
                .get(GetRequest {
                    cost_blocks: 1_000_000,
                    result_bytes: 24 << 10,
                    ..request(key, ts)
                })
                .expect("filler get");
            assert_ne!(
                response.source,
                WireSource::Stale,
                "healthy keys never degrade"
            );
            if client.peek(&doomed).expect("peek").is_none() {
                evicted = true;
                break 'rounds;
            }
        }
    }
    assert!(evicted, "the doomed set was never evicted");

    // The refetch fails terminally — and the client gets the last known
    // good value, marked stale, instead of an error.
    let stale = client.get(request(&doomed, 100_000)).expect("stale serve");
    assert_eq!(stale.source, WireSource::Stale);
    assert_eq!(stale.full_len, 32 << 10, "the warm-up value, not a stub");

    // An immediate retry lands in the negative cache (50 ms TTL): same
    // stale answer, no second fetch invocation.
    let negative = client
        .get(request(&doomed, 110_000))
        .expect("negative-cache stale serve");
    assert_eq!(negative.source, WireSource::Stale);

    let snapshot = client.stats().expect("stats");
    assert_eq!(snapshot.total.stale_serves, 2);
    assert_eq!(
        snapshot.negative_hits, 1,
        "the retry never reached the fetch"
    );
    assert_eq!(
        snapshot.total.fetch_errors, 0,
        "stale serving absorbed the failure"
    );
    server.join();
}

#[test]
fn empty_plan_tpcd_replay_is_byte_identical_to_in_process() {
    // The same deterministic TPC-D trace twice: in process through the
    // infallible async front door, and over the wire through a server with
    // a *no-op fault plan* installed — which routes every GET through the
    // fallible pipeline.  Identical snapshots prove the failure domain is
    // invisible when nothing fails.
    let workload = Workload::tpcd(ExperimentScale::quick(1_500));
    let trace = &workload.trace;
    let cache_fraction = 0.01;
    let capacity = (trace.database_bytes as f64 * cache_fraction).round() as u64;
    let rebalance = RebalanceConfig::new().manual();

    let in_process: Watchman<SizedPayload> = Watchman::builder()
        .shards(4)
        .policy(PolicyKind::LNC_RA)
        .capacity_bytes(capacity)
        .rebalance(rebalance.clone())
        .build();
    replay_trace_engine_async(trace, &in_process, cache_fraction);
    let expected = in_process.stats_snapshot();

    let server = serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: 4,
        policy: PolicyKind::LNC_RA,
        capacity_bytes: capacity,
        runtime_workers: 2,
        rebalance: Some(rebalance),
        fault_plan: Some(Arc::new(FaultPlan::empty(0))),
        ..ServerConfig::default()
    })
    .expect("server binds");
    let mut client = Client::connect(server.addr().to_string()).expect("client connects");
    let over_wire = replay_trace_wire(&mut client, trace).expect("wire replay");
    server.join();

    assert_eq!(
        expected, over_wire,
        "the no-op fault plan must add zero replay-visible semantics"
    );
    assert_eq!(
        serde_json::to_string(&expected).expect("snapshot serializes"),
        serde_json::to_string(&over_wire).expect("snapshot serializes"),
        "and the JSON projections match byte for byte"
    );
}

#[test]
fn saturated_admission_gate_sheds_with_a_retry_after_hint() {
    // max_inflight = 1: while one long execution holds the only permit,
    // the next request must be shed with BUSY, not queued.
    let server = degradation_server(8 << 20, 1, 1, None);
    let addr = server.addr().to_string();
    let barrier = Arc::new(Barrier::new(2));

    let slow = {
        let addr = addr.clone();
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("slow client connects");
            barrier.wait();
            client
                .get(GetRequest {
                    key: "SELECT slow FROM lineitem".to_owned(),
                    timestamp_us: 1_000,
                    result_bytes: 1_024,
                    cost_blocks: 1_000,
                    fetch_delay_us: 100_000, // holds the permit for 100 ms
                    deadline_hint_us: 0,
                    payload_prefix_cap: 0,
                })
                .expect("slow get completes")
        })
    };

    let mut shed = Client::connect(addr.clone()).expect("shed client connects");
    shed.set_retry_policy(RetryPolicy::none());
    barrier.wait();
    // Give the slow request a head start so its flight owns the permit.
    std::thread::sleep(Duration::from_millis(20));
    match shed.get(GetRequest::metrics_only(
        "SELECT shed FROM orders",
        2_000,
        128,
        10,
    )) {
        Err(ClientError::Busy { retry_after_us }) => {
            assert!(retry_after_us > 0, "BUSY must carry a retry-after hint");
        }
        other => panic!("expected BUSY, got {other:?}"),
    }

    assert_eq!(
        slow.join().expect("slow thread").source,
        WireSource::Executed
    );
    // With the permit back, the same client (and key) now succeeds — and a
    // policy-driven client would have gotten here by honoring the hint.
    let served = shed
        .get(GetRequest::metrics_only(
            "SELECT shed FROM orders",
            3_000,
            128,
            10,
        ))
        .expect("get after the permit freed");
    assert_eq!(served.source, WireSource::Executed);

    let mut admin = Client::connect(addr).expect("admin connects");
    let snapshot = admin.stats().expect("stats");
    assert!(snapshot.sheds >= 1, "the shed was not counted");
    server.join();
}

#[test]
fn slow_loris_is_evicted_while_healthy_sessions_proceed() {
    let server = serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        capacity_bytes: 1 << 20,
        read_deadline: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    })
    .expect("server binds");
    let addr = server.addr();

    let mut healthy = Client::connect(addr.to_string()).expect("healthy client");
    healthy
        .get(GetRequest::metrics_only("SELECT a FROM t", 1_000, 128, 100))
        .expect("healthy get");

    // The loris: a valid handshake, then a frame header promising 64 bytes
    // followed by silence.  Mid-frame silence trips the read deadline.
    let mut loris = TcpStream::connect(addr).expect("loris connects");
    wire::write_frame(&mut loris, &wire::encode_hello()).unwrap();
    let hello = wire::read_frame(&mut loris).unwrap().expect("server hello");
    assert_eq!(wire::decode_hello(&hello).unwrap(), wire::VERSION);
    loris.write_all(&64u32.to_le_bytes()).unwrap();
    loris.write_all(&[1, 2, 3]).unwrap();
    loris.flush().unwrap();

    // The server must close the connection on its own — well before this
    // generous client-side timeout.
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 16];
    assert_eq!(
        loris.read(&mut buf).unwrap_or(0),
        0,
        "the loris connection must be closed by the read deadline"
    );

    // Sessions that keep their frames flowing are unaffected.
    let response = healthy
        .get(GetRequest::metrics_only("SELECT a FROM t", 2_000, 128, 100))
        .expect("healthy get after the eviction");
    assert_eq!(response.source, WireSource::Hit);
    server.join();
}
