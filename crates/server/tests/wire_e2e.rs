//! End-to-end tests of the networked front end over loopback.
//!
//! The acceptance proofs of the server subsystem live here:
//!
//! * a multi-client **storm** showing cross-connection miss coalescing with
//!   exactly-once execution per missed key;
//! * the **wire-backed deterministic replay** whose final `StatsSnapshot`
//!   is byte-identical to the in-process async replay of the same trace;
//! * **failure isolation**: malformed and truncated frames fail their own
//!   connection only, and internal errors surface as error responses.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use watchman_core::engine::{PolicyKind, RebalanceConfig, Watchman};
use watchman_core::telemetry::{MetricsSnapshot, METRICS_SCHEMA_VERSION};
use watchman_core::value::SizedPayload;
use watchman_server::wire::{self, Request, Response};
use watchman_server::{
    replay_trace_wire, serve, Client, ClientError, GetRequest, ServerConfig, WireSource,
};
use watchman_sim::{replay_trace_engine_async, ExperimentScale, Workload};

fn test_server(capacity_bytes: u64, shards: usize) -> watchman_server::ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards,
        policy: PolicyKind::LNC_RA,
        capacity_bytes,
        runtime_workers: 4,
        rebalance: None,
        ..ServerConfig::default()
    })
    .expect("server binds on loopback")
}

#[test]
fn storm_executes_each_missed_key_exactly_once_across_connections() {
    const CLIENTS: usize = 8;
    const KEYS: usize = 12;
    let server = test_server(64 << 20, 4);
    let addr = server.addr().to_string();
    let barrier = Arc::new(Barrier::new(CLIENTS));

    let mut per_client: Vec<Vec<WireSource>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..CLIENTS {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                // All clients sweep the same keys in the same order, with a
                // multi-millisecond simulated execution: concurrent misses
                // on one key must coalesce across connections.
                barrier.wait();
                let mut sources = Vec::with_capacity(KEYS);
                for key_index in 0..KEYS {
                    let response = client
                        .get(GetRequest {
                            key: format!("SELECT storm FROM relation{key_index}"),
                            timestamp_us: (key_index as u64 + 1) * 1_000,
                            result_bytes: 2_048,
                            cost_blocks: 900,
                            fetch_delay_us: 3_000,
                            deadline_hint_us: 0,
                            payload_prefix_cap: 16,
                        })
                        .expect("storm get");
                    assert_eq!(response.full_len, 2_048);
                    assert_eq!(response.prefix.len(), 16, "prefix cap honored");
                    sources.push(response.source);
                }
                sources
            }));
        }
        for handle in handles {
            per_client.push(handle.join().expect("storm client"));
        }
    });

    let executed: usize = per_client
        .iter()
        .flatten()
        .filter(|source| **source == WireSource::Executed)
        .count();
    assert_eq!(
        executed, KEYS,
        "leader count must equal the distinct missed keys (exactly-once fetch)"
    );

    let snapshot = server.engine().stats_snapshot();
    assert_eq!(snapshot.total.references, (CLIENTS * KEYS) as u64);
    assert_eq!(snapshot.total.misses(), KEYS as u64);
    assert_eq!(
        snapshot.total.references,
        snapshot.total.hits + snapshot.total.coalesced + snapshot.total.misses(),
        "references partition into hits, coalesced waits and misses"
    );
    let coalesced: usize = per_client
        .iter()
        .flatten()
        .filter(|source| **source == WireSource::Coalesced)
        .count();
    assert_eq!(coalesced as u64, snapshot.total.coalesced);
    assert_eq!(snapshot.coalesced_misses, snapshot.total.coalesced);
    // The barrier releases every client onto the same key at once while the
    // leader's simulated scan takes milliseconds: misses MUST have coalesced
    // across connections (this is the cross-connection single-flight proof).
    assert!(
        snapshot.total.coalesced > 0,
        "no cross-connection coalescing observed"
    );
    server.join();
}

#[test]
fn metrics_exposition_and_trace_dump_move_under_traffic() {
    const KEYS: u64 = 16;
    let server = test_server(64 << 20, 4);
    let addr = server.addr().to_string();
    let mut admin = Client::connect(addr.clone()).expect("admin connects");
    let before = admin.metrics().expect("METRICS before traffic");
    assert_eq!(before.schema, METRICS_SCHEMA_VERSION);

    // Two sweeps over the same keys: the first executes every key, the
    // second is all served hits.  The registry is process-global and other
    // tests in this binary record into it concurrently, so every assertion
    // below is a monotonic delta (>=), never an exact count.
    let mut client = Client::connect(addr).expect("client connects");
    for round in 0..2u64 {
        for key_index in 0..KEYS {
            client
                .get(GetRequest::metrics_only(
                    format!("SELECT telemetry FROM relation{key_index}"),
                    round * KEYS + key_index + 1,
                    1_024,
                    700,
                ))
                .expect("traffic get");
        }
    }

    let after = admin.metrics().expect("METRICS after traffic");
    let lookups = |snapshot: &MetricsSnapshot, name: &str| {
        snapshot
            .histogram(name)
            .map_or(0, |histogram| histogram.count)
    };
    assert!(
        lookups(&after, "engine.lookup.executed_us")
            >= lookups(&before, "engine.lookup.executed_us") + KEYS,
        "first sweep must have recorded {KEYS} executed-lookup latencies"
    );
    assert!(
        lookups(&after, "engine.lookup.hit_us") >= lookups(&before, "engine.lookup.hit_us") + KEYS,
        "second sweep must have recorded {KEYS} hit latencies"
    );
    // The server layer fills these in at exposition time: both connections
    // of this test are open sessions, and the poll histogram moved because
    // serving the sweeps polled session tasks.
    assert!(after.gauge("server.sessions") >= 2);
    assert!(after.gauge("runtime.workers") > 0);
    assert!(
        lookups(&after, "runtime.task.poll_us") > lookups(&before, "runtime.task.poll_us"),
        "serving traffic must record task polls"
    );
    // Occupancy gauges refresh under the shard locks during the scrape; the
    // executed sweep inserted ~16 KiB, so some shard must show bytes.
    assert!(after.gauge("engine.shard_count") == 4);
    assert!(
        (0..4).any(|shard| after.gauge(&format!("engine.shard.{shard:02}.used_bytes")) > 0),
        "at least one shard gauge must show occupancy after the inserts"
    );
    // The paper's tertiary metric rides the same exposition.  At 64 MiB
    // capacity this test's ~32 KiB of inserts round to 0 permille, so the
    // nonzero proof lives in the chaos scorecard gate; here we pin that the
    // gauge is exported at all.
    assert!(
        after
            .gauges
            .contains_key("engine.fragmentation.used_permille"),
        "fragmentation gauge missing from the exposition"
    );

    let dump = admin.trace_dump().expect("TRACE_DUMP");
    assert_eq!(dump.schema, METRICS_SCHEMA_VERSION);
    assert!(dump.recorded > 0, "the flight recorder must be always-on");
    assert!(!dump.events.is_empty());
    assert!(
        dump.events
            .iter()
            .any(|event| event.kind == "session_open" || event.kind == "lookup_executed"),
        "the ring must hold session/lookup events from this test's traffic"
    );
    // Events are dumped oldest-first with strictly increasing sequence.
    assert!(
        dump.events.windows(2).all(|pair| pair[0].seq < pair[1].seq),
        "trace events must come out in sequence order"
    );
    server.join();
}

#[test]
fn wire_replay_is_byte_identical_to_in_process_async_replay() {
    // The same deterministic TPC-D trace, the same engine configuration:
    // one replayed in process through the async front door, one replayed
    // over loopback through the wire protocol.  The final snapshots must
    // match byte for byte — the wire adds no replay-visible semantics.
    let workload = Workload::tpcd(ExperimentScale::quick(1_500));
    let trace = &workload.trace;
    let cache_fraction = 0.01;
    let capacity = (trace.database_bytes as f64 * cache_fraction).round() as u64;
    let rebalance = RebalanceConfig::new().manual();

    let in_process: Watchman<SizedPayload> = Watchman::builder()
        .shards(4)
        .policy(PolicyKind::LNC_RA)
        .capacity_bytes(capacity)
        .rebalance(rebalance.clone())
        .build();
    replay_trace_engine_async(trace, &in_process, cache_fraction);
    let expected = in_process.stats_snapshot();

    let server = serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: 4,
        policy: PolicyKind::LNC_RA,
        capacity_bytes: capacity,
        runtime_workers: 2,
        rebalance: Some(rebalance),
        ..ServerConfig::default()
    })
    .expect("server binds");
    let mut client = Client::connect(server.addr().to_string()).expect("client connects");
    let over_wire = replay_trace_wire(&mut client, trace).expect("wire replay");

    assert_eq!(
        expected, over_wire,
        "wire replay snapshot must be byte-identical to the in-process replay"
    );
    assert!(expected.rebalances > 0, "the replay exercised rebalancing");
    server.join();
}

#[test]
fn malformed_frames_fail_their_connection_only() {
    let server = test_server(1 << 20, 2);
    let addr = server.addr();

    // A healthy client before, throughout and after the vandalism.
    let mut healthy = Client::connect(addr.to_string()).expect("healthy client");
    healthy
        .get(GetRequest::metrics_only("SELECT a FROM t", 1_000, 128, 100))
        .expect("healthy get");

    // Vandal 1: oversized length prefix after a valid handshake.
    {
        let mut vandal = TcpStream::connect(addr).expect("vandal connects");
        wire::write_frame(&mut vandal, &wire::encode_hello()).unwrap();
        let hello = wire::read_frame(&mut vandal)
            .unwrap()
            .expect("server hello");
        assert_eq!(wire::decode_hello(&hello).unwrap(), wire::VERSION);
        vandal.write_all(&[0xFF, 0xFF, 0xFF, 0xFF]).unwrap();
        vandal.flush().unwrap();
        // The server must close this connection.
        let mut buf = [0u8; 16];
        vandal
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(vandal.read(&mut buf).unwrap_or(0), 0, "connection closed");
    }

    // Vandal 2: a truncated frame (declares 64 bytes, sends 3, hangs up).
    {
        let mut vandal = TcpStream::connect(addr).expect("vandal connects");
        wire::write_frame(&mut vandal, &wire::encode_hello()).unwrap();
        let _ = wire::read_frame(&mut vandal).unwrap();
        vandal.write_all(&64u32.to_le_bytes()).unwrap();
        vandal.write_all(&[1, 2, 3]).unwrap();
        vandal.flush().unwrap();
        drop(vandal);
    }

    // Vandal 3: garbage instead of a handshake.
    {
        let mut vandal = TcpStream::connect(addr).expect("vandal connects");
        vandal.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        vandal.flush().unwrap();
        drop(vandal);
    }

    // The healthy connection (and new ones) must be unaffected.
    let response = healthy
        .get(GetRequest::metrics_only("SELECT a FROM t", 2_000, 128, 100))
        .expect("healthy get after vandalism");
    assert_eq!(response.source, WireSource::Hit);
    let mut fresh = Client::connect(addr.to_string()).expect("fresh client");
    assert!(fresh.stats().expect("stats").total.references >= 2);
    server.join();
}

#[test]
fn unknown_opcode_gets_an_error_response_and_the_connection_survives() {
    let server = test_server(1 << 20, 1);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    wire::write_frame(&mut stream, &wire::encode_hello()).unwrap();
    let _ = wire::read_frame(&mut stream)
        .unwrap()
        .expect("server hello");

    // A well-formed frame with an opcode from the future.
    let mut body = Vec::new();
    body.extend_from_slice(&7u64.to_le_bytes());
    body.push(250);
    wire::write_frame(&mut stream, &body).unwrap();
    stream.flush().unwrap();
    let reply = wire::read_frame(&mut stream).unwrap().expect("error reply");
    let (id, response) = wire::decode_response(&reply).expect("decodes");
    assert_eq!(id, 7);
    assert!(
        matches!(response, Response::Error { ref message } if message.contains("unknown opcode")),
        "got {response:?}"
    );

    // Same connection still serves real requests.
    wire::write_frame(&mut stream, &wire::encode_request(8, &Request::Stats)).unwrap();
    stream.flush().unwrap();
    let reply = wire::read_frame(&mut stream).unwrap().expect("stats reply");
    let (id, response) = wire::decode_response(&reply).expect("decodes");
    assert_eq!(id, 8);
    assert!(matches!(response, Response::Stats(_)));
    server.join();
}

#[test]
fn version_mismatch_is_answered_with_the_server_hello_then_closed() {
    let server = test_server(1 << 20, 1);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut hello = wire::encode_hello();
    // Claim a protocol version from the future.
    hello[4] = 0xEE;
    hello[5] = 0xEE;
    wire::write_frame(&mut stream, &hello).unwrap();
    stream.flush().unwrap();
    let reply = wire::read_frame(&mut stream)
        .unwrap()
        .expect("server hello");
    assert_eq!(
        wire::decode_hello(&reply).unwrap(),
        wire::VERSION,
        "the server advertises the version it speaks"
    );
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 8];
    assert_eq!(stream.read(&mut buf).unwrap_or(0), 0, "then closes");
    server.join();
}

#[test]
fn get_many_batches_into_one_write_and_matches_ids_in_request_order() {
    // The client encodes a pipelined batch into one contiguous buffer and
    // sends it with a single write; the server's buffered reader drains the
    // whole burst from as few recvs.  Distinguishable responses prove the
    // request-id bookkeeping: response k must answer request k (the client
    // itself errors on any id mismatch, so a success here is the proof).
    const BATCH: usize = 64;
    let server = test_server(64 << 20, 2);
    let mut client = Client::connect(server.addr().to_string()).expect("client");
    let requests: Vec<GetRequest> = (0..BATCH)
        .map(|k| {
            GetRequest::metrics_only(
                format!("SELECT batch{k} FROM t"),
                (k as u64 + 1) * 1_000,
                // Unique size per key: the response for request k is
                // identifiable by its full_len.
                100 + k as u64,
                10,
            )
        })
        .collect();
    let responses = client.get_many(requests).expect("pipelined batch");
    assert_eq!(responses.len(), BATCH);
    for (k, response) in responses.iter().enumerate() {
        assert_eq!(
            response.full_len,
            100 + k as u64,
            "response {k} answers a different request"
        );
        assert_eq!(response.source, WireSource::Executed);
    }
    // A second sweep is all hits, still in order.
    let again: Vec<GetRequest> = (0..BATCH)
        .map(|k| {
            GetRequest::metrics_only(
                format!("SELECT batch{k} FROM t"),
                (BATCH + k) as u64 * 1_000,
                100 + k as u64,
                10,
            )
        })
        .collect();
    for (k, response) in client
        .get_many(again)
        .expect("hit sweep")
        .iter()
        .enumerate()
    {
        assert_eq!(response.full_len, 100 + k as u64);
        assert_eq!(response.source, WireSource::Hit);
    }
    server.join();
}

#[test]
fn admin_opcodes_peek_without_perturbing_and_invalidate_by_relation() {
    let server = test_server(1 << 20, 2);
    let mut client = Client::connect(server.addr().to_string()).expect("client");

    let query = "SELECT sum(l_price) FROM lineitem WHERE l_year = 1995";
    client
        .get(GetRequest::metrics_only(query, 1_000, 512, 4_000))
        .expect("prime the cache");

    let before = client.stats().expect("stats before");
    for _ in 0..10 {
        assert_eq!(client.peek(query).expect("peek"), Some(512));
        assert_eq!(client.peek("SELECT nothing FROM nowhere").unwrap(), None);
    }
    let mut after = client.stats().expect("stats after");
    // Each STATS scrape records one fragmentation sample by design; PEEK
    // must not change the occupancy the samples measure.
    assert_eq!(
        after.fragmentation.average_used_fraction(),
        before.fragmentation.average_used_fraction(),
        "PEEK must not change occupancy"
    );
    after.fragmentation = before.fragmentation.clone();
    assert_eq!(before, after, "PEEK must not perturb the snapshot");

    // A warehouse update lands on LINEITEM: the dependent set is gone.
    let (affected, invalidated) = client.invalidate_relation("LINEITEM").expect("invalidate");
    assert_eq!((affected, invalidated), (1, 1));
    assert_eq!(client.peek(query).expect("peek after invalidate"), None);
    server.join();
}

#[test]
fn deadline_hint_is_reported() {
    let server = test_server(1 << 20, 1);
    let mut client = Client::connect(server.addr().to_string()).expect("client");
    let response = client
        .get(GetRequest {
            key: "SELECT slow FROM t".to_owned(),
            timestamp_us: 1_000,
            result_bytes: 64,
            cost_blocks: 100,
            fetch_delay_us: 5_000,
            deadline_hint_us: 1, // 1 us budget: a 5 ms fetch must exceed it
            payload_prefix_cap: 0,
        })
        .expect("get");
    assert_eq!(response.source, WireSource::Executed);
    assert!(response.deadline_exceeded);
    assert!(response.service_us >= 5_000);

    // A generous budget is not exceeded on the hit path.
    let hit = client
        .get(GetRequest {
            key: "SELECT slow FROM t".to_owned(),
            timestamp_us: 2_000,
            result_bytes: 64,
            cost_blocks: 100,
            fetch_delay_us: 0,
            deadline_hint_us: 10_000_000,
            payload_prefix_cap: 0,
        })
        .expect("get");
    assert_eq!(hit.source, WireSource::Hit);
    assert!(!hit.deadline_exceeded);
    server.join();
}

#[test]
fn oversized_result_bytes_is_refused_with_an_error_response() {
    let server = test_server(1 << 20, 1);
    let mut client = Client::connect(server.addr().to_string()).expect("client");
    let err = client
        .get(GetRequest::metrics_only(
            "SELECT huge FROM t",
            1_000,
            u64::MAX,
            100,
        ))
        .expect_err("oversized result must be refused");
    assert!(
        matches!(err, ClientError::Server { ref message } if message.contains("result_bytes")),
        "got {err}"
    );
    // The connection survives the refusal.
    client
        .get(GetRequest::metrics_only(
            "SELECT ok FROM t",
            2_000,
            128,
            100,
        ))
        .expect("get after refusal");
    server.join();
}

#[test]
fn shutdown_opcode_drains_the_server() {
    let server = test_server(1 << 20, 1);
    let addr = server.addr();
    let mut client = Client::connect(addr.to_string()).expect("client");
    client
        .get(GetRequest::metrics_only("SELECT x FROM t", 1_000, 64, 10))
        .expect("get");
    client.shutdown_server().expect("shutdown acknowledged");
    // The accept loop and session threads must drain promptly.
    server.wait();
    // New connections are refused once the listener is gone (allow a beat
    // for the OS to tear the socket down).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match Client::connect(addr.to_string()) {
            Err(_) => break,
            Ok(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Ok(_) => panic!("server still accepting after drain"),
        }
    }
}

#[test]
fn shutdown_drains_despite_a_connection_stalled_mid_frame() {
    // A client that handshakes, sends ONE byte of a length prefix, and then
    // stalls with the socket open must not hold the drain hostage: the
    // session thread gives the in-flight frame a bounded grace window.
    let server = test_server(1 << 20, 1);
    let addr = server.addr();
    let mut staller = TcpStream::connect(addr).expect("staller connects");
    wire::write_frame(&mut staller, &wire::encode_hello()).unwrap();
    let _ = wire::read_frame(&mut staller)
        .unwrap()
        .expect("server hello");
    staller.write_all(&[0x01]).unwrap();
    staller.flush().unwrap();

    let mut admin = Client::connect(addr.to_string()).expect("admin");
    admin.shutdown_server().expect("shutdown acknowledged");

    // Join on a watchdog: the drain must finish despite the stalled frame.
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.wait();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("drain must not hang on a connection stalled mid-frame");
    drop(staller);
}

#[test]
fn client_reconnects_transparently_after_a_server_side_drop() {
    // Two servers on the same port is not portable; instead, kill the
    // client's socket from underneath it by dropping the server's side:
    // shutting down only the *stream* is not exposed, so simulate the drop
    // by closing the client's own stream via a poisoned call — simplest
    // robust approximation: connect, force-close the underlying socket by
    // replacing the client, and verify a fresh call still succeeds through
    // the reconnect path.
    let server = test_server(1 << 20, 1);
    let addr = server.addr().to_string();
    let mut client = Client::connect(addr).expect("client");
    client
        .get(GetRequest::metrics_only("SELECT r FROM t", 1_000, 64, 10))
        .expect("first get");
    // Vandalize our own connection: send a garbage length prefix so the
    // server closes it, then observe the next call heal via reconnect.
    client
        .with_raw_stream(|stream| stream.write_all(&[0xFF, 0xFF, 0xFF, 0xFF]))
        .expect("reach the raw stream")
        .expect("write the garbage prefix");
    let response = client
        .get(GetRequest::metrics_only("SELECT r FROM t", 2_000, 64, 10))
        .expect("get after reconnect");
    assert_eq!(response.source, WireSource::Hit);
    server.join();
}
