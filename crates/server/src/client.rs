//! `watchman_client`: the typed client for the WATCHMAN wire protocol.
//!
//! [`Client`] speaks the [`crate::wire`] protocol over one TCP connection:
//!
//! * **Typed calls** — [`Client::get`], [`Client::get_many`],
//!   [`Client::peek`], [`Client::stats`], [`Client::invalidate_relation`],
//!   [`Client::rebalance_now`], [`Client::shutdown_server`];
//! * **Pipelining** — [`Client::get_many`] encodes every request frame
//!   into one buffer and sends the batch with a single write before
//!   reading the first response, so a batch pays one round trip — and one
//!   syscall on the send side — instead of one per query (the server
//!   answers a connection's requests strictly in order);
//! * **Reconnect** — a call that fails with a socket error transparently
//!   re-establishes the connection (including the handshake) and retries
//!   once, but only for requests whose replay is safe (`GET` — answered as
//!   a hit after a lost response — `PEEK`, `STATS`, `SHUTDOWN`).
//!   `REBALANCE_NOW` and `INVALIDATE` are **not** replayed: a lost
//!   response there surfaces as an error so the caller decides.  A retried
//!   `GET` is *visible* in the server's statistics as one extra reference,
//!   which is why deterministic replays run over loopback where
//!   connections do not drop.

use std::fmt;
use std::io::{self, Write};
use std::net::TcpStream;
use std::time::Duration;

use watchman_core::engine::StatsSnapshot;

use crate::wire::{self, GetRequest, GetResponse, RebalanceSummary, Request, Response, WireError};

/// Everything that can go wrong on a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Establishing the TCP connection failed.
    Connect {
        /// The address that could not be reached.
        addr: String,
        /// The underlying socket error.
        source: io::Error,
    },
    /// A wire-level failure: socket error, malformed frame, version
    /// mismatch.
    Wire(WireError),
    /// The server answered the request with an error response.
    Server {
        /// The server's failure description.
        message: String,
    },
    /// The server answered with a well-formed response of the wrong kind
    /// (a protocol bug on one side or the other).
    UnexpectedResponse {
        /// What the call was waiting for.
        expected: &'static str,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect { addr, source } => {
                write!(f, "cannot connect to {addr}: {source}")
            }
            ClientError::Wire(err) => write!(f, "wire error: {err}"),
            ClientError::Server { message } => write!(f, "server error: {message}"),
            ClientError::UnexpectedResponse { expected } => {
                write!(
                    f,
                    "server sent a response of the wrong kind (expected {expected})"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Connect { source, .. } => Some(source),
            ClientError::Wire(err) => Some(err),
            _ => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(err: WireError) -> Self {
        ClientError::Wire(err)
    }
}

/// Blocking connect plus version handshake, returning the raw handshaken
/// stream.  [`Client`] builds on this; the connection-storm driver uses it
/// directly and then hands the stream to the async runtime
/// (`TcpStream::from_std`), which is why it is the **only** place outside
/// [`Client`] that touches blocking `std::net` in this crate.
pub fn connect_handshaken(addr: &str) -> Result<TcpStream, ClientError> {
    let mut stream = TcpStream::connect(addr).map_err(|source| ClientError::Connect {
        addr: addr.to_owned(),
        source,
    })?;
    let _ = stream.set_nodelay(true);
    wire::write_frame(&mut stream, &wire::encode_hello()).map_err(WireError::Io)?;
    stream.flush().map_err(WireError::Io)?;
    let body = wire::read_frame(&mut stream)?.ok_or(WireError::Truncated {
        context: "server hello",
    })?;
    let peer = wire::decode_hello(&body)?;
    if peer != wire::VERSION {
        return Err(ClientError::Wire(WireError::UnsupportedVersion { peer }));
    }
    Ok(stream)
}

/// A connection to a `watchmand` server.
pub struct Client {
    addr: String,
    stream: Option<TcpStream>,
    next_id: u64,
    /// Staging buffer for outgoing batches: every pipelined request of a
    /// call is encoded here and sent as one write.  Lives on the client so
    /// steady-state batches reuse its capacity instead of growing a fresh
    /// `Vec` per call.
    encode_buf: Vec<u8>,
    /// Reused response-body buffer for [`wire::read_frame_into`]: after the
    /// first response it holds capacity for the connection's largest body,
    /// so reading a frame costs no allocation.
    read_buf: Vec<u8>,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("addr", &self.addr)
            .field("connected", &self.stream.is_some())
            .finish()
    }
}

impl Client {
    /// Connects and performs the version handshake.
    pub fn connect(addr: impl Into<String>) -> Result<Client, ClientError> {
        let mut client = Client {
            addr: addr.into(),
            stream: None,
            next_id: 0,
            encode_buf: Vec::new(),
            read_buf: Vec::new(),
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Like [`Client::connect`], but retries with a fixed backoff — the
    /// load generator (and CI) use this to ride out a `watchmand` that is
    /// still starting up.
    pub fn connect_with_retries(
        addr: impl Into<String>,
        attempts: u32,
        backoff: Duration,
    ) -> Result<Client, ClientError> {
        let addr = addr.into();
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff);
            }
            match Client::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(err) => last = Some(err),
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// The address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn ensure_connected(&mut self) -> Result<&mut TcpStream, ClientError> {
        if self.stream.is_none() {
            self.stream = Some(connect_handshaken(&self.addr)?);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Whether a lost-response retry of `request` is safe.  A retried `GET`
    /// is answered as a hit, `PEEK`/`STATS` read nothing, and a second
    /// `SHUTDOWN` is a no-op — but `REBALANCE_NOW` moves capacity *again*
    /// and `INVALIDATE` reports different counts on replay, so those
    /// surface the connection error to the caller instead.
    fn retry_safe(request: &Request) -> bool {
        matches!(
            request,
            Request::Get(_)
                | Request::Peek { .. }
                | Request::Stats
                | Request::Shutdown
                | Request::ServerInfo
        )
    }

    /// Sends `requests` pipelined and returns the responses in request
    /// order.  On a socket error the connection is re-established and the
    /// whole batch retried once — but only when every request in the batch
    /// is [`retry_safe`](Self::retry_safe); a lost response to a
    /// non-idempotent admin request is reported, never replayed.
    fn call_batch(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        let retryable = requests.iter().all(Self::retry_safe);
        for attempt in 0..2 {
            match self.try_call_batch(requests) {
                // A socket error or an EOF mid-protocol both mean the
                // connection is gone (a server that closed on us shows up
                // as a truncated response stream): reconnect (with
                // handshake) and retry the batch once.
                Err(ClientError::Wire(WireError::Io(_) | WireError::Truncated { .. }))
                    if attempt == 0 && retryable =>
                {
                    self.stream = None;
                }
                other => return other,
            }
        }
        unreachable!("second attempt always returns")
    }

    fn try_call_batch(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        let first_id = self.next_id;
        self.next_id += requests.len() as u64;
        self.ensure_connected()?;
        let stream = self
            .stream
            .as_mut()
            .expect("ensure_connected fills the slot");
        // Pipelining: every request frame is encoded into one contiguous
        // buffer (length prefixes interleaved in place) and the whole batch
        // goes out in a single write before the first response is read.
        let batch = &mut self.encode_buf;
        batch.clear();
        for (offset, request) in requests.iter().enumerate() {
            batch.extend_from_slice(&[0; 4]);
            let frame_start = batch.len();
            wire::encode_request_into(batch, first_id + offset as u64, request);
            let frame_len = (batch.len() - frame_start) as u32;
            batch[frame_start - 4..frame_start].copy_from_slice(&frame_len.to_le_bytes());
        }
        stream.write_all(batch).map_err(WireError::Io)?;
        stream.flush().map_err(WireError::Io)?;
        let mut responses = Vec::with_capacity(requests.len());
        for offset in 0..requests.len() {
            if !wire::read_frame_into(stream, &mut self.read_buf)? {
                return Err(ClientError::Wire(WireError::Truncated {
                    context: "response frame",
                }));
            }
            let (id, response) = wire::decode_response(&self.read_buf)?;
            let expected = first_id + offset as u64;
            if id != expected {
                return Err(ClientError::Wire(WireError::Protocol(format!(
                    "response id {id} does not match request id {expected}"
                ))));
            }
            responses.push(response);
        }
        Ok(responses)
    }

    fn call(&mut self, request: Request) -> Result<Response, ClientError> {
        let mut responses = self.call_batch(std::slice::from_ref(&request))?;
        let response = responses.pop().expect("one response per request");
        match response {
            Response::Error { message } => Err(ClientError::Server { message }),
            other => Ok(other),
        }
    }

    /// Looks up one query, executing it server-side on a miss.
    pub fn get(&mut self, request: GetRequest) -> Result<GetResponse, ClientError> {
        match self.call(Request::Get(request))? {
            Response::Get(response) => Ok(response),
            _ => Err(ClientError::UnexpectedResponse { expected: "GET" }),
        }
    }

    /// Looks up a batch of queries **pipelined**: all request frames are
    /// written before the first response is read, so the batch pays one
    /// round trip.  Responses come back in request order.
    pub fn get_many(&mut self, requests: Vec<GetRequest>) -> Result<Vec<GetResponse>, ClientError> {
        let wrapped: Vec<Request> = requests.into_iter().map(Request::Get).collect();
        self.call_batch(&wrapped)?
            .into_iter()
            .map(|response| match response {
                Response::Get(response) => Ok(response),
                Response::Error { message } => Err(ClientError::Server { message }),
                _ => Err(ClientError::UnexpectedResponse { expected: "GET" }),
            })
            .collect()
    }

    /// Non-mutating probe: returns the cached set's size, or `None` when the
    /// query is not resident.  Never perturbs policy state or statistics.
    pub fn peek(&mut self, key: impl Into<String>) -> Result<Option<u64>, ClientError> {
        match self.call(Request::Peek { key: key.into() })? {
            Response::Peek {
                cached: true,
                size_bytes,
            } => Ok(Some(size_bytes)),
            Response::Peek { cached: false, .. } => Ok(None),
            _ => Err(ClientError::UnexpectedResponse { expected: "PEEK" }),
        }
    }

    /// Fetches the engine's full statistics snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.call(Request::Stats)? {
            Response::Stats(snapshot) => Ok(snapshot),
            _ => Err(ClientError::UnexpectedResponse { expected: "STATS" }),
        }
    }

    /// Invalidates every cached set depending on `relation`; returns
    /// `(affected, invalidated)` counts.
    pub fn invalidate_relation(
        &mut self,
        relation: impl Into<String>,
    ) -> Result<(u32, u32), ClientError> {
        match self.call(Request::Invalidate {
            relation: relation.into(),
        })? {
            Response::Invalidate {
                affected,
                invalidated,
            } => Ok((affected, invalidated)),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "INVALIDATE",
            }),
        }
    }

    /// Runs one rebalance pass at the given logical time.
    pub fn rebalance_now(
        &mut self,
        timestamp_us: u64,
    ) -> Result<Option<RebalanceSummary>, ClientError> {
        match self.call(Request::RebalanceNow { timestamp_us })? {
            Response::RebalanceNow(outcome) => Ok(outcome),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "REBALANCE_NOW",
            }),
        }
    }

    /// Fetches the server's execution-stack shape: OS thread count, runtime
    /// worker count, and live session count.  The load generator uses this
    /// to assert that 1 000 connections do **not** cost 1 000 threads.
    pub fn server_info(&mut self) -> Result<(u32, u32, u32), ClientError> {
        match self.call(Request::ServerInfo)? {
            Response::ServerInfo {
                threads,
                workers,
                sessions,
            } => Ok((threads, workers, sessions)),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "SERVER_INFO",
            }),
        }
    }

    /// Runs `f` on the underlying stream.  Test support: lets integration
    /// tests corrupt their own connection to exercise the reconnect path.
    #[doc(hidden)]
    pub fn with_raw_stream<R>(
        &mut self,
        f: impl FnOnce(&mut TcpStream) -> R,
    ) -> Result<R, ClientError> {
        let stream = self.ensure_connected()?;
        Ok(f(stream))
    }

    /// Asks the server to drain and exit.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(Request::Shutdown)? {
            Response::Shutdown => Ok(()),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "SHUTDOWN",
            }),
        }
    }
}
