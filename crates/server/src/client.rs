//! `watchman_client`: the typed client for the WATCHMAN wire protocol.
//!
//! [`Client`] speaks the [`crate::wire`] protocol over one TCP connection:
//!
//! * **Typed calls** — [`Client::get`], [`Client::get_many`],
//!   [`Client::peek`], [`Client::stats`], [`Client::invalidate_relation`],
//!   [`Client::rebalance_now`], [`Client::shutdown_server`];
//! * **Pipelining** — [`Client::get_many`] encodes every request frame
//!   into one buffer and sends the batch with a single write before
//!   reading the first response, so a batch pays one round trip — and one
//!   syscall on the send side — instead of one per query (the server
//!   answers a connection's requests strictly in order);
//! * **Reconnect** — a call that fails with a socket error transparently
//!   re-establishes the connection (including the handshake) and retries
//!   under the client's [`RetryPolicy`]: bounded attempts with capped
//!   exponential backoff and deterministic jitter, so a fleet of clients
//!   facing a flapping server does not reconnect in lockstep.  Retries
//!   only cover requests whose replay is safe (`GET` — answered as a hit
//!   after a lost response — `PEEK`, `STATS`, `SHUTDOWN`).
//!   `REBALANCE_NOW` and `INVALIDATE` are **not** replayed: a lost
//!   response there surfaces as an error so the caller decides.  A retried
//!   `GET` is *visible* in the server's statistics as one extra reference,
//!   which is why deterministic replays run over loopback where
//!   connections do not drop;
//! * **Overload cooperation** — a `BUSY` response (the server shedding
//!   load) is retried after the server's own retry-after hint, and
//!   surfaces as [`ClientError::Busy`] once the retry budget is spent.

use std::fmt;
use std::io::{self, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use watchman_core::engine::{RetryPolicy, StatsSnapshot};
use watchman_core::telemetry::{MetricsSnapshot, TraceDump};

use crate::wire::{self, GetRequest, GetResponse, RebalanceSummary, Request, Response, WireError};

/// Everything that can go wrong on a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Establishing the TCP connection failed.
    Connect {
        /// The address that could not be reached.
        addr: String,
        /// The underlying socket error.
        source: io::Error,
    },
    /// A wire-level failure: socket error, malformed frame, version
    /// mismatch.
    Wire(WireError),
    /// The server answered the request with an error response.
    Server {
        /// The server's failure description.
        message: String,
    },
    /// The server answered with a well-formed response of the wrong kind
    /// (a protocol bug on one side or the other).
    UnexpectedResponse {
        /// What the call was waiting for.
        expected: &'static str,
    },
    /// The server shed the request (`BUSY`) and the retry budget is spent.
    Busy {
        /// The server's last retry-after hint, in microseconds.
        retry_after_us: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect { addr, source } => {
                write!(f, "cannot connect to {addr}: {source}")
            }
            ClientError::Wire(err) => write!(f, "wire error: {err}"),
            ClientError::Server { message } => write!(f, "server error: {message}"),
            ClientError::UnexpectedResponse { expected } => {
                write!(
                    f,
                    "server sent a response of the wrong kind (expected {expected})"
                )
            }
            ClientError::Busy { retry_after_us } => {
                write!(f, "server busy (retry after {retry_after_us}us)")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Connect { source, .. } => Some(source),
            ClientError::Wire(err) => Some(err),
            _ => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(err: WireError) -> Self {
        ClientError::Wire(err)
    }
}

/// Blocking connect plus version handshake, returning the raw handshaken
/// stream.  [`Client`] builds on this; the connection-storm driver uses it
/// directly and then hands the stream to the async runtime
/// (`TcpStream::from_std`), which is why it is the **only** place outside
/// [`Client`] that touches blocking `std::net` in this crate.
pub fn connect_handshaken(addr: &str) -> Result<TcpStream, ClientError> {
    let mut stream = TcpStream::connect(addr).map_err(|source| ClientError::Connect {
        addr: addr.to_owned(),
        source,
    })?;
    let _ = stream.set_nodelay(true);
    wire::write_frame(&mut stream, &wire::encode_hello()).map_err(WireError::Io)?;
    stream.flush().map_err(WireError::Io)?;
    let body = wire::read_frame(&mut stream)?.ok_or(WireError::Truncated {
        context: "server hello",
    })?;
    let peer = wire::decode_hello(&body)?;
    if peer != wire::VERSION {
        return Err(ClientError::Wire(WireError::UnsupportedVersion { peer }));
    }
    Ok(stream)
}

/// A connection to a `watchmand` server.
pub struct Client {
    addr: String,
    stream: Option<TcpStream>,
    next_id: u64,
    /// Governs reconnect-and-retry of failed batches and the pacing of
    /// `BUSY` retries: bounded attempts, capped exponential backoff,
    /// deterministic jitter.
    reconnect: RetryPolicy,
    /// Jitter-stream cursor: advances per backoff so consecutive retries
    /// do not sleep identically.
    retry_stream: u64,
    /// Read timeout applied to the current stream *and every reconnect's*
    /// stream — a client facing a stalled server must not block forever on
    /// a connection its own retry policy would otherwise have replaced.
    read_timeout: Option<Duration>,
    /// Staging buffer for outgoing batches: every pipelined request of a
    /// call is encoded here and sent as one write.  Lives on the client so
    /// steady-state batches reuse its capacity instead of growing a fresh
    /// `Vec` per call.
    encode_buf: Vec<u8>,
    /// Reused response-body buffer for [`wire::read_frame_into`]: after the
    /// first response it holds capacity for the connection's largest body,
    /// so reading a frame costs no allocation.
    read_buf: Vec<u8>,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("addr", &self.addr)
            .field("connected", &self.stream.is_some())
            .finish()
    }
}

impl Client {
    /// Connects and performs the version handshake.
    pub fn connect(addr: impl Into<String>) -> Result<Client, ClientError> {
        let mut client = Client {
            addr: addr.into(),
            stream: None,
            next_id: 0,
            reconnect: RetryPolicy::default(),
            retry_stream: 0,
            read_timeout: None,
            encode_buf: Vec::new(),
            read_buf: Vec::new(),
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Replaces the reconnect/`BUSY` retry policy (see [`RetryPolicy`]).
    /// `RetryPolicy::none()` restores fail-fast behavior: the first
    /// connection loss or `BUSY` surfaces to the caller.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.reconnect = policy;
    }

    /// Sets a read timeout on the connection — and on every connection a
    /// future reconnect establishes.  A timed-out read surfaces as an IO
    /// wire error, which the retry policy treats like any other connection
    /// loss: the cure for a server that stalls mid-response is a fresh
    /// connection, not an eternal block.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.read_timeout = timeout;
        if let Some(stream) = &self.stream {
            let _ = stream.set_read_timeout(timeout);
        }
    }

    /// Like [`Client::connect`], but retries with a fixed backoff — the
    /// load generator (and CI) use this to ride out a `watchmand` that is
    /// still starting up.
    pub fn connect_with_retries(
        addr: impl Into<String>,
        attempts: u32,
        backoff: Duration,
    ) -> Result<Client, ClientError> {
        let addr = addr.into();
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff);
            }
            match Client::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(err) => last = Some(err),
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// The address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn ensure_connected(&mut self) -> Result<&mut TcpStream, ClientError> {
        if self.stream.is_none() {
            let stream = connect_handshaken(&self.addr)?;
            if self.read_timeout.is_some() {
                let _ = stream.set_read_timeout(self.read_timeout);
            }
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Whether a lost-response retry of `request` is safe.  A retried `GET`
    /// is answered as a hit, `PEEK`/`STATS` read nothing, and a second
    /// `SHUTDOWN` is a no-op — but `REBALANCE_NOW` moves capacity *again*
    /// and `INVALIDATE` reports different counts on replay, so those
    /// surface the connection error to the caller instead.
    fn retry_safe(request: &Request) -> bool {
        matches!(
            request,
            Request::Get(_)
                | Request::Peek { .. }
                | Request::Stats
                | Request::Shutdown
                | Request::ServerInfo
                | Request::Metrics
                | Request::TraceDump
        )
    }

    /// The backoff before the retry numbered `attempt` (1-based), advancing
    /// the jitter stream so consecutive retries never sleep in lockstep.
    fn retry_backoff(&mut self, attempt: u32) -> Duration {
        let stream = self.retry_stream;
        self.retry_stream = self.retry_stream.wrapping_add(1);
        self.reconnect.backoff(attempt, stream)
    }

    /// Sends `requests` pipelined and returns the responses in request
    /// order.  Two recoverable outcomes are retried under the client's
    /// [`RetryPolicy`] — bounded attempts, capped exponential backoff,
    /// deterministic jitter — and only when every request in the batch is
    /// [`retry_safe`](Self::retry_safe); a lost response to a
    /// non-idempotent admin request is reported, never replayed:
    ///
    /// * a socket error or an EOF mid-protocol (the connection is gone —
    ///   a server that closed on us shows up as a truncated response
    ///   stream): reconnect with handshake, backed off so a flapping
    ///   server is not hammered in a tight loop;
    /// * a `BUSY` response anywhere in the batch (the server shedding
    ///   load): the whole batch is replayed after the server's largest
    ///   retry-after hint or the policy backoff, whichever is longer
    ///   (capped at the policy's `max_delay`).
    fn call_batch(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        let retryable = requests.iter().all(Self::retry_safe);
        let budget = self.reconnect.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.try_call_batch(requests) {
                Err(
                    ClientError::Wire(WireError::Io(_) | WireError::Truncated { .. })
                    | ClientError::Connect { .. },
                ) if retryable && attempt < budget => {
                    self.stream = None;
                    let backoff = self.retry_backoff(attempt);
                    if !backoff.is_zero() {
                        thread::sleep(backoff);
                    }
                }
                Ok(responses)
                    if retryable
                        && attempt < budget
                        && responses
                            .iter()
                            .any(|response| matches!(response, Response::Busy { .. })) =>
                {
                    let hint = responses
                        .iter()
                        .filter_map(|response| match response {
                            Response::Busy { retry_after_us } => Some(*retry_after_us),
                            _ => None,
                        })
                        .max()
                        .unwrap_or(0);
                    let backoff = self
                        .retry_backoff(attempt)
                        .max(Duration::from_micros(hint))
                        .min(self.reconnect.max_delay.max(Duration::from_micros(hint)));
                    if !backoff.is_zero() {
                        thread::sleep(backoff);
                    }
                }
                other => return other,
            }
        }
    }

    fn try_call_batch(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        let first_id = self.next_id;
        self.next_id += requests.len() as u64;
        self.ensure_connected()?;
        let stream = self
            .stream
            .as_mut()
            .expect("ensure_connected fills the slot");
        // Pipelining: every request frame is encoded into one contiguous
        // buffer (length prefixes interleaved in place) and the whole batch
        // goes out in a single write before the first response is read.
        let batch = &mut self.encode_buf;
        batch.clear();
        for (offset, request) in requests.iter().enumerate() {
            batch.extend_from_slice(&[0; 4]);
            let frame_start = batch.len();
            wire::encode_request_into(batch, first_id + offset as u64, request);
            let frame_len = (batch.len() - frame_start) as u32;
            batch[frame_start - 4..frame_start].copy_from_slice(&frame_len.to_le_bytes());
        }
        stream.write_all(batch).map_err(WireError::Io)?;
        stream.flush().map_err(WireError::Io)?;
        let mut responses = Vec::with_capacity(requests.len());
        for offset in 0..requests.len() {
            if !wire::read_frame_into(stream, &mut self.read_buf)? {
                return Err(ClientError::Wire(WireError::Truncated {
                    context: "response frame",
                }));
            }
            let (id, response) = wire::decode_response(&self.read_buf)?;
            let expected = first_id + offset as u64;
            if id != expected {
                return Err(ClientError::Wire(WireError::Protocol(format!(
                    "response id {id} does not match request id {expected}"
                ))));
            }
            responses.push(response);
        }
        Ok(responses)
    }

    fn call(&mut self, request: Request) -> Result<Response, ClientError> {
        let mut responses = self.call_batch(std::slice::from_ref(&request))?;
        let response = responses.pop().expect("one response per request");
        match response {
            Response::Error { message } => Err(ClientError::Server { message }),
            Response::Busy { retry_after_us } => Err(ClientError::Busy { retry_after_us }),
            other => Ok(other),
        }
    }

    /// Looks up one query, executing it server-side on a miss.
    pub fn get(&mut self, request: GetRequest) -> Result<GetResponse, ClientError> {
        match self.call(Request::Get(request))? {
            Response::Get(response) => Ok(response),
            _ => Err(ClientError::UnexpectedResponse { expected: "GET" }),
        }
    }

    /// Looks up a batch of queries **pipelined**: all request frames are
    /// written before the first response is read, so the batch pays one
    /// round trip.  Responses come back in request order.
    pub fn get_many(&mut self, requests: Vec<GetRequest>) -> Result<Vec<GetResponse>, ClientError> {
        let wrapped: Vec<Request> = requests.into_iter().map(Request::Get).collect();
        self.call_batch(&wrapped)?
            .into_iter()
            .map(|response| match response {
                Response::Get(response) => Ok(response),
                Response::Error { message } => Err(ClientError::Server { message }),
                Response::Busy { retry_after_us } => Err(ClientError::Busy { retry_after_us }),
                _ => Err(ClientError::UnexpectedResponse { expected: "GET" }),
            })
            .collect()
    }

    /// Non-mutating probe: returns the cached set's size, or `None` when the
    /// query is not resident.  Never perturbs policy state or statistics.
    pub fn peek(&mut self, key: impl Into<String>) -> Result<Option<u64>, ClientError> {
        match self.call(Request::Peek { key: key.into() })? {
            Response::Peek {
                cached: true,
                size_bytes,
            } => Ok(Some(size_bytes)),
            Response::Peek { cached: false, .. } => Ok(None),
            _ => Err(ClientError::UnexpectedResponse { expected: "PEEK" }),
        }
    }

    /// Fetches the engine's full statistics snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.call(Request::Stats)? {
            Response::Stats(snapshot) => Ok(snapshot),
            _ => Err(ClientError::UnexpectedResponse { expected: "STATS" }),
        }
    }

    /// Invalidates every cached set depending on `relation`; returns
    /// `(affected, invalidated)` counts.
    pub fn invalidate_relation(
        &mut self,
        relation: impl Into<String>,
    ) -> Result<(u32, u32), ClientError> {
        match self.call(Request::Invalidate {
            relation: relation.into(),
        })? {
            Response::Invalidate {
                affected,
                invalidated,
            } => Ok((affected, invalidated)),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "INVALIDATE",
            }),
        }
    }

    /// Runs one rebalance pass at the given logical time.
    pub fn rebalance_now(
        &mut self,
        timestamp_us: u64,
    ) -> Result<Option<RebalanceSummary>, ClientError> {
        match self.call(Request::RebalanceNow { timestamp_us })? {
            Response::RebalanceNow(outcome) => Ok(outcome),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "REBALANCE_NOW",
            }),
        }
    }

    /// Fetches the server's execution-stack shape: OS thread count, runtime
    /// worker count, and live session count.  The load generator uses this
    /// to assert that 1 000 connections do **not** cost 1 000 threads.
    pub fn server_info(&mut self) -> Result<(u32, u32, u32), ClientError> {
        match self.call(Request::ServerInfo)? {
            Response::ServerInfo {
                threads,
                workers,
                sessions,
            } => Ok((threads, workers, sessions)),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "SERVER_INFO",
            }),
        }
    }

    /// Fetches the server's telemetry exposition: every counter, gauge and
    /// latency histogram as one versioned snapshot.  The load generator
    /// scrapes this mid-storm; CI asserts the scrape parses and the storm's
    /// counters moved.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        match self.call(Request::Metrics)? {
            Response::Metrics(snapshot) => Ok(snapshot),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "METRICS",
            }),
        }
    }

    /// Dumps the server's flight recorder: the bounded ring of recent
    /// structured trace events, oldest first.
    pub fn trace_dump(&mut self) -> Result<TraceDump, ClientError> {
        match self.call(Request::TraceDump)? {
            Response::TraceDump(dump) => Ok(dump),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "TRACE_DUMP",
            }),
        }
    }

    /// Runs `f` on the underlying stream.  Test support: lets integration
    /// tests corrupt their own connection to exercise the reconnect path.
    #[doc(hidden)]
    pub fn with_raw_stream<R>(
        &mut self,
        f: impl FnOnce(&mut TcpStream) -> R,
    ) -> Result<R, ClientError> {
        let stream = self.ensure_connected()?;
        Ok(f(stream))
    }

    /// Asks the server to drain and exit.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(Request::Shutdown)? {
            Response::Shutdown => Ok(()),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "SHUTDOWN",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;
    use std::net::TcpListener;

    /// Serves one full exchange on `stream` by hand: handshake, then one
    /// `SERVER_INFO` request answered with a canned response.
    fn serve_one_exchange(mut stream: TcpStream) {
        let hello = wire::read_frame(&mut stream)
            .expect("hello frame")
            .expect("hello present");
        wire::decode_hello(&hello).expect("client hello");
        wire::write_frame(&mut stream, &wire::encode_hello()).expect("server hello");
        let frame = wire::read_frame(&mut stream)
            .expect("request frame")
            .expect("request present");
        let (request_id, request) = wire::decode_request(&frame).expect("decode request");
        assert!(matches!(request, Request::ServerInfo));
        let response = Response::ServerInfo {
            threads: 1,
            workers: 1,
            sessions: 1,
        };
        let body = wire::encode_response(request_id, &response).expect("encode response");
        wire::write_frame(&mut stream, &body).expect("write response");
        // Drain until the client hangs up so the response is not lost to an
        // RST racing the close.
        let _ = stream.read(&mut [0u8; 64]);
    }

    /// A flapping listener: the first call succeeds, then the server drops
    /// the connection *and* refuses the next two reconnects before serving
    /// again.  The old client retried exactly once, blind and undelayed,
    /// and surfaced an error here; under the policy-driven loop the second
    /// call rides out the flap.
    #[test]
    fn policy_retries_ride_out_a_flapping_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            // Connection 1: healthy exchange, then closed by the drop.
            let (stream, _) = listener.accept().expect("accept 1");
            serve_one_exchange(stream);
            // Connections 2 and 3: accepted and dropped before handshake.
            for _ in 0..2 {
                let (stream, _) = listener.accept().expect("accept flap");
                drop(stream);
            }
            // Connection 4: healthy again.
            let (stream, _) = listener.accept().expect("accept 4");
            serve_one_exchange(stream);
        });

        let mut client = Client::connect(&addr).expect("first connect");
        client.set_retry_policy(RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_micros(200),
            max_delay: Duration::from_millis(5),
            jitter_seed: 7,
        });
        client.server_info().expect("call on healthy connection");
        // The server closed connection 1; this call must reconnect through
        // two dropped connections before the fourth accept serves it.
        client.server_info().expect("call rides out the flap");
        // Hang up so connection 4's drain read sees EOF instead of waiting
        // on a client that never speaks again.
        drop(client);
        server.join().expect("server thread");
    }

    /// With retries disabled the first flap surfaces: the regression guard
    /// for the budget check (`attempt < max_attempts`), which must also
    /// prevent the pre-policy behavior of one free blind retry.
    #[test]
    fn fail_fast_policy_surfaces_the_first_connection_loss() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept 1");
            // The listener dies here: a reconnect attempt has nowhere to go.
            drop(listener);
            serve_one_exchange(stream);
        });
        let mut client = Client::connect(&addr).expect("connect");
        client.set_retry_policy(RetryPolicy::none());
        client.server_info().expect("healthy call");
        // The server is closing connection 1 (this request's bytes unblock
        // its drain read); fail-fast must surface the loss, not loop.
        let err = client.server_info().expect_err("no retry budget");
        assert!(matches!(
            err,
            ClientError::Wire(_) | ClientError::Connect { .. }
        ));
        server.join().expect("server thread");
    }
}
