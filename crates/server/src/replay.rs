//! Wire-backed trace replay: the simulator's drivers, over real sockets.
//!
//! [`replay_trace_wire`] is the network twin of
//! [`watchman_sim::replay_trace_engine_async`]: one connection replays a
//! deterministic trace record by record (pipelined in
//! [`REBALANCE_EVERY_RECORDS`]-sized batches, which the server answers in
//! order), schedules a rebalance pass at exactly the same points the
//! in-process drivers do, and returns the server engine's final
//! [`StatsSnapshot`] — byte-identical to the in-process replay of the same
//! trace on the same engine configuration, which is the end-to-end proof
//! that the wire adds no replay-visible semantics.
//!
//! [`run_load`] is the concurrent driver underneath the `loadgen` binary: N
//! client connections replay disjoint slices of a trace against one server,
//! measuring client-observed latency.

use std::sync::Arc;

use std::thread;
use std::time::{Duration, Instant};
use watchman_core::sync::Mutex;

use watchman_core::engine::StatsSnapshot;
use watchman_sim::REBALANCE_EVERY_RECORDS;
use watchman_trace::Trace;

use crate::client::{Client, ClientError};
use crate::wire::{GetRequest, WireSource};

/// Replays `trace` through `client` with the deterministic protocol of the
/// in-process drivers (one session, in trace order, a rebalance pass every
/// [`REBALANCE_EVERY_RECORDS`] records) and returns the server's final
/// snapshot.
pub fn replay_trace_wire(client: &mut Client, trace: &Trace) -> Result<StatsSnapshot, ClientError> {
    let chunk_len = REBALANCE_EVERY_RECORDS as usize;
    for chunk in trace.records.chunks(chunk_len) {
        let batch: Vec<GetRequest> = chunk
            .iter()
            .map(|record| {
                GetRequest::metrics_only(
                    record.query_text.clone(),
                    record.timestamp_us,
                    record.result_bytes,
                    record.cost_blocks,
                )
            })
            .collect();
        client.get_many(batch)?;
        if chunk.len() == chunk_len {
            // Same schedule as `replay_records`: a pass after every full
            // 128-record batch, at the last record's logical time.
            let now = chunk.last().expect("non-empty chunk").timestamp_us;
            client.rebalance_now(now)?;
        }
    }
    client.stats()
}

/// What one [`run_load`] run measured, aggregated across clients.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Number of client connections.
    pub clients: usize,
    /// Total requests sent.
    pub requests: u64,
    /// Requests answered from cache.
    pub hits: u64,
    /// Requests that led an execution.
    pub executed: u64,
    /// Requests coalesced onto another connection's execution.
    pub coalesced: u64,
    /// Client-observed round-trip samples in microseconds (one per
    /// pipelined batch; with `pipeline == 1`, one per request).
    pub batch_latencies_us: Vec<u64>,
    /// Requests per latency sample (the pipeline depth).
    pub pipeline: usize,
    /// Wall-clock of the whole run.
    pub wall: Duration,
}

impl LoadReport {
    /// Requests per second over the whole run.
    pub fn throughput_qps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.requests as f64 / secs
        }
    }

    /// The `q`-quantile (0.0–1.0) of the latency samples, in microseconds.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        if self.batch_latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.batch_latencies_us.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[rank]
    }

    /// Mean latency sample in microseconds.
    pub fn latency_mean_us(&self) -> f64 {
        if self.batch_latencies_us.is_empty() {
            return 0.0;
        }
        self.batch_latencies_us.iter().sum::<u64>() as f64 / self.batch_latencies_us.len() as f64
    }
}

/// Options for [`run_load`].
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Number of concurrent client connections.
    pub clients: usize,
    /// Requests per pipelined batch (1 = one round trip per request).
    pub pipeline: usize,
    /// Simulated execution time attached to every request, in microseconds.
    pub fetch_delay_us: u32,
    /// Payload bytes each response carries back (0 = metrics only).
    pub payload_prefix_cap: u32,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            clients: 4,
            pipeline: 8,
            fetch_delay_us: 0,
            payload_prefix_cap: 0,
        }
    }
}

/// Drives `trace` against the server at `addr` from `options.clients`
/// concurrent connections (records dealt round-robin, like the in-process
/// concurrent replay), measuring client-observed latency.
///
/// Connections race on the shared server cache exactly like live analyst
/// sessions: concurrent misses on one query coalesce *across connections*
/// into a single execution, which the per-request sources in the report
/// make visible.
pub fn run_load(
    addr: &str,
    trace: &Trace,
    options: &LoadOptions,
) -> Result<LoadReport, ClientError> {
    let clients = options.clients.max(1);
    let pipeline = options.pipeline.max(1);
    let shared_error: Arc<Mutex<Option<ClientError>>> = Arc::new(Mutex::new(None));
    let started = Instant::now();
    let mut per_client: Vec<(u64, u64, u64, Vec<u64>)> = Vec::new();
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for client_index in 0..clients {
            let shared_error = Arc::clone(&shared_error);
            // Each connection owns its round-robin slice of the trace.
            let records: Vec<GetRequest> = trace
                .iter()
                .skip(client_index)
                .step_by(clients)
                .map(|record| GetRequest {
                    key: record.query_text.clone(),
                    timestamp_us: record.timestamp_us,
                    result_bytes: record.result_bytes,
                    cost_blocks: record.cost_blocks,
                    fetch_delay_us: options.fetch_delay_us,
                    deadline_hint_us: 0,
                    payload_prefix_cap: options.payload_prefix_cap,
                })
                .collect();
            handles.push(scope.spawn(move || {
                let run = || -> Result<(u64, u64, u64, Vec<u64>), ClientError> {
                    let mut client =
                        Client::connect_with_retries(addr, 20, Duration::from_millis(50))?;
                    let (mut hits, mut executed, mut coalesced) = (0u64, 0u64, 0u64);
                    let mut latencies = Vec::with_capacity(records.len() / pipeline + 1);
                    for batch in records.chunks(pipeline) {
                        let sent = Instant::now();
                        let responses = client.get_many(batch.to_vec())?;
                        latencies
                            .push(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
                        for response in responses {
                            match response.source {
                                WireSource::Hit => hits += 1,
                                WireSource::Executed => executed += 1,
                                WireSource::Coalesced => coalesced += 1,
                            }
                        }
                    }
                    Ok((hits, executed, coalesced, latencies))
                };
                match run() {
                    Ok(result) => Some(result),
                    Err(err) => {
                        // Sync-layer lock: recovers from poisoning instead of
                        // letting one panicked client thread cascade unwrap
                        // panics across every other client.
                        shared_error.lock().get_or_insert(err);
                        None
                    }
                }
            }));
        }
        for handle in handles {
            if let Some(result) = handle.join().expect("client thread") {
                per_client.push(result);
            }
        }
    });
    if let Some(err) = shared_error.lock().take() {
        return Err(err);
    }
    let wall = started.elapsed();
    let mut report = LoadReport {
        clients,
        requests: trace.len() as u64,
        hits: 0,
        executed: 0,
        coalesced: 0,
        batch_latencies_us: Vec::new(),
        pipeline,
        wall,
    };
    for (hits, executed, coalesced, latencies) in per_client {
        report.hits += hits;
        report.executed += executed;
        report.coalesced += coalesced;
        report.batch_latencies_us.extend(latencies);
    }
    Ok(report)
}
