//! Wire-backed trace replay: the simulator's drivers, over real sockets.
//!
//! [`replay_trace_wire`] is the network twin of
//! [`watchman_sim::replay_trace_engine_async`]: one connection replays a
//! deterministic trace record by record (pipelined in
//! [`REBALANCE_EVERY_RECORDS`]-sized batches, which the server answers in
//! order), schedules a rebalance pass at exactly the same points the
//! in-process drivers do, and returns the server engine's final
//! [`StatsSnapshot`] — byte-identical to the in-process replay of the same
//! trace on the same engine configuration, which is the end-to-end proof
//! that the wire adds no replay-visible semantics.
//!
//! [`run_load`] is the concurrent driver underneath the `loadgen` binary: N
//! client connections replay disjoint slices of a trace against one server,
//! measuring client-observed latency.
//!
//! [`run_connection_storm`] is the high-concurrency variant: hundreds to
//! thousands of **simultaneously open** connections, each driven by an
//! async task on a small client-side runtime (the client cannot afford a
//! thread per connection any more than the server can).  While every
//! connection is still open it snapshots the server's `SERVER_INFO`, which
//! is what proves server sessions are tasks: the reported thread count
//! stays bounded by the worker pool while the session count matches the
//! storm size.

use std::future::poll_fn;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::task::{Context, Poll, Waker};
use std::thread;
use std::time::{Duration, Instant};
use watchman_core::sync::Mutex;

use watchman_core::engine::{RetryPolicy, StatsSnapshot};
use watchman_core::runtime::net::TcpStream;
use watchman_core::runtime::{block_on, Runtime};
use watchman_core::telemetry::{HistogramSnapshot, MetricsSnapshot};
use watchman_sim::REBALANCE_EVERY_RECORDS;
use watchman_trace::Trace;

use crate::client::{connect_handshaken, Client, ClientError};
use crate::wire::{self, GetRequest, Request, Response, WireError, WireSource};

/// Replays `trace` through `client` with the deterministic protocol of the
/// in-process drivers (one session, in trace order, a rebalance pass every
/// [`REBALANCE_EVERY_RECORDS`] records) and returns the server's final
/// snapshot.
pub fn replay_trace_wire(client: &mut Client, trace: &Trace) -> Result<StatsSnapshot, ClientError> {
    let chunk_len = REBALANCE_EVERY_RECORDS as usize;
    for chunk in trace.records.chunks(chunk_len) {
        let batch: Vec<GetRequest> = chunk
            .iter()
            .map(|record| {
                GetRequest::metrics_only(
                    record.query_text.clone(),
                    record.timestamp_us,
                    record.result_bytes,
                    record.cost_blocks,
                )
            })
            .collect();
        client.get_many(batch)?;
        if chunk.len() == chunk_len {
            // Same schedule as `replay_records`: a pass after every full
            // 128-record batch, at the last record's logical time.
            let now = chunk.last().expect("non-empty chunk").timestamp_us;
            client.rebalance_now(now)?;
        }
    }
    client.stats()
}

/// What one [`run_load`] run measured, aggregated across clients.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Number of client connections.
    pub clients: usize,
    /// Total requests sent.
    pub requests: u64,
    /// Requests answered from cache.
    pub hits: u64,
    /// Requests that led an execution.
    pub executed: u64,
    /// Requests coalesced onto another connection's execution.
    pub coalesced: u64,
    /// Requests degraded to a last-known-good stale value after a fetch
    /// failure (only possible when the server runs a fault plan with stale
    /// serving configured).
    pub stale: u64,
    /// Client-observed round-trip latency histogram (one sample per
    /// pipelined batch; with `pipeline == 1`, one per request).  A shared
    /// [`HistogramSnapshot`] instead of a sorted sample vector: quantiles
    /// cost a bucket walk, and a million-request run holds 252 buckets per
    /// client rather than a million `u64`s.
    pub batch_latency_us: HistogramSnapshot,
    /// Requests per latency sample (the pipeline depth).
    pub pipeline: usize,
    /// Wall-clock of the whole run.
    pub wall: Duration,
}

impl LoadReport {
    /// Requests per second over the whole run.
    pub fn throughput_qps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.requests as f64 / secs
        }
    }

    /// The `q`-quantile (0.0–1.0) of the latency samples, in microseconds.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        self.batch_latency_us.quantile(q)
    }

    /// Mean latency sample in microseconds.
    pub fn latency_mean_us(&self) -> f64 {
        self.batch_latency_us.mean()
    }
}

/// Options for [`run_load`].
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Number of concurrent client connections.
    pub clients: usize,
    /// Requests per pipelined batch (1 = one round trip per request).
    pub pipeline: usize,
    /// Simulated execution time attached to every request, in microseconds.
    pub fetch_delay_us: u32,
    /// Payload bytes each response carries back (0 = metrics only).
    pub payload_prefix_cap: u32,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            clients: 4,
            pipeline: 8,
            fetch_delay_us: 0,
            payload_prefix_cap: 0,
        }
    }
}

/// Drives `trace` against the server at `addr` from `options.clients`
/// concurrent connections (records dealt round-robin, like the in-process
/// concurrent replay), measuring client-observed latency.
///
/// Connections race on the shared server cache exactly like live analyst
/// sessions: concurrent misses on one query coalesce *across connections*
/// into a single execution, which the per-request sources in the report
/// make visible.
pub fn run_load(
    addr: &str,
    trace: &Trace,
    options: &LoadOptions,
) -> Result<LoadReport, ClientError> {
    let clients = options.clients.max(1);
    let pipeline = options.pipeline.max(1);
    let shared_error: Arc<Mutex<Option<ClientError>>> = Arc::new(Mutex::new(None));
    let started = Instant::now();
    let mut per_client: Vec<(u64, u64, u64, u64, HistogramSnapshot)> = Vec::new();
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for client_index in 0..clients {
            let shared_error = Arc::clone(&shared_error);
            // Each connection owns its round-robin slice of the trace.
            let records: Vec<GetRequest> = trace
                .iter()
                .skip(client_index)
                .step_by(clients)
                .map(|record| GetRequest {
                    key: record.query_text.clone(),
                    timestamp_us: record.timestamp_us,
                    result_bytes: record.result_bytes,
                    cost_blocks: record.cost_blocks,
                    fetch_delay_us: options.fetch_delay_us,
                    deadline_hint_us: 0,
                    payload_prefix_cap: options.payload_prefix_cap,
                })
                .collect();
            handles.push(scope.spawn(move || {
                let run = || -> Result<(u64, u64, u64, u64, HistogramSnapshot), ClientError> {
                    let mut client =
                        Client::connect_with_retries(addr, 20, Duration::from_millis(50))?;
                    let (mut hits, mut executed, mut coalesced, mut stale) =
                        (0u64, 0u64, 0u64, 0u64);
                    let mut latencies = HistogramSnapshot::empty();
                    for batch in records.chunks(pipeline) {
                        let sent = Instant::now();
                        let responses = client.get_many(batch.to_vec())?;
                        latencies
                            .record(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
                        for response in responses {
                            match response.source {
                                WireSource::Hit => hits += 1,
                                WireSource::Executed => executed += 1,
                                WireSource::Coalesced => coalesced += 1,
                                WireSource::Stale => stale += 1,
                            }
                        }
                    }
                    Ok((hits, executed, coalesced, stale, latencies))
                };
                match run() {
                    Ok(result) => Some(result),
                    Err(err) => {
                        // Sync-layer lock: recovers from poisoning instead of
                        // letting one panicked client thread cascade unwrap
                        // panics across every other client.
                        shared_error.lock().get_or_insert(err);
                        None
                    }
                }
            }));
        }
        for handle in handles {
            if let Some(result) = handle.join().expect("client thread") {
                per_client.push(result);
            }
        }
    });
    if let Some(err) = shared_error.lock().take() {
        return Err(err);
    }
    let wall = started.elapsed();
    let mut report = LoadReport {
        clients,
        requests: trace.len() as u64,
        hits: 0,
        executed: 0,
        coalesced: 0,
        stale: 0,
        batch_latency_us: HistogramSnapshot::empty(),
        pipeline,
        wall,
    };
    for (hits, executed, coalesced, stale, latencies) in per_client {
        report.hits += hits;
        report.executed += executed;
        report.coalesced += coalesced;
        report.stale += stale;
        report.batch_latency_us.merge(&latencies);
    }
    Ok(report)
}

/// What one [`run_connection_storm`] run measured.
#[derive(Debug, Clone)]
pub struct StormReport {
    /// Connections held open simultaneously.
    pub connections: usize,
    /// Requests each connection sent.
    pub rounds: usize,
    /// Per-request round-trip latency histogram, across every connection.
    pub latency_us: HistogramSnapshot,
    /// The server process's OS thread count, sampled over `SERVER_INFO`
    /// while every storm connection was still open (0 when the platform
    /// cannot report it).
    pub server_threads: u32,
    /// The server runtime's worker count, from the same sample.
    pub server_workers: u32,
    /// The server's live session count from the same sample — the storm
    /// connections plus the sampling connection itself.
    pub server_sessions: u32,
    /// Ready-queue raids on the client-side runtime over the run: the
    /// work-stealing scheduler redistributing connection tasks across the
    /// [`STORM_WORKERS`] workers whenever wake placement left one worker
    /// with a backlog.  Zero would mean the storm never actually exercised
    /// the steal path.
    pub client_steals: u64,
    /// Times a client-side worker parked empty-handed over the run.
    pub client_parks: u64,
    /// Wall-clock of the whole run.
    pub wall: Duration,
}

impl StormReport {
    /// The `q`-quantile (0.0–1.0) of the latency samples, in microseconds.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        self.latency_us.quantile(q)
    }
}

/// A one-shot release gate: storm tasks finish their rounds, report done,
/// and park here with their connection **still open** until the driver has
/// sampled `SERVER_INFO`.
struct ReleaseGate {
    fired: AtomicBool,
    wakers: Mutex<Vec<Waker>>,
}

impl ReleaseGate {
    fn poll_wait(&self, cx: &mut Context<'_>) -> Poll<()> {
        if self.fired.load(Ordering::SeqCst) {
            return Poll::Ready(());
        }
        let mut wakers = self.wakers.lock();
        if self.fired.load(Ordering::SeqCst) {
            return Poll::Ready(());
        }
        wakers.push(cx.waker().clone());
        Poll::Pending
    }

    fn fire(&self) {
        if self.fired.swap(true, Ordering::SeqCst) {
            return;
        }
        let woken: Vec<Waker> = std::mem::take(&mut *self.wakers.lock());
        for waker in woken {
            waker.wake();
        }
    }
}

/// How many client-side runtime workers drive a storm.  The point of the
/// exercise: a handful of tasks' worth of threads on each side, regardless
/// of the connection count.
const STORM_WORKERS: usize = 4;

/// Holds `connections` connections open against the server at `addr`
/// simultaneously, sends `rounds` metrics-only `GET`s on each (all
/// connections sweep the same per-round key, so round N misses once and
/// coalesces/hits everywhere else), samples the server's `SERVER_INFO`
/// while every connection is still open, and only then lets go.
///
/// Client-side the connections are async tasks on a [`STORM_WORKERS`]-wide
/// runtime; connects and handshakes are done upfront (blocking, one at a
/// time) so the async phase measures steady-state request traffic.
pub fn run_connection_storm(
    addr: &str,
    connections: usize,
    rounds: usize,
) -> Result<StormReport, ClientError> {
    let connections = connections.max(1);
    let rounds = rounds.max(1);
    let runtime = Arc::new(Runtime::with_workers(STORM_WORKERS));
    let started = Instant::now();

    // Phase 1: blocking connect + handshake, one connection at a time, then
    // hand each stream to the reactor.
    let mut streams = Vec::with_capacity(connections);
    for _ in 0..connections {
        let std_stream = connect_handshaken(addr)?;
        let stream = TcpStream::from_std(&runtime, std_stream)
            .map_err(|err| ClientError::Wire(WireError::Io(err)))?;
        streams.push(stream);
    }

    // Phase 2: one task per connection.
    let done = Arc::new(AtomicUsize::new(0));
    let gate = Arc::new(ReleaseGate {
        fired: AtomicBool::new(false),
        wakers: Mutex::new(Vec::new()),
    });
    let first_error: Arc<Mutex<Option<ClientError>>> = Arc::new(Mutex::new(None));
    let mut tasks = Vec::with_capacity(connections);
    for stream in streams {
        let done = Arc::clone(&done);
        let gate = Arc::clone(&gate);
        let first_error = Arc::clone(&first_error);
        tasks.push(runtime.spawn(async move {
            let run = async {
                let mut latencies = HistogramSnapshot::empty();
                for round in 0..rounds {
                    let request = Request::Get(GetRequest::metrics_only(
                        format!("SELECT storm_round{round} FROM stormload"),
                        (round as u64 + 1) * 1_000,
                        1_024,
                        500,
                    ));
                    let body = wire::encode_request(round as u64, &request);
                    let sent = Instant::now();
                    wire::write_frame_async(&stream, &body).await?;
                    let reply =
                        wire::read_frame_async(&stream)
                            .await?
                            .ok_or(WireError::Truncated {
                                context: "response frame",
                            })?;
                    let (id, response) = wire::decode_response(&reply)?;
                    if id != round as u64 {
                        return Err(WireError::Protocol(format!(
                            "response id {id} does not match request id {round}"
                        )));
                    }
                    if let Response::Error { message } = response {
                        return Err(WireError::Protocol(format!("server error: {message}")));
                    }
                    latencies.record(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
                }
                Ok::<HistogramSnapshot, WireError>(latencies)
            };
            let result = run.await;
            // Done is reported on the error path too, or the driver would
            // wait for a connection that will never finish.
            done.fetch_add(1, Ordering::SeqCst);
            let latencies = match result {
                Ok(latencies) => Some(latencies),
                Err(err) => {
                    first_error.lock().get_or_insert(ClientError::Wire(err));
                    None
                }
            };
            // Park with the connection open until SERVER_INFO is sampled.
            poll_fn(|cx| gate.poll_wait(cx)).await;
            latencies
        }));
    }

    // Phase 3: wait for every connection to finish its rounds, then sample
    // the server's shape while all of them are still open.
    let deadline = Instant::now() + Duration::from_secs(120);
    while done.load(Ordering::SeqCst) < connections {
        if Instant::now() >= deadline {
            gate.fire();
            return Err(ClientError::Server {
                message: "connection storm timed out waiting for rounds".to_owned(),
            });
        }
        thread::sleep(Duration::from_millis(2));
    }
    let info = Client::connect(addr).and_then(|mut admin| admin.server_info());
    gate.fire();

    let mut latency_us = HistogramSnapshot::empty();
    for task in tasks {
        if let Ok(Some(latencies)) = block_on(task) {
            latency_us.merge(&latencies);
        }
    }
    if let Some(err) = first_error.lock().take() {
        return Err(err);
    }
    let (server_threads, server_workers, server_sessions) = info?;
    let scheduler = runtime.scheduler_stats();
    Ok(StormReport {
        connections,
        rounds,
        latency_us,
        server_threads,
        server_workers,
        server_sessions,
        client_steals: scheduler.steals,
        client_parks: scheduler.parks,
        wall: started.elapsed(),
    })
}

/// Options for [`run_chaos_load`].
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client sends.
    pub rounds: usize,
    /// Distinct query keys the clients sweep (shared across clients, so
    /// concurrent misses coalesce and repeat visits hit or go stale).
    pub keyspace: usize,
    /// Declared retrieved-set size per key — together with the server's
    /// capacity this sets the eviction pressure that forces refetches.
    pub result_bytes: u64,
    /// Declared execution cost per key, in blocks.
    pub cost_blocks: u64,
    /// Simulated execution time per fetch, in microseconds.
    pub fetch_delay_us: u32,
    /// Client-side read timeout: the escape hatch from a stalled
    /// connection (a timed-out read is treated as connection loss and
    /// retried on a fresh connection).
    pub read_timeout: Duration,
    /// Per-client retry policy for reconnects and `BUSY` pacing.
    pub retry: RetryPolicy,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            clients: 8,
            rounds: 200,
            keyspace: 256,
            result_bytes: 32 << 10,
            cost_blocks: 500,
            fetch_delay_us: 200,
            read_timeout: Duration::from_millis(500),
            retry: RetryPolicy {
                max_attempts: 5,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(50),
                jitter_seed: 0xC4A0_5EED,
            },
        }
    }
}

/// What one [`run_chaos_load`] run observed, client-side tallies plus the
/// server's final snapshot.  Every request lands in exactly one bucket, so
/// `ok() + fetch_errors + busy + reconnects + unexplained == requests`.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Number of client connections.
    pub clients: usize,
    /// Total requests attempted (client-visible; internal retries of one
    /// request are not double-counted).
    pub requests: u64,
    /// Requests answered from cache.
    pub hits: u64,
    /// Requests that led an execution.
    pub executed: u64,
    /// Requests coalesced onto another connection's execution.
    pub coalesced: u64,
    /// Requests degraded to a stale last-known-good value.
    pub stale: u64,
    /// Requests answered with a terminal fetch failure — *explained*: the
    /// fault plan injected those failures.
    pub fetch_errors: u64,
    /// Requests still `BUSY` after the client's retry budget — *explained*:
    /// the server was configured to shed.
    pub busy: u64,
    /// Requests lost to a connection the client had to replace (plan
    /// resets, stalls caught by the read timeout) — *explained*.
    pub reconnects: u64,
    /// Errors the fault plan does **not** account for.  The chaos gates
    /// require this to be zero.
    pub unexplained: u64,
    /// Per-request round-trip latency histogram (successful requests only,
    /// including any internal retry pacing they absorbed).
    pub latency_us: HistogramSnapshot,
    /// Wall-clock of the whole run.
    pub wall: Duration,
    /// The server's final statistics (includes the shed counter the server
    /// folds in).
    pub snapshot: StatsSnapshot,
    /// A `METRICS` exposition scraped **while the storm was still
    /// running** — the live-observability proof: the scrape was issued
    /// before any client finished, so its counters reflect a server under
    /// fire, not a post-mortem.  `None` only if every scrape attempt failed.
    pub mid_storm_metrics: Option<MetricsSnapshot>,
}

impl ChaosReport {
    /// Requests that completed with a usable value (fresh or stale).
    pub fn ok(&self) -> u64 {
        self.hits + self.executed + self.coalesced + self.stale
    }

    /// The `q`-quantile (0.0–1.0) of the latency samples, in microseconds.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        self.latency_us.quantile(q)
    }
}

/// One chaos client's tallies (the tuple the threads report back).
#[derive(Debug, Clone)]
struct ChaosTally {
    hits: u64,
    executed: u64,
    coalesced: u64,
    stale: u64,
    fetch_errors: u64,
    busy: u64,
    reconnects: u64,
    unexplained: u64,
    latency_us: HistogramSnapshot,
}

impl Default for ChaosTally {
    fn default() -> Self {
        ChaosTally {
            hits: 0,
            executed: 0,
            coalesced: 0,
            stale: 0,
            fetch_errors: 0,
            busy: 0,
            reconnects: 0,
            unexplained: 0,
            latency_us: HistogramSnapshot::empty(),
        }
    }
}

/// Drives a barrier-released storm of retrying clients against the server
/// at `addr` and classifies every outcome: the measurement half of the
/// fault-injection harness (the injection half is the
/// [`FaultPlan`](crate::fault::FaultPlan) installed server-side).
///
/// Unlike [`run_load`], client errors do not abort the run — surviving
/// injected faults is the point.  Each client classifies what it saw
/// (fresh value, stale value, injected fetch failure, shed, replaced
/// connection) and anything that no plan category explains lands in
/// [`ChaosReport::unexplained`].
pub fn run_chaos_load(addr: &str, options: &ChaosOptions) -> Result<ChaosReport, ClientError> {
    let clients = options.clients.max(1);
    let rounds = options.rounds.max(1);
    let keyspace = options.keyspace.max(1);
    let barrier = Arc::new(Barrier::new(clients));
    let started = Instant::now();
    let mut tallies: Vec<ChaosTally> = Vec::with_capacity(clients);
    let storm_done = Arc::new(AtomicBool::new(false));
    let mid_storm_metrics: Arc<Mutex<Option<MetricsSnapshot>>> = Arc::new(Mutex::new(None));
    thread::scope(|scope| {
        // The mid-storm scraper: a dedicated admin connection polling the
        // `METRICS` opcode while the clients are still firing.  A scrape is
        // kept only when it was *issued* before the storm finished, so the
        // stored exposition is guaranteed to be a picture of a server under
        // load.
        {
            let storm_done = Arc::clone(&storm_done);
            let slot = Arc::clone(&mid_storm_metrics);
            let retry = options.retry.clone();
            let read_timeout = options.read_timeout;
            scope.spawn(move || {
                let Ok(mut admin) =
                    Client::connect_with_retries(addr, 20, Duration::from_millis(20))
                else {
                    return;
                };
                admin.set_retry_policy(retry);
                admin.set_read_timeout(Some(read_timeout));
                while !storm_done.load(Ordering::SeqCst) {
                    if let Ok(snapshot) = admin.metrics() {
                        *slot.lock() = Some(snapshot);
                    }
                    thread::sleep(Duration::from_millis(10));
                }
            });
        }
        let mut handles = Vec::new();
        for client_index in 0..clients {
            let barrier = Arc::clone(&barrier);
            let options = options.clone();
            handles.push(scope.spawn(move || {
                let mut tally = ChaosTally::default();
                let connect = |tally: &mut ChaosTally| -> Option<Client> {
                    match Client::connect_with_retries(addr, 20, Duration::from_millis(20)) {
                        Ok(mut client) => {
                            client.set_retry_policy(options.retry.clone());
                            client.set_read_timeout(Some(options.read_timeout));
                            Some(client)
                        }
                        Err(_) => {
                            tally.unexplained += 1;
                            None
                        }
                    }
                };
                let mut client = connect(&mut tally);
                barrier.wait();
                for round in 0..rounds {
                    let Some(live) = client.as_mut() else {
                        // Could not even connect: every remaining request of
                        // this client is unexplained (the plan never cuts the
                        // server off entirely).
                        tally.unexplained += 1;
                        continue;
                    };
                    // A deterministic sweep with per-client stride, so
                    // clients collide on keys (coalescing, hits) while still
                    // covering the whole keyspace (eviction pressure).
                    let key_index = (client_index + round * 7) % keyspace;
                    let request = GetRequest {
                        key: format!("SELECT payload FROM chaos WHERE k = {key_index}"),
                        timestamp_us: ((round * clients + client_index) as u64 + 1) * 1_000,
                        result_bytes: options.result_bytes,
                        cost_blocks: options.cost_blocks,
                        fetch_delay_us: options.fetch_delay_us,
                        deadline_hint_us: 0,
                        payload_prefix_cap: 0,
                    };
                    let sent = Instant::now();
                    match live.get(request) {
                        Ok(response) => {
                            match response.source {
                                WireSource::Hit => tally.hits += 1,
                                WireSource::Executed => tally.executed += 1,
                                WireSource::Coalesced => tally.coalesced += 1,
                                WireSource::Stale => tally.stale += 1,
                            }
                            tally.latency_us.record(
                                u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX),
                            );
                        }
                        Err(ClientError::Server { message })
                            if message.starts_with("fetch failed") =>
                        {
                            tally.fetch_errors += 1;
                        }
                        Err(ClientError::Busy { .. }) => tally.busy += 1,
                        Err(ClientError::Wire(_) | ClientError::Connect { .. }) => {
                            // The client's own retry budget is already spent:
                            // this connection is gone (plan reset, or a stall
                            // caught by the read timeout).  Replace it.
                            tally.reconnects += 1;
                            client = connect(&mut tally);
                        }
                        Err(_) => tally.unexplained += 1,
                    }
                }
                tally
            }));
        }
        for handle in handles {
            tallies.push(handle.join().expect("chaos client thread"));
        }
        storm_done.store(true, Ordering::SeqCst);
    });
    let wall = started.elapsed();

    // The storm is over; fetch the server's final snapshot on a fresh admin
    // connection (retrying: the plan may target whatever conn id it gets).
    let mut admin = Client::connect_with_retries(addr, 20, Duration::from_millis(20))?;
    admin.set_retry_policy(options.retry.clone());
    admin.set_read_timeout(Some(options.read_timeout));
    let snapshot = admin.stats()?;

    let mut report = ChaosReport {
        clients,
        requests: (clients * rounds) as u64,
        hits: 0,
        executed: 0,
        coalesced: 0,
        stale: 0,
        fetch_errors: 0,
        busy: 0,
        reconnects: 0,
        unexplained: 0,
        latency_us: HistogramSnapshot::empty(),
        wall,
        snapshot,
        mid_storm_metrics: mid_storm_metrics.lock().take(),
    };
    for tally in tallies {
        report.hits += tally.hits;
        report.executed += tally.executed;
        report.coalesced += tally.coalesced;
        report.stale += tally.stale;
        report.fetch_errors += tally.fetch_errors;
        report.busy += tally.busy;
        report.reconnects += tally.reconnects;
        report.unexplained += tally.unexplained;
        report.latency_us.merge(&tally.latency_us);
    }
    Ok(report)
}
