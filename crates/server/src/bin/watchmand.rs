//! `watchmand` — the WATCHMAN cache server.
//!
//! Binds a TCP listener and serves the wire protocol until a client sends
//! `SHUTDOWN` (the `loadgen --shutdown` flag does, and so does
//! `Client::shutdown_server`).
//!
//! ```text
//! watchmand [--addr HOST:PORT] [--shards N] [--capacity-bytes N]
//!           [--policy lnc-ra|lnc-r|lru|lru-k|lfu|lcs|gds] [--k N]
//!           [--workers N] [--rebalance-ms N] [--metrics-interval SECS]
//! ```
//!
//! `--metrics-interval SECS` logs a one-line telemetry summary (lookup
//! counts by outcome, retries, sheds, evictions, scheduler steals) to
//! stderr every `SECS` seconds — the always-on operational signal; the
//! full exposition stays behind the `METRICS` opcode.

use std::process::ExitCode;
use std::time::Duration;

use watchman_core::engine::{PolicyKind, RebalanceConfig};
use watchman_server::{serve, ServerConfig};

fn parse_policy(name: &str, k: usize) -> Option<PolicyKind> {
    Some(match name {
        "lnc-ra" => PolicyKind::LncRa { k },
        "lnc-r" => PolicyKind::LncR { k },
        "lru" => PolicyKind::Lru,
        "lru-k" => PolicyKind::LruK { k },
        "lfu" => PolicyKind::Lfu,
        "lcs" => PolicyKind::Lcs,
        "gds" => PolicyKind::GreedyDualSize,
        _ => return None,
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: watchmand [--addr HOST:PORT] [--shards N] [--capacity-bytes N]\n\
         \x20                [--policy lnc-ra|lnc-r|lru|lru-k|lfu|lcs|gds] [--k N]\n\
         \x20                [--workers N] [--rebalance-ms N] [--metrics-interval SECS]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut config = ServerConfig {
        addr: "127.0.0.1:4817".to_owned(),
        ..ServerConfig::default()
    };
    let mut policy_name = "lnc-ra".to_owned();
    let mut k = 4usize;
    let mut rebalance_ms: Option<u64> = None;
    let mut metrics_interval_secs: u64 = 0;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |flag: &str| -> Option<String> {
            let value = iter.next().cloned();
            if value.is_none() {
                eprintln!("watchmand: {flag} needs a value");
            }
            value
        };
        match flag.as_str() {
            "--addr" => match value("--addr") {
                Some(v) => config.addr = v,
                None => return usage(),
            },
            "--shards" => match value("--shards").and_then(|v| v.parse().ok()) {
                Some(v) => config.shards = v,
                None => return usage(),
            },
            "--capacity-bytes" => match value("--capacity-bytes").and_then(|v| v.parse().ok()) {
                Some(v) => config.capacity_bytes = v,
                None => return usage(),
            },
            "--policy" => match value("--policy") {
                Some(v) => policy_name = v,
                None => return usage(),
            },
            "--k" => match value("--k").and_then(|v| v.parse().ok()) {
                Some(v) => k = v,
                None => return usage(),
            },
            "--workers" => match value("--workers").and_then(|v| v.parse().ok()) {
                Some(v) => config.runtime_workers = v,
                None => return usage(),
            },
            "--rebalance-ms" => match value("--rebalance-ms").and_then(|v| v.parse().ok()) {
                Some(v) => rebalance_ms = Some(v),
                None => return usage(),
            },
            "--metrics-interval" => {
                match value("--metrics-interval").and_then(|v| v.parse().ok()) {
                    Some(v) => metrics_interval_secs = v,
                    None => return usage(),
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("watchmand: unknown flag {other}");
                return usage();
            }
        }
    }

    let Some(policy) = parse_policy(&policy_name, k) else {
        eprintln!("watchmand: unknown policy {policy_name}");
        return usage();
    };
    config.policy = policy;
    if let Some(ms) = rebalance_ms {
        config.rebalance =
            Some(RebalanceConfig::new().with_period(Duration::from_millis(ms.max(1))));
    }

    let shards = config.shards;
    let capacity = config.capacity_bytes;
    let handle = match serve(config) {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("watchmand: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "watchmand listening on {} ({policy_name}, {shards} shards, {capacity} bytes)",
        handle.addr()
    );
    if metrics_interval_secs > 0 {
        // A detached logger thread: dies with the process, so shutdown
        // needs no extra plumbing.
        let interval = Duration::from_secs(metrics_interval_secs);
        std::thread::Builder::new()
            .name("watchmand-metrics".to_owned())
            .spawn(move || loop {
                std::thread::sleep(interval);
                let telemetry = watchman_core::telemetry::global();
                eprintln!(
                    "metrics: hits={} executed={} coalesced={} stale={} errors={} \
                     retries={} sheds={} evictions={} breaker_trips={} trace_events={}",
                    telemetry.lookup_hit_us.snapshot().count,
                    telemetry.lookup_executed_us.snapshot().count,
                    telemetry.lookup_coalesced_us.snapshot().count,
                    telemetry.lookup_stale_us.snapshot().count,
                    telemetry.lookup_error_us.snapshot().count,
                    telemetry.fetch_retries.get(),
                    telemetry.sheds.get(),
                    telemetry.evictions.get(),
                    telemetry.breaker_trips.get(),
                    telemetry.recorder.events_recorded(),
                );
            })
            .expect("spawn metrics logger thread");
    }
    // Serve until a client sends SHUTDOWN.
    handle.wait();
    println!("watchmand: drained, exiting");
    ExitCode::SUCCESS
}
