//! `loadgen` — drives the simulator's workloads against a `watchmand`
//! server over real sockets, from N concurrent client connections, and
//! reports cost savings ratio and client-observed latency.
//!
//! ```text
//! loadgen (--addr HOST:PORT | --spawn) [--workload tpcd_skewed|set_query_skewed|tpcd]
//!         [--clients N] [--queries N] [--pipeline N] [--fetch-delay-us N]
//!         [--cache-fraction F] [--connections N] [--rounds N] [--quick] [--shutdown]
//! ```
//!
//! `--spawn` starts a `watchmand` in-process on an ephemeral loopback port
//! (what CI smokes); `--shutdown` sends the `SHUTDOWN` opcode when done so
//! a backgrounded `watchmand` exits cleanly.
//!
//! `--connections N` switches to the **connection storm**: N simultaneously
//! open connections (256, 1 000, …) each send `--rounds` requests, and the
//! server's `SERVER_INFO` is sampled while all of them are open.  The run
//! *fails* if the server's thread count scales with the connection count —
//! the proof that sessions are tasks on the IO reactor, not threads.

use std::process::ExitCode;
use std::time::Duration;

use watchman_server::{run_connection_storm, serve, Client, LoadOptions, ServerConfig};
use watchman_sim::{run_result_from_snapshot, ExperimentScale, Workload};

struct Args {
    addr: Option<String>,
    spawn: bool,
    workload: String,
    clients: usize,
    queries: usize,
    pipeline: usize,
    fetch_delay_us: u32,
    cache_fraction: f64,
    connections: usize,
    rounds: usize,
    shutdown: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: None,
            spawn: false,
            workload: "tpcd_skewed".to_owned(),
            clients: 4,
            queries: 4_000,
            pipeline: 8,
            fetch_delay_us: 0,
            cache_fraction: 0.01,
            connections: 0,
            rounds: 4,
            shutdown: false,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen (--addr HOST:PORT | --spawn)\n\
         \x20              [--workload tpcd_skewed|set_query_skewed|tpcd] [--clients N]\n\
         \x20              [--queries N] [--pipeline N] [--fetch-delay-us N]\n\
         \x20              [--cache-fraction F] [--connections N] [--rounds N]\n\
         \x20              [--quick] [--shutdown]"
    );
    ExitCode::FAILURE
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args::default();
    let mut quick = false;
    let mut explicit_clients = None;
    let mut explicit_queries = None;
    let mut explicit_rounds = None;
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = raw.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--addr" => args.addr = Some(iter.next().ok_or_else(usage)?.clone()),
            "--spawn" => args.spawn = true,
            "--workload" => args.workload = iter.next().ok_or_else(usage)?.clone(),
            "--clients" => {
                explicit_clients = Some(iter.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?)
            }
            "--queries" => {
                explicit_queries = Some(iter.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?)
            }
            "--pipeline" => {
                args.pipeline = iter.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?
            }
            "--fetch-delay-us" => {
                args.fetch_delay_us = iter.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?
            }
            "--cache-fraction" => {
                args.cache_fraction = iter.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?
            }
            "--connections" => {
                args.connections = iter.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?
            }
            "--rounds" => {
                explicit_rounds = Some(iter.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?)
            }
            "--quick" => quick = true,
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => return Err(usage()),
            other => {
                eprintln!("loadgen: unknown flag {other}");
                return Err(usage());
            }
        }
    }
    // --quick shrinks the *defaults* only; explicit --clients/--queries win
    // regardless of flag order.
    if quick {
        args.queries = 600;
        args.clients = 4;
        args.rounds = 2;
    }
    if let Some(clients) = explicit_clients {
        args.clients = clients;
    }
    if let Some(queries) = explicit_queries {
        args.queries = queries;
    }
    if let Some(rounds) = explicit_rounds {
        args.rounds = rounds;
    }
    if args.addr.is_none() && !args.spawn {
        eprintln!("loadgen: need --addr or --spawn");
        return Err(usage());
    }
    Ok(args)
}

/// Ceiling on the server-side thread count a storm tolerates, however many
/// connections it opens.  Workers + reactor + supervisor + client-side
/// storm machinery (under `--spawn` the server shares the process) stay
/// comfortably below this; a thread-per-session server blows through it by
/// an order of magnitude at 256 connections.
const MAX_STORM_THREADS: u32 = 32;

fn run_storm(addr: &str, connections: usize, rounds: usize, shutdown: bool) -> ExitCode {
    println!(
        "loadgen: storm of {connections} concurrent connections ({rounds} rounds) against {addr}"
    );
    let report = match run_connection_storm(addr, connections, rounds) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("loadgen: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "  sessions {} (storm {})  server threads {}  runtime workers {}",
        report.server_sessions, report.connections, report.server_threads, report.server_workers,
    );
    println!(
        "  latency p50 {} us  p95 {} us  p99 {} us  wall {:.2} s",
        report.latency_quantile_us(0.50),
        report.latency_quantile_us(0.95),
        report.latency_quantile_us(0.99),
        report.wall.as_secs_f64(),
    );
    println!(
        "  client scheduler: {} steals, {} parks across the storm",
        report.client_steals, report.client_parks,
    );

    // The point of the storm: sessions are tasks, not threads.
    if report.server_sessions < report.connections as u32 {
        eprintln!(
            "loadgen: server saw {} sessions, expected at least the {} storm connections",
            report.server_sessions, report.connections
        );
        return ExitCode::FAILURE;
    }
    // threads == 0 means procfs is unavailable; the session-count proof
    // above still holds there, so only the thread bound is skipped.
    if report.server_threads > MAX_STORM_THREADS {
        eprintln!(
            "loadgen: {} server threads for {} connections — sessions are costing threads",
            report.server_threads, report.connections
        );
        return ExitCode::FAILURE;
    }
    println!(
        "loadgen: thread count is bounded by the pool, not the connection count ({} threads / {} sessions)",
        report.server_threads, report.server_sessions
    );

    if shutdown {
        let mut client = match Client::connect_with_retries(addr, 5, Duration::from_millis(50)) {
            Ok(client) => client,
            Err(err) => {
                eprintln!("loadgen: {err}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(err) = client.shutdown_server() {
            eprintln!("loadgen: shutdown failed: {err}");
            return ExitCode::FAILURE;
        }
        println!("loadgen: server drained");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(code) => return code,
    };

    let workload = match args.workload.as_str() {
        "tpcd_skewed" => Workload::tpcd_skewed(ExperimentScale::quick(args.queries)),
        "set_query_skewed" => Workload::set_query_skewed(ExperimentScale::quick(args.queries)),
        "tpcd" => Workload::tpcd(ExperimentScale::quick(args.queries)),
        other => {
            eprintln!("loadgen: unknown workload {other}");
            return usage();
        }
    };
    let capacity = (workload.database_bytes() as f64 * args.cache_fraction).round() as u64;

    // --spawn: an in-process watchmand on an ephemeral loopback port (the
    // exact server the standalone binary runs).
    let spawned = if args.spawn {
        match serve(ServerConfig {
            capacity_bytes: capacity,
            ..ServerConfig::default()
        }) {
            Ok(handle) => Some(handle),
            Err(err) => {
                eprintln!("loadgen: {err}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let addr = match (&args.addr, &spawned) {
        (Some(addr), _) => addr.clone(),
        (None, Some(handle)) => handle.addr().to_string(),
        (None, None) => unreachable!("validated in parse_args"),
    };

    // --connections: the high-concurrency storm instead of the trace replay.
    if args.connections > 0 {
        let code = run_storm(&addr, args.connections, args.rounds, args.shutdown);
        if let Some(handle) = spawned {
            handle.join();
        }
        return code;
    }

    println!(
        "loadgen: {} queries of {} over {} clients (pipeline {}) against {addr}",
        workload.trace.len(),
        args.workload,
        args.clients,
        args.pipeline
    );

    let options = LoadOptions {
        clients: args.clients,
        pipeline: args.pipeline,
        fetch_delay_us: args.fetch_delay_us,
        payload_prefix_cap: 0,
    };
    let report = match watchman_server::run_load(&addr, &workload.trace, &options) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("loadgen: {err}");
            return ExitCode::FAILURE;
        }
    };

    let mut client = match Client::connect_with_retries(&addr, 5, Duration::from_millis(50)) {
        Ok(client) => client,
        Err(err) => {
            eprintln!("loadgen: {err}");
            return ExitCode::FAILURE;
        }
    };
    let snapshot = match client.stats() {
        Ok(snapshot) => snapshot,
        Err(err) => {
            eprintln!("loadgen: {err}");
            return ExitCode::FAILURE;
        }
    };
    let result = run_result_from_snapshot(
        format!("{} over wire", args.workload),
        capacity,
        args.cache_fraction,
        &snapshot,
    );

    println!(
        "  csr {:.4}  hr {:.4}  refs {}  hits {}  coalesced {}  misses {}",
        result.cost_savings_ratio,
        result.hit_ratio,
        snapshot.total.references,
        snapshot.total.hits,
        snapshot.total.coalesced,
        snapshot.total.misses(),
    );
    println!(
        "  throughput {:.0} q/s  batch latency mean {:.0} us  p50 {} us  p95 {} us  p99 {} us",
        report.throughput_qps(),
        report.latency_mean_us(),
        report.latency_quantile_us(0.50),
        report.latency_quantile_us(0.95),
        report.latency_quantile_us(0.99),
    );

    // Sanity: every reference must be accounted exactly once.
    if snapshot.total.references
        != snapshot.total.hits + snapshot.total.coalesced + snapshot.total.misses()
    {
        eprintln!("loadgen: reference accounting violated");
        return ExitCode::FAILURE;
    }

    if args.shutdown {
        if let Err(err) = client.shutdown_server() {
            eprintln!("loadgen: shutdown failed: {err}");
            return ExitCode::FAILURE;
        }
        println!("loadgen: server drained");
    }
    if let Some(handle) = spawned {
        handle.join();
    }
    ExitCode::SUCCESS
}
