//! `loadgen` — drives the simulator's workloads against a `watchmand`
//! server over real sockets, from N concurrent client connections, and
//! reports cost savings ratio and client-observed latency.
//!
//! ```text
//! loadgen (--addr HOST:PORT | --spawn) [--workload tpcd_skewed|set_query_skewed|tpcd]
//!         [--clients N] [--queries N] [--pipeline N] [--fetch-delay-us N]
//!         [--cache-fraction F] [--connections N] [--rounds N] [--quick] [--shutdown]
//! ```
//!
//! `--spawn` starts a `watchmand` in-process on an ephemeral loopback port
//! (what CI smokes); `--shutdown` sends the `SHUTDOWN` opcode when done so
//! a backgrounded `watchmand` exits cleanly.
//!
//! `--connections N` switches to the **connection storm**: N simultaneously
//! open connections (256, 1 000, …) each send `--rounds` requests, and the
//! server's `SERVER_INFO` is sampled while all of them are open.  The run
//! *fails* if the server's thread count scales with the connection count —
//! the proof that sessions are tasks on the IO reactor, not threads.
//!
//! `--chaos PLAN` switches to the **fault-injection scorecard** (implies
//! `--spawn`: the fault plan is installed server-side at bind time).  PLAN
//! is `empty` or `canonical`, optionally `:SEED`.  Two chaos storms run
//! against servers configured for degradation (stale serving, breaker,
//! overload shedding, read deadlines): a fault-free baseline under the
//! empty plan, then the requested plan.  The run *fails* unless every
//! client-observed error is explained by the plan, the degradation paths
//! actually engaged (stale serves and sheds observed), and tail latency
//! stayed within 3x of the baseline.  The scorecard lands in
//! `BENCH_fault_injection.json` at the workspace root.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use watchman_core::engine::{
    BreakerConfig, FailureConfig, NegativeCacheConfig, RetryPolicy, StalenessPolicy,
};
use watchman_server::{
    run_chaos_load, run_connection_storm, serve, ChaosOptions, ChaosReport, Client, FaultPlan,
    LoadOptions, ServerConfig, ServerHandle,
};
use watchman_sim::{run_result_from_snapshot, ExperimentScale, Workload};

struct Args {
    addr: Option<String>,
    spawn: bool,
    workload: String,
    clients: usize,
    queries: usize,
    pipeline: usize,
    fetch_delay_us: u32,
    cache_fraction: f64,
    connections: usize,
    rounds: usize,
    chaos: Option<String>,
    metrics: bool,
    shutdown: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: None,
            spawn: false,
            workload: "tpcd_skewed".to_owned(),
            clients: 4,
            queries: 4_000,
            pipeline: 8,
            fetch_delay_us: 0,
            cache_fraction: 0.01,
            connections: 0,
            rounds: 4,
            chaos: None,
            metrics: false,
            shutdown: false,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen (--addr HOST:PORT | --spawn)\n\
         \x20              [--workload tpcd_skewed|set_query_skewed|tpcd] [--clients N]\n\
         \x20              [--queries N] [--pipeline N] [--fetch-delay-us N]\n\
         \x20              [--cache-fraction F] [--connections N] [--rounds N]\n\
         \x20              [--chaos empty|canonical[:SEED]] [--metrics] [--quick] [--shutdown]"
    );
    ExitCode::FAILURE
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args::default();
    let mut quick = false;
    let mut explicit_clients = None;
    let mut explicit_queries = None;
    let mut explicit_rounds = None;
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = raw.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--addr" => args.addr = Some(iter.next().ok_or_else(usage)?.clone()),
            "--spawn" => args.spawn = true,
            "--workload" => args.workload = iter.next().ok_or_else(usage)?.clone(),
            "--clients" => {
                explicit_clients = Some(iter.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?)
            }
            "--queries" => {
                explicit_queries = Some(iter.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?)
            }
            "--pipeline" => {
                args.pipeline = iter.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?
            }
            "--fetch-delay-us" => {
                args.fetch_delay_us = iter.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?
            }
            "--cache-fraction" => {
                args.cache_fraction = iter.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?
            }
            "--connections" => {
                args.connections = iter.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?
            }
            "--rounds" => {
                explicit_rounds = Some(iter.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?)
            }
            "--chaos" => args.chaos = Some(iter.next().ok_or_else(usage)?.clone()),
            "--metrics" => args.metrics = true,
            "--quick" => quick = true,
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => return Err(usage()),
            other => {
                eprintln!("loadgen: unknown flag {other}");
                return Err(usage());
            }
        }
    }
    // --quick shrinks the *defaults* only; explicit --clients/--queries win
    // regardless of flag order.
    if quick {
        args.queries = 600;
        args.clients = 4;
        args.rounds = 2;
    }
    if args.chaos.is_some() {
        // Chaos defaults mirror ChaosOptions; --quick shortens the storm.
        args.clients = 8;
        args.rounds = if quick { 80 } else { 200 };
    }
    if let Some(clients) = explicit_clients {
        args.clients = clients;
    }
    if let Some(queries) = explicit_queries {
        args.queries = queries;
    }
    if let Some(rounds) = explicit_rounds {
        args.rounds = rounds;
    }
    if args.chaos.is_some() {
        if args.addr.is_some() {
            eprintln!(
                "loadgen: --chaos installs the fault plan server-side; use --spawn, not --addr"
            );
            return Err(usage());
        }
        // The fault plan must be wired into the server config at bind time.
        args.spawn = true;
    }
    if args.addr.is_none() && !args.spawn {
        eprintln!("loadgen: need --addr or --spawn");
        return Err(usage());
    }
    Ok(args)
}

/// Ceiling on the server-side thread count a storm tolerates, however many
/// connections it opens.  Workers + reactor + supervisor + client-side
/// storm machinery (under `--spawn` the server shares the process) stay
/// comfortably below this; a thread-per-session server blows through it by
/// an order of magnitude at 256 connections.
const MAX_STORM_THREADS: u32 = 32;

/// `--metrics`: scrape the `METRICS` and `TRACE_DUMP` admin opcodes from a
/// running server, assert the exposition parses at the expected schema
/// version with the core metric families present, and print a one-screen
/// summary.  This is the CI proof that a *spawned* `watchmand` actually
/// serves the telemetry surface — not just the in-process servers the
/// tests build.
fn run_metrics_scrape(addr: &str, shutdown: bool) -> ExitCode {
    let mut client = match Client::connect_with_retries(addr, 5, Duration::from_millis(50)) {
        Ok(client) => client,
        Err(err) => {
            eprintln!("loadgen: {err}");
            return ExitCode::FAILURE;
        }
    };
    let metrics = match client.metrics() {
        Ok(metrics) => metrics,
        Err(err) => {
            eprintln!("loadgen: METRICS scrape failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    if metrics.schema != watchman_core::telemetry::METRICS_SCHEMA_VERSION {
        eprintln!(
            "loadgen: METRICS schema {} does not match the client's expected {}",
            metrics.schema,
            watchman_core::telemetry::METRICS_SCHEMA_VERSION
        );
        return ExitCode::FAILURE;
    }
    // The registry always emits the full catalog, so an absent family means
    // the exposition is broken, not that the server has been idle.
    for (family, present) in [
        ("counters", !metrics.counters.is_empty()),
        (
            "gauge engine.shard_count",
            metrics.gauge("engine.shard_count") > 0,
        ),
        (
            "histogram engine.lookup.hit_us",
            metrics.histogram("engine.lookup.hit_us").is_some(),
        ),
        (
            "histogram runtime.task.poll_us",
            metrics.histogram("runtime.task.poll_us").is_some(),
        ),
    ] {
        if !present {
            eprintln!("loadgen: METRICS exposition is missing {family}");
            return ExitCode::FAILURE;
        }
    }
    let lookups: u64 = [
        "engine.lookup.hit_us",
        "engine.lookup.executed_us",
        "engine.lookup.coalesced_us",
        "engine.lookup.stale_us",
        "engine.lookup.error_us",
    ]
    .iter()
    .filter_map(|name| metrics.histogram(name))
    .map(|h| h.count)
    .sum();
    println!(
        "loadgen: METRICS schema v{} from {addr}: {} counters, {} gauges, {} histograms; \
         {} lookups, {} retries, {} sheds, uptime {:.1} s",
        metrics.schema,
        metrics.counters.len(),
        metrics.gauges.len(),
        metrics.histograms.len(),
        lookups,
        metrics.counter("engine.fetch.retries"),
        metrics.counter("server.sheds"),
        metrics.uptime_us as f64 / 1e6,
    );
    match client.trace_dump() {
        Ok(dump) => println!(
            "loadgen: TRACE_DUMP schema v{}: {} events in the ring ({} recorded overall)",
            dump.schema,
            dump.events.len(),
            dump.recorded,
        ),
        Err(err) => {
            eprintln!("loadgen: TRACE_DUMP scrape failed: {err}");
            return ExitCode::FAILURE;
        }
    }
    if shutdown {
        if let Err(err) = client.shutdown_server() {
            eprintln!("loadgen: shutdown failed: {err}");
            return ExitCode::FAILURE;
        }
        println!("loadgen: server drained");
    }
    ExitCode::SUCCESS
}

fn run_storm(addr: &str, connections: usize, rounds: usize, shutdown: bool) -> ExitCode {
    println!(
        "loadgen: storm of {connections} concurrent connections ({rounds} rounds) against {addr}"
    );
    let report = match run_connection_storm(addr, connections, rounds) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("loadgen: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "  sessions {} (storm {})  server threads {}  runtime workers {}",
        report.server_sessions, report.connections, report.server_threads, report.server_workers,
    );
    println!(
        "  latency p50 {} us  p95 {} us  p99 {} us  wall {:.2} s",
        report.latency_quantile_us(0.50),
        report.latency_quantile_us(0.95),
        report.latency_quantile_us(0.99),
        report.wall.as_secs_f64(),
    );
    println!(
        "  client scheduler: {} steals, {} parks across the storm",
        report.client_steals, report.client_parks,
    );

    // The point of the storm: sessions are tasks, not threads.
    if report.server_sessions < report.connections as u32 {
        eprintln!(
            "loadgen: server saw {} sessions, expected at least the {} storm connections",
            report.server_sessions, report.connections
        );
        return ExitCode::FAILURE;
    }
    // threads == 0 means procfs is unavailable; the session-count proof
    // above still holds there, so only the thread bound is skipped.
    if report.server_threads > MAX_STORM_THREADS {
        eprintln!(
            "loadgen: {} server threads for {} connections — sessions are costing threads",
            report.server_threads, report.connections
        );
        return ExitCode::FAILURE;
    }
    println!(
        "loadgen: thread count is bounded by the pool, not the connection count ({} threads / {} sessions)",
        report.server_threads, report.server_sessions
    );

    if shutdown {
        let mut client = match Client::connect_with_retries(addr, 5, Duration::from_millis(50)) {
            Ok(client) => client,
            Err(err) => {
                eprintln!("loadgen: {err}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(err) = client.shutdown_server() {
            eprintln!("loadgen: shutdown failed: {err}");
            return ExitCode::FAILURE;
        }
        println!("loadgen: server drained");
    }
    ExitCode::SUCCESS
}

/// Tail-latency budget for a faulted storm, as a multiple of the fault-free
/// baseline's p99.  Degradation (retries, stale serves, shed-and-retry) may
/// slow the tail, but not collapse it.
const CHAOS_P99_BUDGET: f64 = 3.0;

/// Spawns a `watchmand` configured so every degradation path can engage:
/// a capacity far below the keyspace footprint (refetches — and therefore
/// stale serving of doomed keys — require eviction pressure), stale serving
/// and the circuit breaker enabled, a small admission gate so concurrent
/// executions trip overload shedding, and a read deadline that evicts
/// stalled sessions.
fn chaos_server(plan: Arc<FaultPlan>, options: &ChaosOptions) -> Result<ServerHandle, ExitCode> {
    let footprint = options.keyspace as u64 * options.result_bytes;
    serve(ServerConfig {
        capacity_bytes: footprint / 4,
        failure: FailureConfig {
            retry: RetryPolicy::default(),
            breaker: Some(BreakerConfig::default()),
            staleness: Some(StalenessPolicy {
                max_entries: options.keyspace * 4,
                min_cost_per_byte: 0.0,
                max_age_us: None,
            }),
            negative: NegativeCacheConfig::default(),
        },
        max_inflight: 4,
        read_deadline: Some(Duration::from_millis(250)),
        fault_plan: Some(plan),
        ..ServerConfig::default()
    })
    .map_err(|err| {
        eprintln!("loadgen: {err}");
        ExitCode::FAILURE
    })
}

/// One chaos storm against a freshly spawned server; the server is drained
/// before returning.
fn chaos_storm(
    label: &str,
    plan: Arc<FaultPlan>,
    options: &ChaosOptions,
) -> Result<ChaosReport, ExitCode> {
    let server = chaos_server(plan, options)?;
    let addr = server.addr().to_string();
    let report = run_chaos_load(&addr, options).map_err(|err| {
        eprintln!("loadgen: chaos {label} storm: {err}");
        ExitCode::FAILURE
    })?;
    server.join();
    println!(
        "  {label:<9} {} requests: {} ok ({} hit / {} executed / {} coalesced / {} stale), \
         {} fetch-errors, {} busy, {} reconnects, {} unexplained",
        report.requests,
        report.ok(),
        report.hits,
        report.executed,
        report.coalesced,
        report.stale,
        report.fetch_errors,
        report.busy,
        report.reconnects,
        report.unexplained,
    );
    println!(
        "  {label:<9} p50 {} us  p95 {} us  p99 {} us  wall {:.2} s  \
         server: {} stale-serves, {} sheds, {} retries, {} negative-hits, {} breaker-transitions",
        report.latency_quantile_us(0.50),
        report.latency_quantile_us(0.95),
        report.latency_quantile_us(0.99),
        report.wall.as_secs_f64(),
        report.snapshot.total.stale_serves,
        report.snapshot.sheds,
        report.snapshot.fetch_retries,
        report.snapshot.negative_hits,
        report.snapshot.breaker_transitions,
    );
    match &report.mid_storm_metrics {
        Some(metrics) => println!(
            "  {label:<9} mid-storm METRICS (schema v{}): {} retries, {} stale-serves, \
             {} sheds, {} steals, {} trace-events, fragmentation {}permille",
            metrics.schema,
            metrics.counter("engine.fetch.retries"),
            metrics
                .histogram("engine.lookup.stale_us")
                .map_or(0, |h| h.count),
            metrics.counter("server.sheds"),
            metrics.counter("runtime.scheduler.steals"),
            metrics.counter("telemetry.trace_events"),
            metrics.gauge("engine.fragmentation.used_permille"),
        ),
        None => println!("  {label:<9} mid-storm METRICS: no scrape landed"),
    }
    Ok(report)
}

fn chaos_report_json(report: &ChaosReport) -> String {
    let snapshot =
        serde_json::to_string(&report.snapshot.total).unwrap_or_else(|_| "null".to_owned());
    let mid_storm = match &report.mid_storm_metrics {
        Some(metrics) => format!(
            "{{\"schema\": {}, \"fetch_retries\": {}, \"stale_serves\": {}, \"sheds\": {}, \
             \"scheduler_steals\": {}, \"trace_events\": {}, \"fragmentation_permille\": {}}}",
            metrics.schema,
            metrics.counter("engine.fetch.retries"),
            metrics
                .histogram("engine.lookup.stale_us")
                .map_or(0, |h| h.count),
            metrics.counter("server.sheds"),
            metrics.counter("runtime.scheduler.steals"),
            metrics.counter("telemetry.trace_events"),
            metrics.gauge("engine.fragmentation.used_permille"),
        ),
        None => "null".to_owned(),
    };
    format!(
        "{{\n      \"requests\": {}, \"ok\": {}, \"hits\": {}, \"executed\": {}, \
         \"coalesced\": {}, \"stale\": {},\n      \"fetch_errors\": {}, \"busy\": {}, \
         \"reconnects\": {}, \"unexplained\": {},\n      \"latency_us\": \
         {{\"p50\": {}, \"p95\": {}, \"p99\": {}}}, \"wall_s\": {:.3},\n      \
         \"server\": {{\"stale_serves\": {}, \"sheds\": {}, \"fetch_retries\": {}, \
         \"negative_hits\": {}, \"breaker_transitions\": {}}},\n      \
         \"mid_storm_metrics\": {mid_storm},\n      \
         \"engine_totals\": {snapshot}\n    }}",
        report.requests,
        report.ok(),
        report.hits,
        report.executed,
        report.coalesced,
        report.stale,
        report.fetch_errors,
        report.busy,
        report.reconnects,
        report.unexplained,
        report.latency_quantile_us(0.50),
        report.latency_quantile_us(0.95),
        report.latency_quantile_us(0.99),
        report.wall.as_secs_f64(),
        report.snapshot.total.stale_serves,
        report.snapshot.sheds,
        report.snapshot.fetch_retries,
        report.snapshot.negative_hits,
        report.snapshot.breaker_transitions,
    )
}

/// The `--chaos` mode: a fault-free baseline storm under the empty plan,
/// then the requested plan, then the self-gating scorecard.
fn run_chaos(spec: &str, args: &Args) -> ExitCode {
    let Some(plan) = FaultPlan::parse(spec) else {
        eprintln!("loadgen: unknown fault plan {spec:?} (want empty|canonical[:SEED])");
        return usage();
    };
    let plan = Arc::new(plan);
    let options = ChaosOptions {
        clients: args.clients,
        rounds: args.rounds,
        ..ChaosOptions::default()
    };
    println!(
        "loadgen: chaos scorecard — {} clients x {} rounds over {} keys, plan {spec}",
        options.clients, options.rounds, options.keyspace
    );

    let baseline_plan = Arc::new(FaultPlan::empty(0));
    let baseline = match chaos_storm("baseline", baseline_plan, &options) {
        Ok(report) => report,
        Err(code) => return code,
    };
    let faulted = match chaos_storm("faulted", Arc::clone(&plan), &options) {
        Ok(report) => report,
        Err(code) => return code,
    };

    // The gates.  Every client-observed outcome must be explained by the
    // plan, the degradation machinery must actually have engaged, and the
    // tail must hold.
    let baseline_p99 = baseline.latency_quantile_us(0.99).max(1);
    let faulted_p99 = faulted.latency_quantile_us(0.99);
    let p99_ratio = faulted_p99 as f64 / baseline_p99 as f64;
    let mut failures: Vec<String> = Vec::new();
    if baseline.unexplained != 0 {
        failures.push(format!(
            "baseline storm saw {} unexplained errors",
            baseline.unexplained
        ));
    }
    if faulted.unexplained != 0 {
        failures.push(format!(
            "faulted storm saw {} unexplained errors",
            faulted.unexplained
        ));
    }
    if !plan.is_noop() {
        if faulted.stale == 0 && faulted.snapshot.total.stale_serves == 0 {
            failures.push("no stale serves — graceful degradation never engaged".to_owned());
        }
        if faulted.snapshot.sheds == 0 {
            failures.push("no sheds — the overload gate never engaged".to_owned());
        }
        // Clients seeing zero of these is the success story (retries and
        // stale serves absorb them) — but the plan must really have fired.
        if plan.injected_fetch_errors() == 0 {
            failures.push("the plan injected no fetch failures".to_owned());
        }
        // The observability gate: the METRICS surface must have answered
        // while the storm was live, and the counters that prove the
        // degradation and scheduling machinery engaged must have moved.
        match &faulted.mid_storm_metrics {
            None => failures.push("no METRICS scrape landed mid-storm".to_owned()),
            Some(metrics) => {
                let mut require = |name: &str, value: u64| {
                    if value == 0 {
                        failures.push(format!("mid-storm METRICS shows zero {name}"));
                    }
                };
                require("fetch retries", metrics.counter("engine.fetch.retries"));
                require("sheds", metrics.counter("server.sheds"));
                require(
                    "stale serves",
                    metrics
                        .histogram("engine.lookup.stale_us")
                        .map_or(0, |h| h.count),
                );
                require(
                    "scheduler steals",
                    metrics.counter("runtime.scheduler.steals"),
                );
                require("trace events", metrics.counter("telemetry.trace_events"));
            }
        }
    }
    if p99_ratio > CHAOS_P99_BUDGET {
        failures.push(format!(
            "faulted p99 {faulted_p99} us is {p99_ratio:.2}x the baseline {baseline_p99} us \
             (budget {CHAOS_P99_BUDGET}x)"
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"loadgen/chaos\",\n  \"plan\": \"{spec}\",\n  \
         \"clients\": {},\n  \"rounds\": {},\n  \"keyspace\": {},\n  \
         \"injected_fetch_errors\": {},\n  \"triggered_resets\": {:?},\n  \
         \"triggered_stalls\": {:?},\n  \"p99_ratio\": {p99_ratio:.3},\n  \
         \"p99_budget\": {CHAOS_P99_BUDGET},\n  \"gates_failed\": {:?},\n  \
         \"baseline\": {},\n  \"faulted\": {}\n}}\n",
        options.clients,
        options.rounds,
        options.keyspace,
        plan.injected_fetch_errors(),
        plan.triggered_resets(),
        plan.triggered_stalls(),
        failures,
        chaos_report_json(&baseline),
        chaos_report_json(&faulted),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_fault_injection.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("loadgen: wrote {path}"),
        Err(error) => println!("loadgen: could not write {path}: {error}"),
    }

    if failures.is_empty() {
        println!(
            "loadgen: chaos gates hold — every error explained, degradation engaged, \
             p99 {p99_ratio:.2}x baseline (budget {CHAOS_P99_BUDGET}x)"
        );
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("loadgen: chaos gate failed: {failure}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(code) => return code,
    };

    // --chaos: the fault-injection scorecard instead of the trace replay.
    if let Some(spec) = args.chaos.clone() {
        return run_chaos(&spec, &args);
    }

    let workload = match args.workload.as_str() {
        "tpcd_skewed" => Workload::tpcd_skewed(ExperimentScale::quick(args.queries)),
        "set_query_skewed" => Workload::set_query_skewed(ExperimentScale::quick(args.queries)),
        "tpcd" => Workload::tpcd(ExperimentScale::quick(args.queries)),
        other => {
            eprintln!("loadgen: unknown workload {other}");
            return usage();
        }
    };
    let capacity = (workload.database_bytes() as f64 * args.cache_fraction).round() as u64;

    // --spawn: an in-process watchmand on an ephemeral loopback port (the
    // exact server the standalone binary runs).
    let spawned = if args.spawn {
        match serve(ServerConfig {
            capacity_bytes: capacity,
            ..ServerConfig::default()
        }) {
            Ok(handle) => Some(handle),
            Err(err) => {
                eprintln!("loadgen: {err}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let addr = match (&args.addr, &spawned) {
        (Some(addr), _) => addr.clone(),
        (None, Some(handle)) => handle.addr().to_string(),
        (None, None) => unreachable!("validated in parse_args"),
    };

    // --metrics: scrape the telemetry admin surface instead of replaying.
    if args.metrics {
        let code = run_metrics_scrape(&addr, args.shutdown);
        if let Some(handle) = spawned {
            handle.join();
        }
        return code;
    }

    // --connections: the high-concurrency storm instead of the trace replay.
    if args.connections > 0 {
        let code = run_storm(&addr, args.connections, args.rounds, args.shutdown);
        if let Some(handle) = spawned {
            handle.join();
        }
        return code;
    }

    println!(
        "loadgen: {} queries of {} over {} clients (pipeline {}) against {addr}",
        workload.trace.len(),
        args.workload,
        args.clients,
        args.pipeline
    );

    let options = LoadOptions {
        clients: args.clients,
        pipeline: args.pipeline,
        fetch_delay_us: args.fetch_delay_us,
        payload_prefix_cap: 0,
    };
    let report = match watchman_server::run_load(&addr, &workload.trace, &options) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("loadgen: {err}");
            return ExitCode::FAILURE;
        }
    };

    let mut client = match Client::connect_with_retries(&addr, 5, Duration::from_millis(50)) {
        Ok(client) => client,
        Err(err) => {
            eprintln!("loadgen: {err}");
            return ExitCode::FAILURE;
        }
    };
    let snapshot = match client.stats() {
        Ok(snapshot) => snapshot,
        Err(err) => {
            eprintln!("loadgen: {err}");
            return ExitCode::FAILURE;
        }
    };
    let result = run_result_from_snapshot(
        format!("{} over wire", args.workload),
        capacity,
        args.cache_fraction,
        &snapshot,
    );

    println!(
        "  csr {:.4}  hr {:.4}  refs {}  hits {}  coalesced {}  misses {}",
        result.cost_savings_ratio,
        result.hit_ratio,
        snapshot.total.references,
        snapshot.total.hits,
        snapshot.total.coalesced,
        snapshot.total.misses(),
    );
    println!(
        "  throughput {:.0} q/s  batch latency mean {:.0} us  p50 {} us  p95 {} us  p99 {} us",
        report.throughput_qps(),
        report.latency_mean_us(),
        report.latency_quantile_us(0.50),
        report.latency_quantile_us(0.95),
        report.latency_quantile_us(0.99),
    );

    // Sanity: every reference must be accounted exactly once.
    if snapshot.total.references
        != snapshot.total.hits + snapshot.total.coalesced + snapshot.total.misses()
    {
        eprintln!("loadgen: reference accounting violated");
        return ExitCode::FAILURE;
    }

    if args.shutdown {
        if let Err(err) = client.shutdown_server() {
            eprintln!("loadgen: shutdown failed: {err}");
            return ExitCode::FAILURE;
        }
        println!("loadgen: server drained");
    }
    if let Some(handle) = spawned {
        handle.join();
    }
    ExitCode::SUCCESS
}
