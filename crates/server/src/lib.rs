//! # watchman-server
//!
//! WATCHMAN over the wire: the networked front end of the reproduction.
//!
//! The paper frames WATCHMAN as a cache manager for a *shared* data
//! warehouse — many analyst sessions hitting one service concurrently.  This
//! crate turns the in-process [`Watchman`](watchman_core::engine::Watchman)
//! engine into that service:
//!
//! * [`wire`] — the versioned, length-prefixed binary protocol (frame
//!   format and versioning rules are specified in its module docs);
//! * [`server`] — `watchmand`: an accept *task* on the engine's runtime
//!   spawns one session *task* per connection over the runtime's epoll
//!   reactor (sessions are parked futures, not threads); lookups run
//!   through
//!   [`get_or_execute_async`](watchman_core::engine::Watchman::get_or_execute_async),
//!   so hits never suspend and concurrent misses on one query coalesce
//!   **across connections** into a single execution;
//! * [`client`] — a typed client with pipelining and transparent
//!   reconnect;
//! * [`replay`] — the simulator's replay drivers over real sockets: a
//!   deterministic single-session replay whose final
//!   [`StatsSnapshot`](watchman_core::engine::StatsSnapshot) is
//!   byte-identical to the in-process replay of the same trace, and the
//!   concurrent load driver behind the `loadgen` binary.
//!
//! Two binaries ship with the crate: `watchmand` (the server) and `loadgen`
//! (drives the simulator's workloads over sockets from N concurrent
//! clients, reporting CSR and latency).  See the repository README for the
//! quickstart.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod client;
pub mod fault;
pub mod replay;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError};
pub use fault::FaultPlan;
pub use replay::{
    replay_trace_wire, run_chaos_load, run_connection_storm, run_load, ChaosOptions, ChaosReport,
    LoadOptions, LoadReport, StormReport,
};
pub use server::{serve, ServerConfig, ServerError, ServerHandle, ServerPayload};
pub use wire::{
    GetRequest, GetResponse, RebalanceSummary, Request, Response, WireError, WireSource,
};
