//! Deterministic fault plans: the chaos harness behind `loadgen --chaos`.
//!
//! A [`FaultPlan`] is a *seeded schedule* of failures, addressed by stable
//! coordinates — a query's signature for fetch faults, a connection's
//! accept-order id and completed-read count for wire faults — so the same
//! plan replays the same failure sequence on every run.  Nothing here rolls
//! live dice: the "randomness" is [`splitmix64`] over `(seed, coordinate)`,
//! which is how the storm tests can assert exact invariants (every client
//! error is *explained* by the plan) instead of eyeballing flaky ratios.
//!
//! One plan serves both failure domains the server defends:
//!
//! * **Fetch faults** — [`FaultPlan::fetch_fault`] is consulted inside the
//!   server's fetch closure.  A slice of the keyspace is *flaky* (the first
//!   attempt of each fetch episode fails with a transient error, the
//!   leader's retry succeeds) and a smaller slice is *doomed after warm-up*
//!   (the first fetch ever succeeds, every refetch fails terminally — the
//!   shape that exercises stale serving and the negative cache).
//! * **Wire faults** — the plan implements
//!   [`FaultInjector`](watchman_core::runtime::net::FaultInjector) and is
//!   installed on accepted session streams: designated connections are
//!   reset after a few reads, one is stalled mid-stream (the slow-loris the
//!   read deadline evicts), and the rest pass through untouched.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use watchman_core::engine::{splitmix64, FetchError};
use watchman_core::runtime::net::{FaultAction, FaultInjector};
use watchman_core::sync::Mutex;

/// Keys-per-thousand classified as flaky by [`FaultPlan::canonical`].
const CANONICAL_FLAKY_PERMILLE: u32 = 80;
/// Keys-per-thousand classified as doomed by [`FaultPlan::canonical`].
const CANONICAL_DOOMED_PERMILLE: u32 = 20;

/// A deterministic, seeded failure schedule.  See the module docs.
pub struct FaultPlan {
    /// Seed of every classification hash in the plan.
    seed: u64,
    /// Keys-per-thousand whose fetches fail transiently on the first
    /// attempt of each episode (the retry succeeds).
    flaky_permille: u32,
    /// Keys-per-thousand whose fetches fail terminally after the first
    /// successful episode (stale-serving fodder).
    doomed_permille: u32,
    /// Accept-order connection ids that are reset after
    /// [`reset_after_reads`](Self::reset_after_reads) completed reads.
    reset_connections: Vec<u64>,
    /// Completed reads a reset connection is allowed before the reset.
    reset_after_reads: u64,
    /// Accept-order connection ids that stall (reads park forever) after
    /// [`stall_after_reads`](Self::stall_after_reads) completed reads.
    stall_connections: Vec<u64>,
    /// Completed reads a stalled connection is allowed before the stall.
    stall_after_reads: u64,
    /// Per-key fetch invocation counts: the episode clock the flaky/doomed
    /// schedules are keyed on.
    invocations: Mutex<HashMap<u64, u64>>,
    /// Fetch faults actually injected (for scorecards).
    injected_fetch_errors: AtomicU64,
    /// Connections on which a reset has actually fired.
    triggered_resets: Mutex<Vec<u64>>,
    /// Connections on which a stall has actually fired.
    triggered_stalls: Mutex<Vec<u64>>,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("flaky_permille", &self.flaky_permille)
            .field("doomed_permille", &self.doomed_permille)
            .field("reset_connections", &self.reset_connections)
            .field("stall_connections", &self.stall_connections)
            .finish_non_exhaustive()
    }
}

impl FaultPlan {
    /// A plan that injects nothing.  Installing it still routes every `GET`
    /// through the fallible pipeline — which is exactly what the
    /// byte-identical-replay test wants: the pipeline itself must be
    /// invisible when no fault fires.
    pub fn empty(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            flaky_permille: 0,
            doomed_permille: 0,
            reset_connections: Vec::new(),
            reset_after_reads: 0,
            stall_connections: Vec::new(),
            stall_after_reads: 0,
            invocations: Mutex::new(HashMap::new()),
            injected_fetch_errors: AtomicU64::new(0),
            triggered_resets: Mutex::new(Vec::new()),
            triggered_stalls: Mutex::new(Vec::new()),
        }
    }

    /// The canonical chaos plan: 10% of the keyspace fails fetches (8%
    /// flaky + 2% doomed after warm-up), two connections are reset after
    /// three reads, one connection stalls after two reads.
    pub fn canonical(seed: u64) -> FaultPlan {
        FaultPlan {
            flaky_permille: CANONICAL_FLAKY_PERMILLE,
            doomed_permille: CANONICAL_DOOMED_PERMILLE,
            reset_connections: vec![2, 5],
            reset_after_reads: 3,
            stall_connections: vec![9],
            stall_after_reads: 2,
            ..FaultPlan::empty(seed)
        }
    }

    /// Parses a plan spec: `empty`, `canonical`, or either with a `:seed`
    /// suffix (`canonical:42`).
    pub fn parse(spec: &str) -> Option<FaultPlan> {
        let (name, seed) = match spec.split_once(':') {
            Some((name, seed)) => (name, seed.parse().ok()?),
            None => (spec, 0xC4A0_5EED),
        };
        match name {
            "empty" => Some(FaultPlan::empty(seed)),
            "canonical" => Some(FaultPlan::canonical(seed)),
            _ => None,
        }
    }

    /// Whether the plan can inject anything at all.
    pub fn is_noop(&self) -> bool {
        self.flaky_permille == 0
            && self.doomed_permille == 0
            && self.reset_connections.is_empty()
            && self.stall_connections.is_empty()
    }

    /// How a key is classified under this plan's seed.
    fn classify(&self, signature: u64) -> KeyClass {
        let roll = splitmix64(self.seed ^ signature) % 1000;
        let flaky = u64::from(self.flaky_permille);
        let doomed = flaky + u64::from(self.doomed_permille);
        if roll < flaky {
            KeyClass::Flaky
        } else if roll < doomed {
            KeyClass::Doomed
        } else {
            KeyClass::Healthy
        }
    }

    /// Consulted by the server's fetch closure once per fetch invocation of
    /// `signature`.  Returns the fault to inject, or `None` to let the
    /// fetch succeed.
    pub fn fetch_fault(&self, signature: u64) -> Option<FetchError> {
        if self.flaky_permille == 0 && self.doomed_permille == 0 {
            return None;
        }
        let class = self.classify(signature);
        if class == KeyClass::Healthy {
            return None;
        }
        let invocation = {
            let mut invocations = self.invocations.lock();
            let slot = invocations.entry(signature).or_insert(0);
            let n = *slot;
            *slot += 1;
            n
        };
        let fault = match class {
            // Every episode's first attempt fails; the leader's retry (the
            // odd invocation) succeeds.
            KeyClass::Flaky if invocation % 2 == 0 => {
                Some(FetchError::transient("injected transient fetch failure"))
            }
            // The warm-up fetch succeeds (seeding the cache and the stale
            // store); every refetch after eviction fails for good.
            KeyClass::Doomed if invocation > 0 => {
                Some(FetchError::fatal("injected terminal fetch failure"))
            }
            _ => None,
        };
        if fault.is_some() {
            self.injected_fetch_errors.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// Fetch faults actually injected so far.
    pub fn injected_fetch_errors(&self) -> u64 {
        self.injected_fetch_errors.load(Ordering::Relaxed)
    }

    /// Connections on which a reset has actually fired.
    pub fn triggered_resets(&self) -> Vec<u64> {
        self.triggered_resets.lock().clone()
    }

    /// Connections on which a stall has actually fired.
    pub fn triggered_stalls(&self) -> Vec<u64> {
        self.triggered_stalls.lock().clone()
    }

    fn note_triggered(log: &Mutex<Vec<u64>>, conn: u64) {
        let mut triggered = log.lock();
        if !triggered.contains(&conn) {
            triggered.push(conn);
        }
    }
}

/// How one key behaves under a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeyClass {
    Healthy,
    Flaky,
    Doomed,
}

impl FaultInjector for FaultPlan {
    fn on_read(&self, conn: u64, op: u64) -> FaultAction {
        if self.stall_connections.contains(&conn) && op >= self.stall_after_reads {
            Self::note_triggered(&self.triggered_stalls, conn);
            return FaultAction::Stall;
        }
        if self.reset_connections.contains(&conn) && op >= self.reset_after_reads {
            Self::note_triggered(&self.triggered_resets, conn);
            return FaultAction::Reset;
        }
        FaultAction::Pass
    }

    fn on_write(&self, _conn: u64, _op: u64) -> FaultAction {
        // Wire faults fire on the read side only: a killed response is
        // indistinguishable from a reset anyway, and keeping writes clean
        // keeps the explained/unexplained error classification sharp.
        FaultAction::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_parse_and_classify_deterministically() {
        assert!(FaultPlan::parse("empty").expect("empty").is_noop());
        let canonical = FaultPlan::parse("canonical").expect("canonical");
        assert!(!canonical.is_noop());
        assert!(FaultPlan::parse("nonsense").is_none());
        let seeded = FaultPlan::parse("canonical:42").expect("seeded");
        assert_eq!(seeded.seed, 42);

        // Same seed, same classification; the roll is a pure function.
        let twin = FaultPlan::canonical(seeded.seed);
        for signature in 0..512u64 {
            assert_eq!(seeded.classify(signature), twin.classify(signature));
        }
        // ~10% of keys are faulty under the canonical permilles.
        let faulty = (0..4096u64)
            .filter(|s| canonical.classify(*s) != KeyClass::Healthy)
            .count();
        assert!((200..620).contains(&faulty), "faulty keys: {faulty}");
    }

    #[test]
    fn flaky_keys_alternate_and_doomed_keys_fail_after_warmup() {
        let plan = FaultPlan::canonical(7);
        let flaky = (0..4096u64)
            .find(|s| plan.classify(*s) == KeyClass::Flaky)
            .expect("a flaky key");
        let doomed = (0..4096u64)
            .find(|s| plan.classify(*s) == KeyClass::Doomed)
            .expect("a doomed key");

        let first = plan.fetch_fault(flaky).expect("first attempt fails");
        assert!(first.is_retryable());
        assert!(plan.fetch_fault(flaky).is_none(), "retry succeeds");
        assert!(
            plan.fetch_fault(flaky).is_some(),
            "next episode fails again"
        );

        assert!(plan.fetch_fault(doomed).is_none(), "warm-up succeeds");
        let terminal = plan.fetch_fault(doomed).expect("refetch fails");
        assert!(!terminal.is_retryable());
        assert_eq!(plan.injected_fetch_errors(), 3);
    }

    #[test]
    fn wire_schedule_targets_only_designated_connections() {
        let plan = FaultPlan::canonical(0);
        assert_eq!(plan.on_read(0, 100), FaultAction::Pass);
        assert_eq!(plan.on_read(2, 0), FaultAction::Pass);
        assert_eq!(plan.on_read(2, 3), FaultAction::Reset);
        assert_eq!(plan.on_read(5, 7), FaultAction::Reset);
        assert_eq!(plan.on_read(9, 2), FaultAction::Stall);
        assert_eq!(plan.on_write(2, 50), FaultAction::Pass);
        assert_eq!(plan.triggered_resets(), vec![2, 5]);
        assert_eq!(plan.triggered_stalls(), vec![9]);
        let empty = FaultPlan::empty(0);
        assert_eq!(empty.on_read(2, 50), FaultAction::Pass);
    }
}
