//! The WATCHMAN wire protocol: versioned, length-prefixed binary frames.
//!
//! Every message on a connection is one **frame**:
//!
//! ```text
//! +----------------+---------------------+
//! | length: u32 LE | body: length bytes  |
//! +----------------+---------------------+
//! ```
//!
//! `length` counts only the body and must not exceed
//! [`MAX_FRAME_BYTES`]; a larger prefix is treated as a malformed stream
//! and fails the connection.  All integers are little-endian; strings are a
//! `u32` byte length followed by UTF-8 bytes; floats travel as their IEEE-754
//! bit pattern in a `u64`.
//!
//! ## Handshake
//!
//! The first frame in each direction is a **hello**:
//!
//! ```text
//! body = magic: [u8; 4] = b"WMAN" | version: u16
//! ```
//!
//! The client sends its hello first; the server answers with its own.  A
//! server that does not speak the client's version replies with its hello
//! (carrying the version it *does* speak) and closes the connection, so old
//! clients fail with a precise [`WireError::UnsupportedVersion`] instead of
//! a decode error.  Version negotiation is exact-match: [`VERSION`] bumps on
//! any incompatible change to the framing or the opcode payloads below.
//!
//! ## Requests
//!
//! ```text
//! body = request_id: u64 | opcode: u8 | payload
//! ```
//!
//! | opcode | name | payload |
//! |---|---|---|
//! | 1 | `GET` | key string, `timestamp_us: u64`, `result_bytes: u64`, `cost_blocks: u64`, `fetch_delay_us: u32`, `deadline_hint_us: u64`, `payload_prefix_cap: u32` |
//! | 2 | `PEEK` | key string |
//! | 3 | `STATS` | (empty) |
//! | 4 | `INVALIDATE` | relation string |
//! | 5 | `REBALANCE_NOW` | `timestamp_us: u64` |
//! | 6 | `SHUTDOWN` | (empty) |
//! | 7 | `SERVER_INFO` | (empty) |
//! | 8 | `METRICS` | (empty) |
//! | 9 | `TRACE_DUMP` | (empty) |
//!
//! `GET` carries the replay protocol of the simulator: the key is the raw
//! query text, and `result_bytes`/`cost_blocks` describe what executing the
//! query against the warehouse would produce (on a miss the server
//! "executes" by materializing a payload of that size, sleeping
//! `fetch_delay_us` to stand in for the scan).  `deadline_hint_us` is a
//! service-time budget: the server reports (but does not enforce) whether
//! servicing exceeded it.  `payload_prefix_cap` bounds how many payload
//! bytes the response carries back — metrics-only callers send 0.
//!
//! ## Responses
//!
//! ```text
//! body = request_id: u64 | status: u8 (0 = ok, 1 = error) | payload
//! ```
//!
//! An error payload is a message string.  Ok payloads per opcode:
//!
//! | request | ok payload |
//! |---|---|
//! | `GET` | `source: u8` (0 hit, 1 executed, 2 coalesced), `cost_blocks: f64`, `full_len: u64`, prefix bytes (`u32` length + bytes), `service_us: u64`, `deadline_exceeded: u8` |
//! | `PEEK` | `cached: u8`, `size_bytes: u64` |
//! | `STATS` | JSON-encoded [`StatsSnapshot`] string |
//! | `INVALIDATE` | `affected: u32`, `invalidated: u32` |
//! | `REBALANCE_NOW` | `moved: u8`; if 1: `donor: u32`, `recipient: u32`, `moved_bytes: u64`, `evicted: u32` |
//! | `SHUTDOWN` | (empty) |
//! | `SERVER_INFO` | `threads: u32`, `workers: u32`, `sessions: u32` |
//! | `METRICS` | JSON-encoded [`MetricsSnapshot`] string |
//! | `TRACE_DUMP` | JSON-encoded [`TraceDump`] string |
//!
//! ## Error handling rules
//!
//! Decoding is *defensive*: every read is bounds-checked and a frame that
//! cannot be decoded (bad magic, truncated payload, invalid UTF-8, trailing
//! garbage) fails **that connection only** — the server closes it and keeps
//! serving every other connection.  A *well-formed* frame with an opcode the
//! server does not know gets an error **response** instead (the request id
//! is decoded before the opcode precisely so this is possible), which is
//! what lets newer clients degrade gracefully against older servers.
//!
//! ## Buffered session IO
//!
//! Framing helpers come in two tiers.  The per-frame helpers
//! ([`read_frame`], [`write_frame`] and their async variants) issue one
//! syscall per frame — right for lockstep callers with a single request in
//! flight.  Session hot paths use [`FrameReader`] / [`FrameWriter`]
//! instead: the reader drains every pipelined frame a single `recv`
//! returned out of a reusable buffer, and the writer stages each burst's
//! responses and flushes them as one vectored write.  The analyzer's
//! `unbuffered-frame-write-in-session` rule keeps the per-frame helpers
//! out of session paths.

use std::fmt;
use std::future::{poll_fn, Future};
use std::io::{self, Read, Write};
use std::task::{ready, Context, Poll};

use watchman_core::engine::StatsSnapshot;
use watchman_core::runtime::net::TcpStream as NetStream;
use watchman_core::telemetry::{MetricsSnapshot, TraceDump};

/// The handshake magic: identifies a WATCHMAN wire connection.
pub const MAGIC: [u8; 4] = *b"WMAN";

/// The protocol version this build speaks (exact-match negotiation).
///
/// v2 added the failure-domain surface: the `Stale` lookup source (a value
/// served from the last-known-good store after a failed refetch) and the
/// `BUSY` response status carrying a retry-after hint (overload shedding).
/// v3 added the telemetry admin surface: `METRICS` (the versioned
/// [`MetricsSnapshot`] exposition) and `TRACE_DUMP` (the flight recorder's
/// ring as a [`TraceDump`]).
pub const VERSION: u16 = 3;

/// Hard upper bound on a frame body; larger length prefixes are treated as
/// stream corruption and fail the connection.
pub const MAX_FRAME_BYTES: u32 = 16 << 20;

/// Hard cap on the payload prefix a `GET` response carries, regardless of
/// the request's `payload_prefix_cap`: a cached set can be larger than a
/// frame (the server caps declared results at its own limit, not at
/// [`MAX_FRAME_BYTES`]), and a response must always fit one frame.
pub const MAX_PREFIX_BYTES: u32 = MAX_FRAME_BYTES - 1024;

/// Everything that can go wrong speaking the wire protocol.
#[derive(Debug)]
pub enum WireError {
    /// An underlying socket error.
    Io(io::Error),
    /// The peer's length prefix exceeds [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// The declared body length.
        declared: u32,
    },
    /// The stream ended inside a frame, or a payload field ran past the end
    /// of its frame body.
    Truncated {
        /// Which decode step hit the end of the data.
        context: &'static str,
    },
    /// The handshake did not start with [`MAGIC`].
    BadMagic,
    /// The peer speaks a different protocol version.
    UnsupportedVersion {
        /// The version the peer offered (or answered with).
        peer: u16,
    },
    /// A well-formed frame carried an opcode this build does not know.
    /// Carries the request id so a server can still address its error
    /// response.
    UnknownOpcode {
        /// The unknown opcode byte.
        opcode: u8,
        /// The request id decoded before the opcode.
        request_id: u64,
    },
    /// An enum byte (status, lookup source, …) held an undefined value.
    InvalidEnum {
        /// Which field held the undefined value.
        field: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// A frame body had bytes left over after its payload was fully decoded.
    TrailingBytes,
    /// The peer violated the request/response protocol (e.g. a response id
    /// that matches no outstanding request, or an unparsable STATS body).
    Protocol(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(err) => write!(f, "socket error: {err}"),
            WireError::FrameTooLarge { declared } => write!(
                f,
                "frame length {declared} exceeds the {MAX_FRAME_BYTES}-byte limit"
            ),
            WireError::Truncated { context } => {
                write!(f, "truncated frame while reading {context}")
            }
            WireError::BadMagic => f.write_str("handshake does not start with the WMAN magic"),
            WireError::UnsupportedVersion { peer } => {
                write!(
                    f,
                    "peer speaks protocol version {peer}, this build speaks {VERSION}"
                )
            }
            WireError::UnknownOpcode { opcode, .. } => write!(f, "unknown opcode {opcode}"),
            WireError::InvalidEnum { field, value } => {
                write!(f, "invalid value {value} for {field}")
            }
            WireError::InvalidUtf8 => f.write_str("string field is not valid UTF-8"),
            WireError::TrailingBytes => f.write_str("frame has trailing bytes after its payload"),
            WireError::Protocol(message) => write!(f, "protocol violation: {message}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(err: io::Error) -> Self {
        WireError::Io(err)
    }
}

/// One `GET` request: the replay protocol of the simulator carried over the
/// wire (see the [module docs](self) for field semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct GetRequest {
    /// Raw query text; the server derives the cache key with
    /// [`QueryKey::from_raw_query`](watchman_core::key::QueryKey::from_raw_query).
    pub key: String,
    /// Logical timestamp of the reference in microseconds.
    pub timestamp_us: u64,
    /// Size of the retrieved set executing the query would produce.
    pub result_bytes: u64,
    /// Execution cost of the query in logical block reads.
    pub cost_blocks: u64,
    /// Simulated execution time of a miss, in microseconds (the stand-in
    /// for a multi-second warehouse scan; 0 for deterministic replays).
    pub fetch_delay_us: u32,
    /// Service-time budget in microseconds; 0 means none.  Advisory: the
    /// response reports whether it was exceeded.
    pub deadline_hint_us: u64,
    /// Maximum number of payload bytes to return (0 = metrics only).  The
    /// server additionally clamps this to [`MAX_PREFIX_BYTES`] so the
    /// response always fits one frame.
    pub payload_prefix_cap: u32,
}

impl GetRequest {
    /// A metrics-only request (no payload bytes back, no simulated delay,
    /// no deadline) — what deterministic replays send.
    pub fn metrics_only(
        key: impl Into<String>,
        timestamp_us: u64,
        result_bytes: u64,
        cost_blocks: u64,
    ) -> Self {
        GetRequest {
            key: key.into(),
            timestamp_us,
            result_bytes,
            cost_blocks,
            fetch_delay_us: 0,
            deadline_hint_us: 0,
            payload_prefix_cap: 0,
        }
    }
}

/// A decoded request frame payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Look up a query, executing on a miss (single-flight across every
    /// connection).
    Get(GetRequest),
    /// Non-mutating admin probe: is this query cached, and how large is it?
    Peek {
        /// Raw query text of the probed key.
        key: String,
    },
    /// Fetch the engine's full [`StatsSnapshot`].
    Stats,
    /// Invalidate every cached set that depends on a base relation.
    Invalidate {
        /// The updated base relation (case-insensitive match).
        relation: String,
    },
    /// Run one capacity-rebalance pass immediately.
    RebalanceNow {
        /// Logical time at which victim profits are evaluated.
        timestamp_us: u64,
    },
    /// Stop accepting connections, drain in-flight requests, exit.
    Shutdown,
    /// Report the server process's execution-stack shape (thread count,
    /// runtime workers, live sessions).  Load tests use this to prove
    /// sessions are tasks, not threads.
    ServerInfo,
    /// Fetch the process-wide telemetry exposition: every counter, gauge
    /// and latency histogram as one versioned [`MetricsSnapshot`].
    Metrics,
    /// Dump the flight recorder's trace-event ring (newest events, oldest
    /// first).
    TraceDump,
}

/// Where a [`Response::Get`] value came from (mirror of
/// [`LookupSource`](watchman_core::engine::LookupSource)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireSource {
    /// Served from cache.
    Hit,
    /// This request led the execution.
    Executed,
    /// Coalesced onto another connection's in-flight execution.
    Coalesced,
    /// The fetch failed and the server degraded to the last-known-good
    /// value (see `LookupSource::Stale`).
    Stale,
}

impl fmt::Display for WireSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireSource::Hit => f.write_str("hit"),
            WireSource::Executed => f.write_str("executed"),
            WireSource::Coalesced => f.write_str("coalesced"),
            WireSource::Stale => f.write_str("stale"),
        }
    }
}

/// The per-request result of a `GET`.
#[derive(Debug, Clone, PartialEq)]
pub struct GetResponse {
    /// How the value was obtained.
    pub source: WireSource,
    /// Execution cost of the query in block reads.
    pub cost_blocks: f64,
    /// Full size of the retrieved set in bytes.
    pub full_len: u64,
    /// The first `min(full_len, payload_prefix_cap)` payload bytes.
    pub prefix: Vec<u8>,
    /// Server-side service time in microseconds.
    pub service_us: u64,
    /// Whether `service_us` exceeded the request's `deadline_hint_us`.
    pub deadline_exceeded: bool,
}

/// The outcome of a `REBALANCE_NOW` pass that moved capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceSummary {
    /// The shard that gave up capacity.
    pub donor: u32,
    /// The shard that received it.
    pub recipient: u32,
    /// Bytes moved.
    pub moved_bytes: u64,
    /// Number of sets the donor evicted to shrink.
    pub evicted: u32,
}

/// A decoded response frame payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Get`].
    Get(GetResponse),
    /// Answer to [`Request::Peek`].
    Peek {
        /// Whether the key is cached.
        cached: bool,
        /// Size of the cached set (0 when absent).
        size_bytes: u64,
    },
    /// Answer to [`Request::Stats`].
    Stats(StatsSnapshot),
    /// Answer to [`Request::Invalidate`].
    Invalidate {
        /// Sets that were registered as depending on the relation.
        affected: u32,
        /// Sets that were actually resident and removed.
        invalidated: u32,
    },
    /// Answer to [`Request::RebalanceNow`]: `None` when the pass moved
    /// nothing.
    RebalanceNow(Option<RebalanceSummary>),
    /// Answer to [`Request::Shutdown`].
    Shutdown,
    /// Answer to [`Request::ServerInfo`].
    ServerInfo {
        /// OS threads in the server process (from `/proc/self/status`;
        /// 0 when the platform cannot report it).
        threads: u32,
        /// Worker threads in the engine's runtime pool.
        workers: u32,
        /// Sessions (connections) currently live.
        sessions: u32,
    },
    /// Answer to [`Request::Metrics`].
    Metrics(MetricsSnapshot),
    /// Answer to [`Request::TraceDump`].
    TraceDump(TraceDump),
    /// The server failed the request (unknown opcode, internal panic, …).
    Error {
        /// Human-readable failure description.
        message: String,
    },
    /// The server refused the request under overload (admission gate full,
    /// or the request's deadline hint cannot be met).  The request was NOT
    /// executed; the client should back off and retry.
    Busy {
        /// Server-suggested delay before retrying, in microseconds
        /// (0 = retry at the client's own discretion).
        retry_after_us: u64,
    },
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one frame (length prefix + body).
pub fn write_frame(writer: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame body too large"))?;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(body)?;
    Ok(())
}

/// Reads one frame body, enforcing [`MAX_FRAME_BYTES`].
///
/// Returns `Ok(None)` on a clean EOF *between* frames; EOF inside a frame is
/// a [`WireError::Truncated`] error.
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut body = Vec::new();
    Ok(read_frame_into(reader, &mut body)?.then_some(body))
}

/// Reads one frame body into `buf`, reusing its capacity across calls.
///
/// The steady-state twin of [`read_frame`] for callers that read many
/// frames on one connection: `buf` is cleared and refilled in place, so
/// once it has grown to the connection's largest body size every further
/// frame arrives without touching the allocator.  Returns `Ok(true)` with
/// the body in `buf`, or `Ok(false)` on a clean EOF *between* frames
/// (`buf` left empty); EOF inside a frame is a [`WireError::Truncated`]
/// error and [`MAX_FRAME_BYTES`] is enforced before the body is read.
pub fn read_frame_into(reader: &mut impl Read, buf: &mut Vec<u8>) -> Result<bool, WireError> {
    buf.clear();
    let mut header = [0u8; 4];
    match read_exact_or_eof(reader, &mut header)? {
        ReadOutcome::Eof => return Ok(false),
        ReadOutcome::Full => {}
    }
    let declared = u32::from_le_bytes(header);
    if declared > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge { declared });
    }
    buf.resize(declared as usize, 0);
    reader.read_exact(buf).map_err(|err| {
        if err.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated {
                context: "frame body",
            }
        } else {
            WireError::Io(err)
        }
    })?;
    Ok(true)
}

/// Writes one frame to a reactor-driven stream (async twin of
/// [`write_frame`]).  The length prefix and body go out as one buffer so a
/// frame is a single `write_all` from the runtime's point of view.
pub async fn write_frame_async(stream: &NetStream, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame body too large"))?;
    let mut buffer = Vec::with_capacity(4 + body.len());
    buffer.extend_from_slice(&len.to_le_bytes());
    buffer.extend_from_slice(body);
    stream.write_all(&buffer).await
}

/// Reads one frame body from a reactor-driven stream (async twin of
/// [`read_frame`]): `Ok(None)` on a clean EOF *between* frames, a
/// [`WireError::Truncated`] on EOF inside one, [`MAX_FRAME_BYTES`] enforced
/// before the body is allocated.
pub async fn read_frame_async(stream: &NetStream) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match stream.read(&mut header[filled..]).await {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Truncated {
                    context: "frame header",
                })
            }
            Ok(n) => filled += n,
            Err(err) => return Err(WireError::Io(err)),
        }
    }
    let declared = u32::from_le_bytes(header);
    if declared > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge { declared });
    }
    let mut body = vec![0u8; declared as usize];
    stream.read_exact(&mut body).await.map_err(|err| {
        if err.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated {
                context: "frame body",
            }
        } else {
            WireError::Io(err)
        }
    })?;
    Ok(Some(body))
}

enum ReadOutcome {
    Full,
    Eof,
}

/// `read_exact`, except a clean EOF before the *first* byte is reported as
/// [`ReadOutcome::Eof`] instead of an error.  EOF after a partial read is a
/// truncation error.
fn read_exact_or_eof(reader: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => {
                return Err(WireError::Truncated {
                    context: "frame header",
                })
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(WireError::Io(err)),
        }
    }
    Ok(ReadOutcome::Full)
}

// ---------------------------------------------------------------------------
// Buffered session IO
// ---------------------------------------------------------------------------

/// How many bytes a [`FrameReader`] asks the socket for per `recv`: enough
/// that a burst of pipelined metrics-only requests (~100 bytes each) lands
/// in one syscall at depth 64.
const READ_CHUNK: usize = 16 * 1024;

/// A buffered frame reader: one reusable userspace buffer per session that
/// drains as many pipelined frames per `recv` as arrived, instead of the
/// two-plus syscalls per frame the unbuffered [`read_frame_async`] costs
/// (header `read_exact`, then body).
///
/// [`FrameReader::take_frame`] hands the frame body out as a slice into the
/// buffer — no per-frame allocation — whose borrow ends when the caller is
/// done decoding; consumed bytes are reclaimed by compaction on the next
/// fill.  Oversized length prefixes fail from the four buffered header bytes
/// (no body is ever buffered for them), and EOF inside a frame reports the
/// same [`WireError::Truncated`] contexts as the unbuffered path, so the
/// two are drop-in equivalents (a property test pins this).
///
/// The split into [`frame_ready`](FrameReader::frame_ready) /
/// [`take_frame`](FrameReader::take_frame) /
/// [`poll_fill`](FrameReader::poll_fill) exists for the server's session
/// loop, which must race its fills against the shutdown signal but commit
/// to any frame whose bytes have started arriving.
pub struct FrameReader {
    /// The reusable buffer; `buf[start..end]` is unconsumed stream data.
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

impl Default for FrameReader {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameReader {
    /// An empty reader; the buffer grows to its steady state on first use.
    pub fn new() -> Self {
        FrameReader {
            buf: Vec::new(),
            start: 0,
            end: 0,
        }
    }

    /// Unconsumed bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// The buffered partial frame's declared body length, once its header's
    /// four bytes are in.
    fn declared_len(&self) -> Option<u32> {
        if self.buffered() < 4 {
            return None;
        }
        Some(u32::from_le_bytes(
            self.buf[self.start..self.start + 4]
                .try_into()
                .expect("four header bytes"),
        ))
    }

    /// Whether a complete frame is buffered.  Fails with
    /// [`WireError::FrameTooLarge`] as soon as the four header bytes declare
    /// an oversized body — before any of that body is buffered.
    pub fn frame_ready(&self) -> Result<bool, WireError> {
        match self.declared_len() {
            None => Ok(false),
            Some(declared) if declared > MAX_FRAME_BYTES => {
                Err(WireError::FrameTooLarge { declared })
            }
            Some(declared) => Ok(self.buffered() >= 4 + declared as usize),
        }
    }

    /// Consumes the complete frame at the front of the buffer and returns
    /// its body as a slice (valid until the next call that mutates the
    /// reader).
    ///
    /// # Panics
    ///
    /// If no complete frame is buffered ([`FrameReader::frame_ready`] must
    /// have returned `Ok(true)`).
    pub fn take_frame(&mut self) -> &[u8] {
        let declared = self.declared_len().expect("take_frame: header buffered") as usize;
        let body_start = self.start + 4;
        let body_end = body_start + declared;
        assert!(
            body_end <= self.end,
            "take_frame called without a complete frame"
        );
        self.start = body_end;
        &self.buf[body_start..body_end]
    }

    /// Makes room for at least `want` more bytes after `end`, compacting
    /// consumed bytes to the front before growing.
    fn ensure_room(&mut self, want: usize) {
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        }
        if self.buf.len() >= self.end + want {
            return;
        }
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        if self.buf.len() < self.end + want {
            self.buf.resize(self.end + want, 0);
        }
    }

    /// Appends bytes as if a `recv` had returned them — the pure-buffer
    /// entry the chunking and property tests drive split points through.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.ensure_room(bytes.len().max(1));
        self.buf[self.end..self.end + bytes.len()].copy_from_slice(bytes);
        self.end += bytes.len();
    }

    /// Polls one `recv` into the buffer; `Ok(0)` is end-of-stream.  Sized so
    /// a visible partial frame's whole body fits in one read.
    pub fn poll_fill(
        &mut self,
        cx: &mut Context<'_>,
        stream: &NetStream,
    ) -> Poll<io::Result<usize>> {
        let want = match self.declared_len() {
            Some(declared) => {
                let total = 4 + declared.min(MAX_FRAME_BYTES) as usize;
                total.saturating_sub(self.buffered()).max(READ_CHUNK)
            }
            None => READ_CHUNK,
        };
        self.ensure_room(want);
        let end = self.end;
        let n = ready!(stream.poll_read(cx, &mut self.buf[end..]))?;
        self.end += n;
        Poll::Ready(Ok(n))
    }

    /// Reads more bytes from the stream into the buffer; `Ok(0)` is
    /// end-of-stream.
    pub async fn fill(&mut self, stream: &NetStream) -> io::Result<usize> {
        poll_fn(|cx| self.poll_fill(cx, stream)).await
    }

    /// Which decode step an EOF right now would truncate — mirrors the
    /// contexts [`read_frame_async`] reports.
    pub fn truncation_context(&self) -> &'static str {
        if self.buffered() < 4 {
            "frame header"
        } else {
            "frame body"
        }
    }

    /// Reads the next frame: the buffered twin of [`read_frame_async`],
    /// returning `Ok(None)` on a clean EOF *between* frames and
    /// [`WireError::Truncated`] on EOF inside one.
    pub async fn next_frame(&mut self, stream: &NetStream) -> Result<Option<&[u8]>, WireError> {
        loop {
            if self.frame_ready()? {
                break;
            }
            if self.fill(stream).await? == 0 {
                return if self.buffered() == 0 {
                    Ok(None)
                } else {
                    Err(WireError::Truncated {
                        context: self.truncation_context(),
                    })
                };
            }
        }
        Ok(Some(self.take_frame()))
    }

    /// Decodes the next frame against `feed`-supplied bytes only (no
    /// stream): `Ok(None)` means more bytes are needed.  This is the entry
    /// the differential tests compare against the unbuffered codec.
    pub fn try_next_fed_frame(&mut self) -> Result<Option<&[u8]>, WireError> {
        if self.frame_ready()? {
            Ok(Some(self.take_frame()))
        } else {
            Ok(None)
        }
    }
}

/// A coalescing frame writer: responses for every request decoded in the
/// same readiness burst are staged into one reusable buffer (frames are
/// encoded in place via [`encode_response_into`] — no per-frame `Vec`) and
/// flushed with a single vectored write, collapsing a pipeline-depth-64
/// burst's 64 `write_all`s into one syscall.
///
/// Server sessions must write through this — analyzer rule 7 bans direct
/// [`write_frame_async`] calls in session paths.
pub struct FrameWriter {
    buf: Vec<u8>,
}

impl Default for FrameWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameWriter {
    /// An empty writer; the buffer grows to its steady state on first use.
    pub fn new() -> Self {
        FrameWriter { buf: Vec::new() }
    }

    /// Whether anything is staged and unflushed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Bytes staged and not yet flushed.
    pub fn staged_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Stages one pre-encoded frame body (length prefix added here).
    pub fn stage(&mut self, body: &[u8]) -> io::Result<()> {
        let len = u32::try_from(body.len())
            .ok()
            .filter(|&len| len <= MAX_FRAME_BYTES)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame body too large"))?;
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(body);
        Ok(())
    }

    /// Encodes a response frame directly into the staging buffer: the
    /// length prefix is reserved up front and backfilled once the body's
    /// size is known.  On encode failure nothing is staged.
    pub fn stage_response(
        &mut self,
        request_id: u64,
        response: &Response,
    ) -> Result<(), WireError> {
        let frame_start = self.buf.len();
        self.buf.extend_from_slice(&[0u8; 4]);
        if let Err(error) = encode_response_into(&mut self.buf, request_id, response) {
            self.buf.truncate(frame_start);
            return Err(error);
        }
        let body_len = self.buf.len() - frame_start - 4;
        let Some(len) = u32::try_from(body_len)
            .ok()
            .filter(|&len| len <= MAX_FRAME_BYTES)
        else {
            self.buf.truncate(frame_start);
            return Err(WireError::Protocol(format!(
                "encoded response ({body_len} bytes) exceeds the frame limit"
            )));
        };
        self.buf[frame_start..frame_start + 4].copy_from_slice(&len.to_le_bytes());
        Ok(())
    }

    /// Flushes every staged frame with one vectored write and resets the
    /// buffer (also on error — the connection is failing anyway).
    pub async fn flush(&mut self, stream: &NetStream) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let started = watchman_core::telemetry::now();
        let mut stalled = false;
        let result = {
            let bufs = [self.buf.as_slice()];
            let mut write = std::pin::pin!(stream.write_all_vectored(&bufs));
            poll_fn(|cx| match write.as_mut().poll(cx) {
                Poll::Pending => {
                    stalled = true;
                    Poll::Pending
                }
                ready => ready,
            })
            .await
        };
        self.buf.clear();
        // Only flushes the peer's receive window actually suspended count
        // as write stalls; the common one-poll flush records nothing.
        if stalled {
            watchman_core::telemetry::global()
                .session_write_stall_us
                .record(watchman_core::telemetry::elapsed_us(started));
        }
        result
    }
}

// ---------------------------------------------------------------------------
// Body encoding / decoding
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// A bounds-checked cursor over a frame body.
struct BodyReader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn new(body: &'a [u8]) -> Self {
        BodyReader { body, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.body.len())
            .ok_or(WireError::Truncated { context })?;
        let slice = &self.body[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    fn u16(&mut self, context: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.take(2, context)?.try_into().unwrap(),
        ))
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().unwrap(),
        ))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().unwrap(),
        ))
    }

    fn f64(&mut self, context: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    fn bytes(&mut self, context: &'static str) -> Result<Vec<u8>, WireError> {
        let len = self.u32(context)? as usize;
        Ok(self.take(len, context)?.to_vec())
    }

    fn string(&mut self, context: &'static str) -> Result<String, WireError> {
        String::from_utf8(self.bytes(context)?).map_err(|_| WireError::InvalidUtf8)
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.body.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

const OP_GET: u8 = 1;
const OP_PEEK: u8 = 2;
const OP_STATS: u8 = 3;
const OP_INVALIDATE: u8 = 4;
const OP_REBALANCE_NOW: u8 = 5;
const OP_SHUTDOWN: u8 = 6;
const OP_SERVER_INFO: u8 = 7;
const OP_METRICS: u8 = 8;
const OP_TRACE_DUMP: u8 = 9;

const STATUS_OK: u8 = 0;
const STATUS_ERROR: u8 = 1;
const STATUS_BUSY: u8 = 2;

/// Encodes the handshake hello body.
pub fn encode_hello() -> Vec<u8> {
    let mut out = Vec::with_capacity(6);
    out.extend_from_slice(&MAGIC);
    put_u16(&mut out, VERSION);
    out
}

/// Decodes a handshake hello body, returning the peer's version.
///
/// The caller decides how to treat a version mismatch ([`VERSION`] is
/// exact-match; see the module docs) — this only validates the magic and the
/// frame shape.
pub fn decode_hello(body: &[u8]) -> Result<u16, WireError> {
    let mut reader = BodyReader::new(body);
    if reader.take(4, "hello magic")? != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = reader.u16("hello version")?;
    reader.finish()?;
    Ok(version)
}

/// Encodes a request frame body.
pub fn encode_request(request_id: u64, request: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_request_into(&mut out, request_id, request);
    out
}

/// Encodes a request frame body into an existing buffer (appending), so
/// batched callers can stage many frames without per-frame allocations.
pub fn encode_request_into(out: &mut Vec<u8>, request_id: u64, request: &Request) {
    put_u64(out, request_id);
    match request {
        Request::Get(get) => {
            put_u8(out, OP_GET);
            put_str(out, &get.key);
            put_u64(out, get.timestamp_us);
            put_u64(out, get.result_bytes);
            put_u64(out, get.cost_blocks);
            put_u32(out, get.fetch_delay_us);
            put_u64(out, get.deadline_hint_us);
            put_u32(out, get.payload_prefix_cap);
        }
        Request::Peek { key } => {
            put_u8(out, OP_PEEK);
            put_str(out, key);
        }
        Request::Stats => put_u8(out, OP_STATS),
        Request::Invalidate { relation } => {
            put_u8(out, OP_INVALIDATE);
            put_str(out, relation);
        }
        Request::RebalanceNow { timestamp_us } => {
            put_u8(out, OP_REBALANCE_NOW);
            put_u64(out, *timestamp_us);
        }
        Request::Shutdown => put_u8(out, OP_SHUTDOWN),
        Request::ServerInfo => put_u8(out, OP_SERVER_INFO),
        Request::Metrics => put_u8(out, OP_METRICS),
        Request::TraceDump => put_u8(out, OP_TRACE_DUMP),
    }
}

/// Decodes a request frame body into `(request_id, request)`.
pub fn decode_request(body: &[u8]) -> Result<(u64, Request), WireError> {
    let mut reader = BodyReader::new(body);
    let request_id = reader.u64("request id")?;
    let opcode = reader.u8("opcode")?;
    let request = match opcode {
        OP_GET => Request::Get(GetRequest {
            key: reader.string("GET key")?,
            timestamp_us: reader.u64("GET timestamp")?,
            result_bytes: reader.u64("GET result bytes")?,
            cost_blocks: reader.u64("GET cost")?,
            fetch_delay_us: reader.u32("GET fetch delay")?,
            deadline_hint_us: reader.u64("GET deadline hint")?,
            payload_prefix_cap: reader.u32("GET prefix cap")?,
        }),
        OP_PEEK => Request::Peek {
            key: reader.string("PEEK key")?,
        },
        OP_STATS => Request::Stats,
        OP_INVALIDATE => Request::Invalidate {
            relation: reader.string("INVALIDATE relation")?,
        },
        OP_REBALANCE_NOW => Request::RebalanceNow {
            timestamp_us: reader.u64("REBALANCE_NOW timestamp")?,
        },
        OP_SHUTDOWN => Request::Shutdown,
        OP_SERVER_INFO => Request::ServerInfo,
        OP_METRICS => Request::Metrics,
        OP_TRACE_DUMP => Request::TraceDump,
        opcode => return Err(WireError::UnknownOpcode { opcode, request_id }),
    };
    reader.finish()?;
    Ok((request_id, request))
}

/// Encodes a response frame body.
///
/// The only fallible case is `STATS` (its snapshot travels as JSON, which
/// cannot represent non-finite floats); everything else always encodes.
pub fn encode_response(request_id: u64, response: &Response) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(64);
    encode_response_into(&mut out, request_id, response)?;
    Ok(out)
}

/// Encodes a response frame body into an existing buffer (appending) — the
/// coalescing [`FrameWriter`] stages every response of a readiness burst
/// through this without per-frame allocations.  On error the buffer may
/// hold a partial body; callers that need atomicity truncate (the
/// `FrameWriter` does).
pub fn encode_response_into(
    out: &mut Vec<u8>,
    request_id: u64,
    response: &Response,
) -> Result<(), WireError> {
    put_u64(out, request_id);
    match response {
        Response::Error { message } => {
            put_u8(out, STATUS_ERROR);
            put_str(out, message);
            return Ok(());
        }
        Response::Busy { retry_after_us } => {
            put_u8(out, STATUS_BUSY);
            put_u64(out, *retry_after_us);
            return Ok(());
        }
        _ => put_u8(out, STATUS_OK),
    }
    match response {
        Response::Get(get) => {
            put_u8(out, OP_GET);
            let source = match get.source {
                WireSource::Hit => 0,
                WireSource::Executed => 1,
                WireSource::Coalesced => 2,
                WireSource::Stale => 3,
            };
            put_u8(out, source);
            put_f64(out, get.cost_blocks);
            put_u64(out, get.full_len);
            put_bytes(out, &get.prefix);
            put_u64(out, get.service_us);
            put_u8(out, u8::from(get.deadline_exceeded));
        }
        Response::Peek { cached, size_bytes } => {
            put_u8(out, OP_PEEK);
            put_u8(out, u8::from(*cached));
            put_u64(out, *size_bytes);
        }
        Response::Stats(snapshot) => {
            put_u8(out, OP_STATS);
            let json = serde_json::to_string(snapshot)
                .map_err(|err| WireError::Protocol(format!("snapshot serialization: {err}")))?;
            put_str(out, &json);
        }
        Response::Invalidate {
            affected,
            invalidated,
        } => {
            put_u8(out, OP_INVALIDATE);
            put_u32(out, *affected);
            put_u32(out, *invalidated);
        }
        Response::RebalanceNow(outcome) => {
            put_u8(out, OP_REBALANCE_NOW);
            match outcome {
                None => put_u8(out, 0),
                Some(summary) => {
                    put_u8(out, 1);
                    put_u32(out, summary.donor);
                    put_u32(out, summary.recipient);
                    put_u64(out, summary.moved_bytes);
                    put_u32(out, summary.evicted);
                }
            }
        }
        Response::Shutdown => put_u8(out, OP_SHUTDOWN),
        Response::ServerInfo {
            threads,
            workers,
            sessions,
        } => {
            put_u8(out, OP_SERVER_INFO);
            put_u32(out, *threads);
            put_u32(out, *workers);
            put_u32(out, *sessions);
        }
        Response::Metrics(snapshot) => {
            put_u8(out, OP_METRICS);
            let json = serde_json::to_string(snapshot)
                .map_err(|err| WireError::Protocol(format!("metrics serialization: {err}")))?;
            put_str(out, &json);
        }
        Response::TraceDump(dump) => {
            put_u8(out, OP_TRACE_DUMP);
            let json = serde_json::to_string(dump)
                .map_err(|err| WireError::Protocol(format!("trace serialization: {err}")))?;
            put_str(out, &json);
        }
        Response::Error { .. } | Response::Busy { .. } => unreachable!("handled above"),
    }
    Ok(())
}

/// Decodes a response frame body into `(request_id, response)`.
pub fn decode_response(body: &[u8]) -> Result<(u64, Response), WireError> {
    let mut reader = BodyReader::new(body);
    let request_id = reader.u64("response id")?;
    let status = reader.u8("status")?;
    let response = match status {
        STATUS_ERROR => Response::Error {
            message: reader.string("error message")?,
        },
        STATUS_BUSY => Response::Busy {
            retry_after_us: reader.u64("busy retry-after")?,
        },
        STATUS_OK => {
            let opcode = reader.u8("response opcode")?;
            match opcode {
                OP_GET => {
                    let source = match reader.u8("GET source")? {
                        0 => WireSource::Hit,
                        1 => WireSource::Executed,
                        2 => WireSource::Coalesced,
                        3 => WireSource::Stale,
                        value => {
                            return Err(WireError::InvalidEnum {
                                field: "lookup source",
                                value,
                            })
                        }
                    };
                    Response::Get(GetResponse {
                        source,
                        cost_blocks: reader.f64("GET cost")?,
                        full_len: reader.u64("GET full length")?,
                        prefix: reader.bytes("GET prefix")?,
                        service_us: reader.u64("GET service time")?,
                        deadline_exceeded: reader.u8("GET deadline flag")? != 0,
                    })
                }
                OP_PEEK => Response::Peek {
                    cached: reader.u8("PEEK cached")? != 0,
                    size_bytes: reader.u64("PEEK size")?,
                },
                OP_STATS => {
                    let json = reader.string("STATS body")?;
                    let snapshot: StatsSnapshot = serde_json::from_str(&json)
                        .map_err(|err| WireError::Protocol(format!("snapshot parse: {err}")))?;
                    Response::Stats(snapshot)
                }
                OP_INVALIDATE => Response::Invalidate {
                    affected: reader.u32("INVALIDATE affected")?,
                    invalidated: reader.u32("INVALIDATE invalidated")?,
                },
                OP_REBALANCE_NOW => match reader.u8("REBALANCE_NOW moved")? {
                    0 => Response::RebalanceNow(None),
                    1 => Response::RebalanceNow(Some(RebalanceSummary {
                        donor: reader.u32("REBALANCE_NOW donor")?,
                        recipient: reader.u32("REBALANCE_NOW recipient")?,
                        moved_bytes: reader.u64("REBALANCE_NOW bytes")?,
                        evicted: reader.u32("REBALANCE_NOW evicted")?,
                    })),
                    value => {
                        return Err(WireError::InvalidEnum {
                            field: "rebalance moved flag",
                            value,
                        })
                    }
                },
                OP_SHUTDOWN => Response::Shutdown,
                OP_SERVER_INFO => Response::ServerInfo {
                    threads: reader.u32("SERVER_INFO threads")?,
                    workers: reader.u32("SERVER_INFO workers")?,
                    sessions: reader.u32("SERVER_INFO sessions")?,
                },
                OP_METRICS => {
                    let json = reader.string("METRICS body")?;
                    let snapshot: MetricsSnapshot = serde_json::from_str(&json)
                        .map_err(|err| WireError::Protocol(format!("metrics parse: {err}")))?;
                    Response::Metrics(snapshot)
                }
                OP_TRACE_DUMP => {
                    let json = reader.string("TRACE_DUMP body")?;
                    let dump: TraceDump = serde_json::from_str(&json)
                        .map_err(|err| WireError::Protocol(format!("trace parse: {err}")))?;
                    Response::TraceDump(dump)
                }
                opcode => return Err(WireError::UnknownOpcode { opcode, request_id }),
            }
        }
        value => {
            return Err(WireError::InvalidEnum {
                field: "response status",
                value,
            })
        }
    };
    reader.finish()?;
    Ok((request_id, response))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip_request(request: Request) {
        let body = encode_request(7, &request);
        let (id, back) = decode_request(&body).expect("request decodes");
        assert_eq!(id, 7);
        assert_eq!(back, request);
    }

    fn round_trip_response(response: Response) {
        let body = encode_response(9, &response).expect("response encodes");
        let (id, back) = decode_response(&body).expect("response decodes");
        assert_eq!(id, 9);
        assert_eq!(back, response);
    }

    #[test]
    fn hello_round_trips_and_rejects_bad_magic() {
        let hello = encode_hello();
        assert_eq!(decode_hello(&hello).unwrap(), VERSION);
        let mut bad = hello.clone();
        bad[0] = b'X';
        assert!(matches!(decode_hello(&bad), Err(WireError::BadMagic)));
        assert!(matches!(
            decode_hello(&hello[..3]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Get(GetRequest {
            key: "SELECT sum(x) FROM t".to_owned(),
            timestamp_us: 123_456,
            result_bytes: 4_096,
            cost_blocks: 9_000,
            fetch_delay_us: 1_500,
            deadline_hint_us: 50_000,
            payload_prefix_cap: 64,
        }));
        round_trip_request(Request::Peek {
            key: "q".to_owned(),
        });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Invalidate {
            relation: "LINEITEM".to_owned(),
        });
        round_trip_request(Request::RebalanceNow { timestamp_us: 42 });
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::ServerInfo);
        round_trip_request(Request::Metrics);
        round_trip_request(Request::TraceDump);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Get(GetResponse {
            source: WireSource::Coalesced,
            cost_blocks: 1234.5,
            full_len: 99,
            prefix: vec![1, 2, 3],
            service_us: 777,
            deadline_exceeded: true,
        }));
        round_trip_response(Response::Peek {
            cached: true,
            size_bytes: 512,
        });
        round_trip_response(Response::Invalidate {
            affected: 3,
            invalidated: 2,
        });
        round_trip_response(Response::RebalanceNow(None));
        round_trip_response(Response::RebalanceNow(Some(RebalanceSummary {
            donor: 0,
            recipient: 3,
            moved_bytes: 4_096,
            evicted: 2,
        })));
        round_trip_response(Response::Shutdown);
        round_trip_response(Response::ServerInfo {
            threads: 6,
            workers: 4,
            sessions: 1024,
        });
        round_trip_response(Response::Error {
            message: "boom".to_owned(),
        });
        round_trip_response(Response::Get(GetResponse {
            source: WireSource::Stale,
            cost_blocks: 88.25,
            full_len: 42,
            prefix: vec![9],
            service_us: 13,
            deadline_exceeded: false,
        }));
        round_trip_response(Response::Busy {
            retry_after_us: 2_500,
        });
        round_trip_response(Response::Busy { retry_after_us: 0 });
    }

    #[test]
    fn telemetry_responses_round_trip() {
        use watchman_core::telemetry::{HistogramSnapshot, TraceEvent, METRICS_SCHEMA_VERSION};

        let mut histogram = HistogramSnapshot::empty();
        histogram.record(3);
        histogram.record(1_024);
        histogram.record(250_000);
        let mut snapshot = MetricsSnapshot {
            schema: METRICS_SCHEMA_VERSION,
            uptime_us: 1_234_567,
            counters: Default::default(),
            gauges: Default::default(),
            histograms: Default::default(),
        };
        snapshot.counters.insert("fetch_retries".to_owned(), 7);
        snapshot.gauges.insert("shard_count".to_owned(), 4);
        snapshot
            .histograms
            .insert("lookup_hit_us".to_owned(), histogram);
        round_trip_response(Response::Metrics(snapshot));

        round_trip_response(Response::TraceDump(TraceDump {
            schema: METRICS_SCHEMA_VERSION,
            recorded: 43,
            events: vec![TraceEvent {
                seq: 42,
                ts_us: 1_234_567,
                kind: "fetch_retry".to_owned(),
                key: 0xDEAD_BEEF,
                a: 2,
                b: 15_000,
            }],
        }));
        round_trip_response(Response::TraceDump(TraceDump {
            schema: METRICS_SCHEMA_VERSION,
            recorded: 0,
            events: Vec::new(),
        }));
    }

    #[test]
    fn telemetry_opcodes_use_the_v3_code_points() {
        // Opcode byte values are a protocol contract: METRICS is 8,
        // TRACE_DUMP is 9, both with empty request payloads.
        let metrics = encode_request(1, &Request::Metrics);
        assert_eq!(metrics[8], 8, "METRICS is opcode 8");
        assert_eq!(metrics.len(), 9, "METRICS request has no payload");
        let trace = encode_request(1, &Request::TraceDump);
        assert_eq!(trace[8], 9, "TRACE_DUMP is opcode 9");
        assert_eq!(trace.len(), 9, "TRACE_DUMP request has no payload");
    }

    #[test]
    fn stale_source_and_busy_status_use_the_v2_code_points() {
        // The wire byte values are a protocol contract: Stale is source 3,
        // BUSY is status 2 followed by the retry-after hint.
        let body = encode_response(
            1,
            &Response::Get(GetResponse {
                source: WireSource::Stale,
                cost_blocks: 0.0,
                full_len: 0,
                prefix: Vec::new(),
                service_us: 0,
                deadline_exceeded: false,
            }),
        )
        .unwrap();
        // id(8) | status(1) | opcode(1) | source(1).
        assert_eq!(body[8], 0, "OK status");
        assert_eq!(body[10], 3, "Stale is source code 3");

        let busy = encode_response(1, &Response::Busy { retry_after_us: 7 }).unwrap();
        assert_eq!(busy[8], 2, "BUSY is status code 2");
        assert_eq!(u64::from_le_bytes(busy[9..17].try_into().unwrap()), 7);
    }

    #[test]
    fn truncated_payloads_error_instead_of_panicking() {
        let body = encode_request(
            1,
            &Request::Peek {
                key: "abc".to_owned(),
            },
        );
        for cut in 0..body.len() {
            let result = decode_request(&body[..cut]);
            assert!(
                matches!(result, Err(WireError::Truncated { .. })),
                "cut at {cut} must report truncation, got {result:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = encode_request(1, &Request::Stats);
        body.push(0xFF);
        assert!(matches!(
            decode_request(&body),
            Err(WireError::TrailingBytes)
        ));
    }

    #[test]
    fn unknown_opcode_carries_the_request_id() {
        let mut body = Vec::new();
        put_u64(&mut body, 55);
        put_u8(&mut body, 200);
        match decode_request(&body) {
            Err(WireError::UnknownOpcode { opcode, request_id }) => {
                assert_eq!(opcode, 200);
                assert_eq!(request_id, 55);
            }
            other => panic!("expected UnknownOpcode, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_fails_the_stream() {
        let mut stream: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF];
        assert!(matches!(
            read_frame(&mut stream),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, b"hello").unwrap();
        write_frame(&mut buffer, b"").unwrap();
        let mut reader: &[u8] = &buffer;
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"");
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn eof_inside_a_frame_is_truncation() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, b"hello").unwrap();
        buffer.truncate(6); // header + 2 of 5 body bytes
        let mut reader: &[u8] = &buffer;
        assert!(matches!(
            read_frame(&mut reader),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn async_frames_interoperate_with_the_blocking_codec() {
        use std::io::Write as _;
        use watchman_core::runtime::net::TcpListener as NetListener;
        use watchman_core::runtime::{block_on, Runtime};

        let runtime = Runtime::with_workers(2);
        let listener = NetListener::bind(&runtime, "127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");

        // Async side: read two frames (the second empty), echo the first
        // back reversed, then observe the clean EOF.
        let server = runtime.spawn(async move {
            let (stream, _) = listener.accept().await.expect("accept");
            let first = read_frame_async(&stream)
                .await
                .expect("first frame")
                .expect("not eof");
            let second = read_frame_async(&stream)
                .await
                .expect("second frame")
                .expect("not eof");
            assert_eq!(second, b"");
            let reversed: Vec<u8> = first.iter().rev().copied().collect();
            write_frame_async(&stream, &reversed).await.expect("write");
            assert!(
                read_frame_async(&stream).await.expect("eof").is_none(),
                "peer close between frames is a clean EOF"
            );
        });

        // Blocking side: the existing sync codec on a std stream.
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        write_frame(&mut client, b"watchman").unwrap();
        write_frame(&mut client, b"").unwrap();
        client.flush().unwrap();
        let echoed = read_frame(&mut client).unwrap().expect("reply");
        assert_eq!(echoed, b"namhctaw");
        drop(client);
        block_on(server).expect("server task");
    }

    /// Drains `bytes` through a [`FrameReader`] fed in chunks whose sizes
    /// `next_chunk` picks, returning the decoded frames plus the terminal
    /// outcome (`None` = clean EOF) in the same shape as
    /// [`unbuffered_replay`] so the two can be compared byte for byte.
    fn buffered_replay(
        bytes: &[u8],
        mut next_chunk: impl FnMut() -> usize,
    ) -> (Vec<Vec<u8>>, Option<String>) {
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        let mut pos = 0;
        loop {
            match reader.try_next_fed_frame() {
                Ok(Some(frame)) => frames.push(frame.to_vec()),
                Ok(None) => {
                    if pos == bytes.len() {
                        if reader.buffered() == 0 {
                            return (frames, None);
                        }
                        let error = WireError::Truncated {
                            context: reader.truncation_context(),
                        };
                        return (frames, Some(format!("{error:?}")));
                    }
                    let n = next_chunk().clamp(1, bytes.len() - pos);
                    reader.feed(&bytes[pos..pos + n]);
                    pos += n;
                }
                Err(error) => return (frames, Some(format!("{error:?}"))),
            }
        }
    }

    /// The reference: the pre-existing unbuffered codec over the same bytes.
    fn unbuffered_replay(bytes: &[u8]) -> (Vec<Vec<u8>>, Option<String>) {
        let mut reader: &[u8] = bytes;
        let mut frames = Vec::new();
        loop {
            match read_frame(&mut reader) {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => return (frames, None),
                Err(error) => return (frames, Some(format!("{error:?}"))),
            }
        }
    }

    #[test]
    fn buffered_reader_decodes_across_every_chunk_size() {
        // Several frames including an empty one and a large one, delivered
        // 1..N bytes at a time: every split point must yield the same
        // frames and the same clean EOF.
        let bodies: Vec<Vec<u8>> = vec![
            b"first".to_vec(),
            Vec::new(),
            (0..=255u8).cycle().take(40_000).collect(),
            b"last".to_vec(),
        ];
        let mut stream = Vec::new();
        for body in &bodies {
            write_frame(&mut stream, body).unwrap();
        }
        for chunk in 1..64 {
            let (frames, outcome) = buffered_replay(&stream, || chunk);
            assert_eq!(frames, bodies, "chunk size {chunk}");
            assert_eq!(outcome, None, "chunk size {chunk}");
        }
    }

    #[test]
    fn buffered_reader_reports_oversize_from_the_header_alone() {
        // An oversized length prefix delivered one byte at a time must fail
        // exactly like the unbuffered path, without ever buffering a body.
        let mut stream = Vec::new();
        write_frame(&mut stream, b"good").unwrap();
        stream.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        stream.extend_from_slice(&[0u8; 64]); // body bytes that must not be read
        let (frames, outcome) = buffered_replay(&stream, || 1);
        let (expected_frames, expected_outcome) = unbuffered_replay(&stream);
        assert_eq!(frames, expected_frames);
        assert_eq!(outcome, expected_outcome);
        assert!(outcome.unwrap().contains("FrameTooLarge"));
    }

    proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(192))]

        /// Differential: across random frame sequences, random chunk
        /// splits, and random corruption (truncation, oversized prefix),
        /// the buffered reader yields byte-identical frames and the same
        /// terminal error as the unbuffered codec.
        #[test]
        fn buffered_reader_matches_unbuffered_codec(
            bodies in proptest::collection::vec(
                proptest::collection::vec(0u8..255, 0..40),
                0..6,
            ),
            chunk_seed in 1u64..u64::MAX,
            mutation in 0u8..4,
        ) {
            let mut stream = Vec::new();
            for body in &bodies {
                write_frame(&mut stream, body).unwrap();
            }
            match mutation {
                // 0: clean stream.
                1 => {
                    // Truncate somewhere (possibly mid-header, mid-body).
                    let cut = (chunk_seed as usize) % (stream.len() + 1);
                    stream.truncate(cut);
                }
                2 => {
                    // Append an oversized length prefix.
                    stream.extend_from_slice(&(MAX_FRAME_BYTES + 7).to_le_bytes());
                }
                3 => {
                    // Append a partial header (EOF mid-header).
                    stream.extend_from_slice(&[9, 0]);
                }
                _ => {}
            }
            // Chunk sizes from a splitmix-style generator, 1..=17 bytes.
            let mut state = chunk_seed;
            let next_chunk = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 17) as usize + 1
            };
            let (buffered, buffered_outcome) = buffered_replay(&stream, next_chunk);
            let (unbuffered, unbuffered_outcome) = unbuffered_replay(&stream);
            prop_assert_eq!(buffered, unbuffered);
            prop_assert_eq!(buffered_outcome, unbuffered_outcome);
        }
    }

    #[test]
    fn buffered_reader_drains_sockets_and_sees_clean_eof() {
        use std::io::Write as _;
        use watchman_core::runtime::net::TcpListener as NetListener;
        use watchman_core::runtime::{block_on, Runtime};

        let runtime = Runtime::with_workers(2);
        let listener = NetListener::bind(&runtime, "127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");

        let server = runtime.spawn(async move {
            let (stream, _) = listener.accept().await.expect("accept");
            let mut reader = FrameReader::new();
            let mut frames = Vec::new();
            while let Some(frame) = reader.next_frame(&stream).await.expect("frame") {
                frames.push(frame.to_vec());
            }
            frames
        });

        // Dribble three frames a byte at a time: the buffered reader must
        // reassemble them exactly and then observe the clean EOF.
        let mut stream_bytes = Vec::new();
        write_frame(&mut stream_bytes, b"alpha").unwrap();
        write_frame(&mut stream_bytes, b"").unwrap();
        write_frame(&mut stream_bytes, b"gamma").unwrap();
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        for byte in &stream_bytes {
            client.write_all(std::slice::from_ref(byte)).unwrap();
            client.flush().unwrap();
        }
        drop(client);
        let frames = block_on(server).expect("server task");
        assert_eq!(
            frames,
            vec![b"alpha".to_vec(), Vec::new(), b"gamma".to_vec()]
        );
    }

    #[test]
    fn frame_writer_coalesces_frames_the_blocking_codec_reads() {
        use watchman_core::runtime::net::TcpListener as NetListener;
        use watchman_core::runtime::{block_on, Runtime};

        let runtime = Runtime::with_workers(1);
        let listener = NetListener::bind(&runtime, "127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");

        let server = runtime.spawn(async move {
            let (stream, _) = listener.accept().await.expect("accept");
            let mut writer = FrameWriter::new();
            writer.stage(&encode_hello()).expect("stage hello");
            for id in 0..3u64 {
                writer
                    .stage_response(
                        id,
                        &Response::Peek {
                            cached: id % 2 == 0,
                            size_bytes: id * 100,
                        },
                    )
                    .expect("stage response");
            }
            assert!(!writer.is_empty());
            writer.flush(&stream).await.expect("flush burst");
            assert!(writer.is_empty(), "flush resets the staging buffer");
        });

        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        let hello = read_frame(&mut client).unwrap().expect("hello frame");
        assert_eq!(decode_hello(&hello).unwrap(), VERSION);
        for id in 0..3u64 {
            let body = read_frame(&mut client).unwrap().expect("response frame");
            let (got_id, response) = decode_response(&body).expect("decodes");
            assert_eq!(got_id, id);
            assert_eq!(
                response,
                Response::Peek {
                    cached: id % 2 == 0,
                    size_bytes: id * 100,
                }
            );
        }
        block_on(server).expect("server task");
    }

    #[test]
    fn frame_writer_rejects_oversized_bodies_without_staging() {
        let mut writer = FrameWriter::new();
        let oversized = vec![0u8; MAX_FRAME_BYTES as usize + 1];
        assert!(writer.stage(&oversized).is_err());
        assert!(
            writer.is_empty(),
            "failed stage must not leave bytes behind"
        );
        writer.stage(b"ok").expect("normal frame stages");
        assert_eq!(writer.staged_bytes(), 4 + 2);
    }

    #[test]
    fn async_oversized_prefix_fails_before_allocating() {
        use std::io::Write as _;
        use watchman_core::runtime::net::TcpListener as NetListener;
        use watchman_core::runtime::{block_on, Runtime};

        let runtime = Runtime::with_workers(1);
        let listener = NetListener::bind(&runtime, "127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = runtime.spawn(async move {
            let (stream, _) = listener.accept().await.expect("accept");
            read_frame_async(&stream).await
        });
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        client.write_all(&[0xFF, 0xFF, 0xFF, 0xFF]).unwrap();
        assert!(matches!(
            block_on(server).expect("server task"),
            Err(WireError::FrameTooLarge { .. })
        ));
    }
}
