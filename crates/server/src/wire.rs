//! The WATCHMAN wire protocol: versioned, length-prefixed binary frames.
//!
//! Every message on a connection is one **frame**:
//!
//! ```text
//! +----------------+---------------------+
//! | length: u32 LE | body: length bytes  |
//! +----------------+---------------------+
//! ```
//!
//! `length` counts only the body and must not exceed
//! [`MAX_FRAME_BYTES`]; a larger prefix is treated as a malformed stream
//! and fails the connection.  All integers are little-endian; strings are a
//! `u32` byte length followed by UTF-8 bytes; floats travel as their IEEE-754
//! bit pattern in a `u64`.
//!
//! ## Handshake
//!
//! The first frame in each direction is a **hello**:
//!
//! ```text
//! body = magic: [u8; 4] = b"WMAN" | version: u16
//! ```
//!
//! The client sends its hello first; the server answers with its own.  A
//! server that does not speak the client's version replies with its hello
//! (carrying the version it *does* speak) and closes the connection, so old
//! clients fail with a precise [`WireError::UnsupportedVersion`] instead of
//! a decode error.  Version negotiation is exact-match: [`VERSION`] bumps on
//! any incompatible change to the framing or the opcode payloads below.
//!
//! ## Requests
//!
//! ```text
//! body = request_id: u64 | opcode: u8 | payload
//! ```
//!
//! | opcode | name | payload |
//! |---|---|---|
//! | 1 | `GET` | key string, `timestamp_us: u64`, `result_bytes: u64`, `cost_blocks: u64`, `fetch_delay_us: u32`, `deadline_hint_us: u64`, `payload_prefix_cap: u32` |
//! | 2 | `PEEK` | key string |
//! | 3 | `STATS` | (empty) |
//! | 4 | `INVALIDATE` | relation string |
//! | 5 | `REBALANCE_NOW` | `timestamp_us: u64` |
//! | 6 | `SHUTDOWN` | (empty) |
//! | 7 | `SERVER_INFO` | (empty) |
//!
//! `GET` carries the replay protocol of the simulator: the key is the raw
//! query text, and `result_bytes`/`cost_blocks` describe what executing the
//! query against the warehouse would produce (on a miss the server
//! "executes" by materializing a payload of that size, sleeping
//! `fetch_delay_us` to stand in for the scan).  `deadline_hint_us` is a
//! service-time budget: the server reports (but does not enforce) whether
//! servicing exceeded it.  `payload_prefix_cap` bounds how many payload
//! bytes the response carries back — metrics-only callers send 0.
//!
//! ## Responses
//!
//! ```text
//! body = request_id: u64 | status: u8 (0 = ok, 1 = error) | payload
//! ```
//!
//! An error payload is a message string.  Ok payloads per opcode:
//!
//! | request | ok payload |
//! |---|---|
//! | `GET` | `source: u8` (0 hit, 1 executed, 2 coalesced), `cost_blocks: f64`, `full_len: u64`, prefix bytes (`u32` length + bytes), `service_us: u64`, `deadline_exceeded: u8` |
//! | `PEEK` | `cached: u8`, `size_bytes: u64` |
//! | `STATS` | JSON-encoded [`StatsSnapshot`] string |
//! | `INVALIDATE` | `affected: u32`, `invalidated: u32` |
//! | `REBALANCE_NOW` | `moved: u8`; if 1: `donor: u32`, `recipient: u32`, `moved_bytes: u64`, `evicted: u32` |
//! | `SHUTDOWN` | (empty) |
//! | `SERVER_INFO` | `threads: u32`, `workers: u32`, `sessions: u32` |
//!
//! ## Error handling rules
//!
//! Decoding is *defensive*: every read is bounds-checked and a frame that
//! cannot be decoded (bad magic, truncated payload, invalid UTF-8, trailing
//! garbage) fails **that connection only** — the server closes it and keeps
//! serving every other connection.  A *well-formed* frame with an opcode the
//! server does not know gets an error **response** instead (the request id
//! is decoded before the opcode precisely so this is possible), which is
//! what lets newer clients degrade gracefully against older servers.

use std::fmt;
use std::io::{self, Read, Write};

use watchman_core::engine::StatsSnapshot;
use watchman_core::runtime::net::TcpStream as NetStream;

/// The handshake magic: identifies a WATCHMAN wire connection.
pub const MAGIC: [u8; 4] = *b"WMAN";

/// The protocol version this build speaks (exact-match negotiation).
pub const VERSION: u16 = 1;

/// Hard upper bound on a frame body; larger length prefixes are treated as
/// stream corruption and fail the connection.
pub const MAX_FRAME_BYTES: u32 = 16 << 20;

/// Hard cap on the payload prefix a `GET` response carries, regardless of
/// the request's `payload_prefix_cap`: a cached set can be larger than a
/// frame (the server caps declared results at its own limit, not at
/// [`MAX_FRAME_BYTES`]), and a response must always fit one frame.
pub const MAX_PREFIX_BYTES: u32 = MAX_FRAME_BYTES - 1024;

/// Everything that can go wrong speaking the wire protocol.
#[derive(Debug)]
pub enum WireError {
    /// An underlying socket error.
    Io(io::Error),
    /// The peer's length prefix exceeds [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// The declared body length.
        declared: u32,
    },
    /// The stream ended inside a frame, or a payload field ran past the end
    /// of its frame body.
    Truncated {
        /// Which decode step hit the end of the data.
        context: &'static str,
    },
    /// The handshake did not start with [`MAGIC`].
    BadMagic,
    /// The peer speaks a different protocol version.
    UnsupportedVersion {
        /// The version the peer offered (or answered with).
        peer: u16,
    },
    /// A well-formed frame carried an opcode this build does not know.
    /// Carries the request id so a server can still address its error
    /// response.
    UnknownOpcode {
        /// The unknown opcode byte.
        opcode: u8,
        /// The request id decoded before the opcode.
        request_id: u64,
    },
    /// An enum byte (status, lookup source, …) held an undefined value.
    InvalidEnum {
        /// Which field held the undefined value.
        field: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// A frame body had bytes left over after its payload was fully decoded.
    TrailingBytes,
    /// The peer violated the request/response protocol (e.g. a response id
    /// that matches no outstanding request, or an unparsable STATS body).
    Protocol(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(err) => write!(f, "socket error: {err}"),
            WireError::FrameTooLarge { declared } => write!(
                f,
                "frame length {declared} exceeds the {MAX_FRAME_BYTES}-byte limit"
            ),
            WireError::Truncated { context } => {
                write!(f, "truncated frame while reading {context}")
            }
            WireError::BadMagic => f.write_str("handshake does not start with the WMAN magic"),
            WireError::UnsupportedVersion { peer } => {
                write!(
                    f,
                    "peer speaks protocol version {peer}, this build speaks {VERSION}"
                )
            }
            WireError::UnknownOpcode { opcode, .. } => write!(f, "unknown opcode {opcode}"),
            WireError::InvalidEnum { field, value } => {
                write!(f, "invalid value {value} for {field}")
            }
            WireError::InvalidUtf8 => f.write_str("string field is not valid UTF-8"),
            WireError::TrailingBytes => f.write_str("frame has trailing bytes after its payload"),
            WireError::Protocol(message) => write!(f, "protocol violation: {message}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(err: io::Error) -> Self {
        WireError::Io(err)
    }
}

/// One `GET` request: the replay protocol of the simulator carried over the
/// wire (see the [module docs](self) for field semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct GetRequest {
    /// Raw query text; the server derives the cache key with
    /// [`QueryKey::from_raw_query`](watchman_core::key::QueryKey::from_raw_query).
    pub key: String,
    /// Logical timestamp of the reference in microseconds.
    pub timestamp_us: u64,
    /// Size of the retrieved set executing the query would produce.
    pub result_bytes: u64,
    /// Execution cost of the query in logical block reads.
    pub cost_blocks: u64,
    /// Simulated execution time of a miss, in microseconds (the stand-in
    /// for a multi-second warehouse scan; 0 for deterministic replays).
    pub fetch_delay_us: u32,
    /// Service-time budget in microseconds; 0 means none.  Advisory: the
    /// response reports whether it was exceeded.
    pub deadline_hint_us: u64,
    /// Maximum number of payload bytes to return (0 = metrics only).  The
    /// server additionally clamps this to [`MAX_PREFIX_BYTES`] so the
    /// response always fits one frame.
    pub payload_prefix_cap: u32,
}

impl GetRequest {
    /// A metrics-only request (no payload bytes back, no simulated delay,
    /// no deadline) — what deterministic replays send.
    pub fn metrics_only(
        key: impl Into<String>,
        timestamp_us: u64,
        result_bytes: u64,
        cost_blocks: u64,
    ) -> Self {
        GetRequest {
            key: key.into(),
            timestamp_us,
            result_bytes,
            cost_blocks,
            fetch_delay_us: 0,
            deadline_hint_us: 0,
            payload_prefix_cap: 0,
        }
    }
}

/// A decoded request frame payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Look up a query, executing on a miss (single-flight across every
    /// connection).
    Get(GetRequest),
    /// Non-mutating admin probe: is this query cached, and how large is it?
    Peek {
        /// Raw query text of the probed key.
        key: String,
    },
    /// Fetch the engine's full [`StatsSnapshot`].
    Stats,
    /// Invalidate every cached set that depends on a base relation.
    Invalidate {
        /// The updated base relation (case-insensitive match).
        relation: String,
    },
    /// Run one capacity-rebalance pass immediately.
    RebalanceNow {
        /// Logical time at which victim profits are evaluated.
        timestamp_us: u64,
    },
    /// Stop accepting connections, drain in-flight requests, exit.
    Shutdown,
    /// Report the server process's execution-stack shape (thread count,
    /// runtime workers, live sessions).  Load tests use this to prove
    /// sessions are tasks, not threads.
    ServerInfo,
}

/// Where a [`Response::Get`] value came from (mirror of
/// [`LookupSource`](watchman_core::engine::LookupSource)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireSource {
    /// Served from cache.
    Hit,
    /// This request led the execution.
    Executed,
    /// Coalesced onto another connection's in-flight execution.
    Coalesced,
}

impl fmt::Display for WireSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireSource::Hit => f.write_str("hit"),
            WireSource::Executed => f.write_str("executed"),
            WireSource::Coalesced => f.write_str("coalesced"),
        }
    }
}

/// The per-request result of a `GET`.
#[derive(Debug, Clone, PartialEq)]
pub struct GetResponse {
    /// How the value was obtained.
    pub source: WireSource,
    /// Execution cost of the query in block reads.
    pub cost_blocks: f64,
    /// Full size of the retrieved set in bytes.
    pub full_len: u64,
    /// The first `min(full_len, payload_prefix_cap)` payload bytes.
    pub prefix: Vec<u8>,
    /// Server-side service time in microseconds.
    pub service_us: u64,
    /// Whether `service_us` exceeded the request's `deadline_hint_us`.
    pub deadline_exceeded: bool,
}

/// The outcome of a `REBALANCE_NOW` pass that moved capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceSummary {
    /// The shard that gave up capacity.
    pub donor: u32,
    /// The shard that received it.
    pub recipient: u32,
    /// Bytes moved.
    pub moved_bytes: u64,
    /// Number of sets the donor evicted to shrink.
    pub evicted: u32,
}

/// A decoded response frame payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Get`].
    Get(GetResponse),
    /// Answer to [`Request::Peek`].
    Peek {
        /// Whether the key is cached.
        cached: bool,
        /// Size of the cached set (0 when absent).
        size_bytes: u64,
    },
    /// Answer to [`Request::Stats`].
    Stats(StatsSnapshot),
    /// Answer to [`Request::Invalidate`].
    Invalidate {
        /// Sets that were registered as depending on the relation.
        affected: u32,
        /// Sets that were actually resident and removed.
        invalidated: u32,
    },
    /// Answer to [`Request::RebalanceNow`]: `None` when the pass moved
    /// nothing.
    RebalanceNow(Option<RebalanceSummary>),
    /// Answer to [`Request::Shutdown`].
    Shutdown,
    /// Answer to [`Request::ServerInfo`].
    ServerInfo {
        /// OS threads in the server process (from `/proc/self/status`;
        /// 0 when the platform cannot report it).
        threads: u32,
        /// Worker threads in the engine's runtime pool.
        workers: u32,
        /// Sessions (connections) currently live.
        sessions: u32,
    },
    /// The server failed the request (unknown opcode, internal panic, …).
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one frame (length prefix + body).
pub fn write_frame(writer: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame body too large"))?;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(body)?;
    Ok(())
}

/// Reads one frame body, enforcing [`MAX_FRAME_BYTES`].
///
/// Returns `Ok(None)` on a clean EOF *between* frames; EOF inside a frame is
/// a [`WireError::Truncated`] error.
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(reader, &mut header)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Full => {}
    }
    let declared = u32::from_le_bytes(header);
    if declared > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge { declared });
    }
    let mut body = vec![0u8; declared as usize];
    reader.read_exact(&mut body).map_err(|err| {
        if err.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated {
                context: "frame body",
            }
        } else {
            WireError::Io(err)
        }
    })?;
    Ok(Some(body))
}

/// Writes one frame to a reactor-driven stream (async twin of
/// [`write_frame`]).  The length prefix and body go out as one buffer so a
/// frame is a single `write_all` from the runtime's point of view.
pub async fn write_frame_async(stream: &NetStream, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame body too large"))?;
    let mut buffer = Vec::with_capacity(4 + body.len());
    buffer.extend_from_slice(&len.to_le_bytes());
    buffer.extend_from_slice(body);
    stream.write_all(&buffer).await
}

/// Reads one frame body from a reactor-driven stream (async twin of
/// [`read_frame`]): `Ok(None)` on a clean EOF *between* frames, a
/// [`WireError::Truncated`] on EOF inside one, [`MAX_FRAME_BYTES`] enforced
/// before the body is allocated.
pub async fn read_frame_async(stream: &NetStream) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match stream.read(&mut header[filled..]).await {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Truncated {
                    context: "frame header",
                })
            }
            Ok(n) => filled += n,
            Err(err) => return Err(WireError::Io(err)),
        }
    }
    let declared = u32::from_le_bytes(header);
    if declared > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge { declared });
    }
    let mut body = vec![0u8; declared as usize];
    stream.read_exact(&mut body).await.map_err(|err| {
        if err.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated {
                context: "frame body",
            }
        } else {
            WireError::Io(err)
        }
    })?;
    Ok(Some(body))
}

enum ReadOutcome {
    Full,
    Eof,
}

/// `read_exact`, except a clean EOF before the *first* byte is reported as
/// [`ReadOutcome::Eof`] instead of an error.  EOF after a partial read is a
/// truncation error.
fn read_exact_or_eof(reader: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => {
                return Err(WireError::Truncated {
                    context: "frame header",
                })
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(WireError::Io(err)),
        }
    }
    Ok(ReadOutcome::Full)
}

// ---------------------------------------------------------------------------
// Body encoding / decoding
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// A bounds-checked cursor over a frame body.
struct BodyReader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn new(body: &'a [u8]) -> Self {
        BodyReader { body, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.body.len())
            .ok_or(WireError::Truncated { context })?;
        let slice = &self.body[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    fn u16(&mut self, context: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.take(2, context)?.try_into().unwrap(),
        ))
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().unwrap(),
        ))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().unwrap(),
        ))
    }

    fn f64(&mut self, context: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    fn bytes(&mut self, context: &'static str) -> Result<Vec<u8>, WireError> {
        let len = self.u32(context)? as usize;
        Ok(self.take(len, context)?.to_vec())
    }

    fn string(&mut self, context: &'static str) -> Result<String, WireError> {
        String::from_utf8(self.bytes(context)?).map_err(|_| WireError::InvalidUtf8)
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.body.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

const OP_GET: u8 = 1;
const OP_PEEK: u8 = 2;
const OP_STATS: u8 = 3;
const OP_INVALIDATE: u8 = 4;
const OP_REBALANCE_NOW: u8 = 5;
const OP_SHUTDOWN: u8 = 6;
const OP_SERVER_INFO: u8 = 7;

const STATUS_OK: u8 = 0;
const STATUS_ERROR: u8 = 1;

/// Encodes the handshake hello body.
pub fn encode_hello() -> Vec<u8> {
    let mut out = Vec::with_capacity(6);
    out.extend_from_slice(&MAGIC);
    put_u16(&mut out, VERSION);
    out
}

/// Decodes a handshake hello body, returning the peer's version.
///
/// The caller decides how to treat a version mismatch ([`VERSION`] is
/// exact-match; see the module docs) — this only validates the magic and the
/// frame shape.
pub fn decode_hello(body: &[u8]) -> Result<u16, WireError> {
    let mut reader = BodyReader::new(body);
    if reader.take(4, "hello magic")? != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = reader.u16("hello version")?;
    reader.finish()?;
    Ok(version)
}

/// Encodes a request frame body.
pub fn encode_request(request_id: u64, request: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    put_u64(&mut out, request_id);
    match request {
        Request::Get(get) => {
            put_u8(&mut out, OP_GET);
            put_str(&mut out, &get.key);
            put_u64(&mut out, get.timestamp_us);
            put_u64(&mut out, get.result_bytes);
            put_u64(&mut out, get.cost_blocks);
            put_u32(&mut out, get.fetch_delay_us);
            put_u64(&mut out, get.deadline_hint_us);
            put_u32(&mut out, get.payload_prefix_cap);
        }
        Request::Peek { key } => {
            put_u8(&mut out, OP_PEEK);
            put_str(&mut out, key);
        }
        Request::Stats => put_u8(&mut out, OP_STATS),
        Request::Invalidate { relation } => {
            put_u8(&mut out, OP_INVALIDATE);
            put_str(&mut out, relation);
        }
        Request::RebalanceNow { timestamp_us } => {
            put_u8(&mut out, OP_REBALANCE_NOW);
            put_u64(&mut out, *timestamp_us);
        }
        Request::Shutdown => put_u8(&mut out, OP_SHUTDOWN),
        Request::ServerInfo => put_u8(&mut out, OP_SERVER_INFO),
    }
    out
}

/// Decodes a request frame body into `(request_id, request)`.
pub fn decode_request(body: &[u8]) -> Result<(u64, Request), WireError> {
    let mut reader = BodyReader::new(body);
    let request_id = reader.u64("request id")?;
    let opcode = reader.u8("opcode")?;
    let request = match opcode {
        OP_GET => Request::Get(GetRequest {
            key: reader.string("GET key")?,
            timestamp_us: reader.u64("GET timestamp")?,
            result_bytes: reader.u64("GET result bytes")?,
            cost_blocks: reader.u64("GET cost")?,
            fetch_delay_us: reader.u32("GET fetch delay")?,
            deadline_hint_us: reader.u64("GET deadline hint")?,
            payload_prefix_cap: reader.u32("GET prefix cap")?,
        }),
        OP_PEEK => Request::Peek {
            key: reader.string("PEEK key")?,
        },
        OP_STATS => Request::Stats,
        OP_INVALIDATE => Request::Invalidate {
            relation: reader.string("INVALIDATE relation")?,
        },
        OP_REBALANCE_NOW => Request::RebalanceNow {
            timestamp_us: reader.u64("REBALANCE_NOW timestamp")?,
        },
        OP_SHUTDOWN => Request::Shutdown,
        OP_SERVER_INFO => Request::ServerInfo,
        opcode => return Err(WireError::UnknownOpcode { opcode, request_id }),
    };
    reader.finish()?;
    Ok((request_id, request))
}

/// Encodes a response frame body.
///
/// The only fallible case is `STATS` (its snapshot travels as JSON, which
/// cannot represent non-finite floats); everything else always encodes.
pub fn encode_response(request_id: u64, response: &Response) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(64);
    put_u64(&mut out, request_id);
    match response {
        Response::Error { message } => {
            put_u8(&mut out, STATUS_ERROR);
            put_str(&mut out, message);
            return Ok(out);
        }
        _ => put_u8(&mut out, STATUS_OK),
    }
    match response {
        Response::Get(get) => {
            put_u8(&mut out, OP_GET);
            let source = match get.source {
                WireSource::Hit => 0,
                WireSource::Executed => 1,
                WireSource::Coalesced => 2,
            };
            put_u8(&mut out, source);
            put_f64(&mut out, get.cost_blocks);
            put_u64(&mut out, get.full_len);
            put_bytes(&mut out, &get.prefix);
            put_u64(&mut out, get.service_us);
            put_u8(&mut out, u8::from(get.deadline_exceeded));
        }
        Response::Peek { cached, size_bytes } => {
            put_u8(&mut out, OP_PEEK);
            put_u8(&mut out, u8::from(*cached));
            put_u64(&mut out, *size_bytes);
        }
        Response::Stats(snapshot) => {
            put_u8(&mut out, OP_STATS);
            let json = serde_json::to_string(snapshot)
                .map_err(|err| WireError::Protocol(format!("snapshot serialization: {err}")))?;
            put_str(&mut out, &json);
        }
        Response::Invalidate {
            affected,
            invalidated,
        } => {
            put_u8(&mut out, OP_INVALIDATE);
            put_u32(&mut out, *affected);
            put_u32(&mut out, *invalidated);
        }
        Response::RebalanceNow(outcome) => {
            put_u8(&mut out, OP_REBALANCE_NOW);
            match outcome {
                None => put_u8(&mut out, 0),
                Some(summary) => {
                    put_u8(&mut out, 1);
                    put_u32(&mut out, summary.donor);
                    put_u32(&mut out, summary.recipient);
                    put_u64(&mut out, summary.moved_bytes);
                    put_u32(&mut out, summary.evicted);
                }
            }
        }
        Response::Shutdown => put_u8(&mut out, OP_SHUTDOWN),
        Response::ServerInfo {
            threads,
            workers,
            sessions,
        } => {
            put_u8(&mut out, OP_SERVER_INFO);
            put_u32(&mut out, *threads);
            put_u32(&mut out, *workers);
            put_u32(&mut out, *sessions);
        }
        Response::Error { .. } => unreachable!("handled above"),
    }
    Ok(out)
}

/// Decodes a response frame body into `(request_id, response)`.
pub fn decode_response(body: &[u8]) -> Result<(u64, Response), WireError> {
    let mut reader = BodyReader::new(body);
    let request_id = reader.u64("response id")?;
    let status = reader.u8("status")?;
    let response = match status {
        STATUS_ERROR => Response::Error {
            message: reader.string("error message")?,
        },
        STATUS_OK => {
            let opcode = reader.u8("response opcode")?;
            match opcode {
                OP_GET => {
                    let source = match reader.u8("GET source")? {
                        0 => WireSource::Hit,
                        1 => WireSource::Executed,
                        2 => WireSource::Coalesced,
                        value => {
                            return Err(WireError::InvalidEnum {
                                field: "lookup source",
                                value,
                            })
                        }
                    };
                    Response::Get(GetResponse {
                        source,
                        cost_blocks: reader.f64("GET cost")?,
                        full_len: reader.u64("GET full length")?,
                        prefix: reader.bytes("GET prefix")?,
                        service_us: reader.u64("GET service time")?,
                        deadline_exceeded: reader.u8("GET deadline flag")? != 0,
                    })
                }
                OP_PEEK => Response::Peek {
                    cached: reader.u8("PEEK cached")? != 0,
                    size_bytes: reader.u64("PEEK size")?,
                },
                OP_STATS => {
                    let json = reader.string("STATS body")?;
                    let snapshot: StatsSnapshot = serde_json::from_str(&json)
                        .map_err(|err| WireError::Protocol(format!("snapshot parse: {err}")))?;
                    Response::Stats(snapshot)
                }
                OP_INVALIDATE => Response::Invalidate {
                    affected: reader.u32("INVALIDATE affected")?,
                    invalidated: reader.u32("INVALIDATE invalidated")?,
                },
                OP_REBALANCE_NOW => match reader.u8("REBALANCE_NOW moved")? {
                    0 => Response::RebalanceNow(None),
                    1 => Response::RebalanceNow(Some(RebalanceSummary {
                        donor: reader.u32("REBALANCE_NOW donor")?,
                        recipient: reader.u32("REBALANCE_NOW recipient")?,
                        moved_bytes: reader.u64("REBALANCE_NOW bytes")?,
                        evicted: reader.u32("REBALANCE_NOW evicted")?,
                    })),
                    value => {
                        return Err(WireError::InvalidEnum {
                            field: "rebalance moved flag",
                            value,
                        })
                    }
                },
                OP_SHUTDOWN => Response::Shutdown,
                OP_SERVER_INFO => Response::ServerInfo {
                    threads: reader.u32("SERVER_INFO threads")?,
                    workers: reader.u32("SERVER_INFO workers")?,
                    sessions: reader.u32("SERVER_INFO sessions")?,
                },
                opcode => return Err(WireError::UnknownOpcode { opcode, request_id }),
            }
        }
        value => {
            return Err(WireError::InvalidEnum {
                field: "response status",
                value,
            })
        }
    };
    reader.finish()?;
    Ok((request_id, response))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(request: Request) {
        let body = encode_request(7, &request);
        let (id, back) = decode_request(&body).expect("request decodes");
        assert_eq!(id, 7);
        assert_eq!(back, request);
    }

    fn round_trip_response(response: Response) {
        let body = encode_response(9, &response).expect("response encodes");
        let (id, back) = decode_response(&body).expect("response decodes");
        assert_eq!(id, 9);
        assert_eq!(back, response);
    }

    #[test]
    fn hello_round_trips_and_rejects_bad_magic() {
        let hello = encode_hello();
        assert_eq!(decode_hello(&hello).unwrap(), VERSION);
        let mut bad = hello.clone();
        bad[0] = b'X';
        assert!(matches!(decode_hello(&bad), Err(WireError::BadMagic)));
        assert!(matches!(
            decode_hello(&hello[..3]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Get(GetRequest {
            key: "SELECT sum(x) FROM t".to_owned(),
            timestamp_us: 123_456,
            result_bytes: 4_096,
            cost_blocks: 9_000,
            fetch_delay_us: 1_500,
            deadline_hint_us: 50_000,
            payload_prefix_cap: 64,
        }));
        round_trip_request(Request::Peek {
            key: "q".to_owned(),
        });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Invalidate {
            relation: "LINEITEM".to_owned(),
        });
        round_trip_request(Request::RebalanceNow { timestamp_us: 42 });
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::ServerInfo);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Get(GetResponse {
            source: WireSource::Coalesced,
            cost_blocks: 1234.5,
            full_len: 99,
            prefix: vec![1, 2, 3],
            service_us: 777,
            deadline_exceeded: true,
        }));
        round_trip_response(Response::Peek {
            cached: true,
            size_bytes: 512,
        });
        round_trip_response(Response::Invalidate {
            affected: 3,
            invalidated: 2,
        });
        round_trip_response(Response::RebalanceNow(None));
        round_trip_response(Response::RebalanceNow(Some(RebalanceSummary {
            donor: 0,
            recipient: 3,
            moved_bytes: 4_096,
            evicted: 2,
        })));
        round_trip_response(Response::Shutdown);
        round_trip_response(Response::ServerInfo {
            threads: 6,
            workers: 4,
            sessions: 1024,
        });
        round_trip_response(Response::Error {
            message: "boom".to_owned(),
        });
    }

    #[test]
    fn truncated_payloads_error_instead_of_panicking() {
        let body = encode_request(
            1,
            &Request::Peek {
                key: "abc".to_owned(),
            },
        );
        for cut in 0..body.len() {
            let result = decode_request(&body[..cut]);
            assert!(
                matches!(result, Err(WireError::Truncated { .. })),
                "cut at {cut} must report truncation, got {result:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = encode_request(1, &Request::Stats);
        body.push(0xFF);
        assert!(matches!(
            decode_request(&body),
            Err(WireError::TrailingBytes)
        ));
    }

    #[test]
    fn unknown_opcode_carries_the_request_id() {
        let mut body = Vec::new();
        put_u64(&mut body, 55);
        put_u8(&mut body, 200);
        match decode_request(&body) {
            Err(WireError::UnknownOpcode { opcode, request_id }) => {
                assert_eq!(opcode, 200);
                assert_eq!(request_id, 55);
            }
            other => panic!("expected UnknownOpcode, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_fails_the_stream() {
        let mut stream: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF];
        assert!(matches!(
            read_frame(&mut stream),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, b"hello").unwrap();
        write_frame(&mut buffer, b"").unwrap();
        let mut reader: &[u8] = &buffer;
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"");
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn eof_inside_a_frame_is_truncation() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, b"hello").unwrap();
        buffer.truncate(6); // header + 2 of 5 body bytes
        let mut reader: &[u8] = &buffer;
        assert!(matches!(
            read_frame(&mut reader),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn async_frames_interoperate_with_the_blocking_codec() {
        use std::io::Write as _;
        use watchman_core::runtime::net::TcpListener as NetListener;
        use watchman_core::runtime::{block_on, Runtime};

        let runtime = Runtime::with_workers(2);
        let listener = NetListener::bind(&runtime, "127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");

        // Async side: read two frames (the second empty), echo the first
        // back reversed, then observe the clean EOF.
        let server = runtime.spawn(async move {
            let (stream, _) = listener.accept().await.expect("accept");
            let first = read_frame_async(&stream)
                .await
                .expect("first frame")
                .expect("not eof");
            let second = read_frame_async(&stream)
                .await
                .expect("second frame")
                .expect("not eof");
            assert_eq!(second, b"");
            let reversed: Vec<u8> = first.iter().rev().copied().collect();
            write_frame_async(&stream, &reversed).await.expect("write");
            assert!(
                read_frame_async(&stream).await.expect("eof").is_none(),
                "peer close between frames is a clean EOF"
            );
        });

        // Blocking side: the existing sync codec on a std stream.
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        write_frame(&mut client, b"watchman").unwrap();
        write_frame(&mut client, b"").unwrap();
        client.flush().unwrap();
        let echoed = read_frame(&mut client).unwrap().expect("reply");
        assert_eq!(echoed, b"namhctaw");
        drop(client);
        block_on(server).expect("server task");
    }

    #[test]
    fn async_oversized_prefix_fails_before_allocating() {
        use std::io::Write as _;
        use watchman_core::runtime::net::TcpListener as NetListener;
        use watchman_core::runtime::{block_on, Runtime};

        let runtime = Runtime::with_workers(1);
        let listener = NetListener::bind(&runtime, "127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = runtime.spawn(async move {
            let (stream, _) = listener.accept().await.expect("accept");
            read_frame_async(&stream).await
        });
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        client.write_all(&[0xFF, 0xFF, 0xFF, 0xFF]).unwrap();
        assert!(matches!(
            block_on(server).expect("server task"),
            Err(WireError::FrameTooLarge { .. })
        ));
    }
}
