//! `watchmand`: the WATCHMAN cache server.
//!
//! The server front end exposes one shared [`Watchman`] engine to many
//! network clients — the multiuser deployment of paper §3, with the network
//! in place of in-process linkage:
//!
//! * an **accept task** on the engine's runtime awaits readiness on the
//!   listening socket and spawns one **session task** per connection —
//!   sessions are tasks, not threads, so a thousand idle connections cost
//!   a thousand parked futures, not a thousand stacks;
//! * session tasks decode request frames ([`crate::wire`]) over the
//!   runtime's reactor-driven streams and execute lookups through
//!   [`Watchman::get_or_execute_async`]: **hits never suspend**, and misses
//!   coalesce across *connections* through the engine's single-flight cells
//!   (two clients missing on the same query execute it once);
//! * admin opcodes (`STATS`, `PEEK`, `INVALIDATE`, `REBALANCE_NOW`,
//!   `SHUTDOWN`, `SERVER_INFO`) map onto the engine's snapshot,
//!   non-mutating probe, coherence, rebalancing and introspection entry
//!   points.
//!
//! ## Failure isolation
//!
//! A malformed or truncated frame fails **its own connection only**: the
//! session task closes the socket and every other session keeps running.
//! Each request's handling future is polled under `catch_unwind`, so an
//! internal panic surfaces as an error *response* on that connection
//! instead of taking a worker (or the server) down.
//!
//! ## Shutdown
//!
//! `SHUTDOWN` (or [`ServerHandle::shutdown`]) fires a shutdown signal that
//! every parked task observes through its registered waker — there is no
//! polling tick.  Idle sessions close at their next frame boundary; a
//! session mid-frame or mid-request gets [`DRAIN_GRACE`] to finish, after
//! which the supervisor cancels the remaining tasks by shutting the runtime
//! down.  [`ServerHandle::join`] returns once the drain completes.

use std::fmt;
use std::io;
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::thread;
use std::time::Duration;

use bytes::Bytes;
use watchman_core::clock::Timestamp;
use watchman_core::coherence::DependencyObserver;
use watchman_core::engine::{FailureConfig, LookupSource, PolicyKind, RebalanceConfig, Watchman};
use watchman_core::key::QueryKey;
use watchman_core::runtime::net::{FaultInjector, TcpListener, TcpStream};
use watchman_core::runtime::{block_on, Runtime};
use watchman_core::sync::Mutex;
use watchman_core::telemetry::{self, MetricsSnapshot, TraceKind};
use watchman_core::value::{CachePayload, ExecutionCost};

use crate::fault::FaultPlan;
use crate::wire::{
    self, GetRequest, GetResponse, RebalanceSummary, Request, Response, WireError, WireSource,
};

use std::future::{poll_fn, Future};

/// Hard cap on the retrieved-set size a single `GET` may declare; larger
/// requests are answered with an error instead of materializing the payload
/// (defensive: a corrupt or hostile `result_bytes` must not OOM the server).
pub const MAX_RESULT_BYTES: u64 = 64 << 20;

/// Back-off before retrying a failed `accept` (EMFILE, transient network
/// errors) so the accept task does not spin.
const ACCEPT_RETRY_TICK: Duration = Duration::from_millis(25);

/// How long a drain waits for in-flight sessions (a frame mid-arrival, a
/// request mid-execution) before the supervisor cancels the stragglers.
/// Bounds [`ServerHandle::join`]: a client stalled mid-frame (one byte of a
/// length prefix, then silence) must not hold the whole server's shutdown
/// hostage.
const DRAIN_GRACE: Duration = Duration::from_secs(1);

/// The payload type the server caches: real bytes, deterministically
/// synthesized from the query signature (the simulated warehouse's stand-in
/// for a materialized retrieved set).
pub type ServerPayload = Bytes;

/// Configures [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Number of engine shards.
    pub shards: usize,
    /// Replacement/admission policy of every shard.
    pub policy: PolicyKind,
    /// Total cache capacity in bytes.
    pub capacity_bytes: u64,
    /// Worker count of the engine runtime — the execution multiprogramming
    /// level (each in-flight miss occupies a worker for its duration).
    /// Session tasks share this pool; they suspend while waiting on the
    /// network, so idle connections occupy no worker.
    pub runtime_workers: usize,
    /// Optional profit-aware capacity rebalancing between shards.
    pub rebalance: Option<RebalanceConfig>,
    /// Failure-domain configuration handed to the engine: fetch retry
    /// policy, circuit breaker, stale serving, negative cache.  Only
    /// consulted on the fallible lookup path, i.e. when
    /// [`fault_plan`](Self::fault_plan) is installed.
    pub failure: FailureConfig,
    /// Maximum `GET`s allowed in flight across every session before the
    /// server sheds with `BUSY` + a retry-after hint.  `0` (the default)
    /// disables the admission gate entirely.
    pub max_inflight: usize,
    /// How long a session may stall *mid-frame* before the server evicts it
    /// (the slow-loris defence).  `None` (the default) keeps the seed
    /// behavior: a stalled peer is only bounded by shutdown's drain grace.
    pub read_deadline: Option<Duration>,
    /// Deterministic fault plan.  `Some` routes every `GET` through the
    /// engine's fallible pipeline (even an empty plan — that is what the
    /// byte-identical replay test exercises) and installs the plan's wire
    /// schedule on every accepted session stream.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards: 4,
            policy: PolicyKind::LNC_RA,
            capacity_bytes: 64 << 20,
            runtime_workers: 4,
            rebalance: None,
            failure: FailureConfig::default(),
            max_inflight: 0,
            read_deadline: None,
            fault_plan: None,
        }
    }
}

/// Why the server could not start.
#[derive(Debug)]
pub enum ServerError {
    /// Binding the listening socket failed.
    Bind {
        /// The address that could not be bound.
        addr: String,
        /// The underlying socket error.
        source: io::Error,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Bind { source, .. } => Some(source),
        }
    }
}

type RelationResolver = fn(&QueryKey) -> Vec<String>;

/// Extracts the base relations a query reads with a FROM-clause heuristic:
/// the identifiers between `FROM` and the next clause keyword, uppercased.
/// Good enough for the synthetic warehouse's templates; a real front end
/// would consult its query plans (the engine takes any resolver).
fn resolve_relations(key: &QueryKey) -> Vec<String> {
    let mut relations = Vec::new();
    let mut in_from = false;
    for token in key.text().split('\u{1}') {
        if token.eq_ignore_ascii_case("from") {
            in_from = true;
            continue;
        }
        if in_from {
            if matches!(
                token.to_ascii_uppercase().as_str(),
                "WHERE" | "GROUP" | "ORDER" | "HAVING" | "LIMIT" | "JOIN" | "ON"
            ) {
                break;
            }
            let name: String = token
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect::<String>()
                .to_ascii_uppercase();
            if !name.is_empty() {
                relations.push(name);
            }
        }
    }
    relations
}

/// Waker bookkeeping of [`ShutdownSignal`]: one slot per long-lived waiter
/// (the accept task, the supervisor, every session), so re-polling replaces
/// the waiter's waker in place instead of growing a list without bound.
struct ShutdownWakers {
    slots: Vec<Option<Waker>>,
    free: Vec<usize>,
}

/// A one-shot broadcast: tasks park on [`poll_wait`](Self::poll_wait) and
/// every registered waker fires exactly once when [`fire`](Self::fire) is
/// called.  This replaces the old 25 ms idle tick — an idle session wakes
/// because the signal wakes it, not because it polled a flag on a timer.
struct ShutdownSignal {
    fired: AtomicBool,
    wakers: Mutex<ShutdownWakers>,
}

impl ShutdownSignal {
    fn new() -> Self {
        ShutdownSignal {
            fired: AtomicBool::new(false),
            wakers: Mutex::new(ShutdownWakers {
                slots: Vec::new(),
                free: Vec::new(),
            }),
        }
    }

    fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// Claims a waker slot for one long-lived waiter.
    fn register_slot(&self) -> usize {
        let mut wakers = self.wakers.lock();
        match wakers.free.pop() {
            Some(slot) => slot,
            None => {
                wakers.slots.push(None);
                wakers.slots.len() - 1
            }
        }
    }

    fn release_slot(&self, slot: usize) {
        let mut wakers = self.wakers.lock();
        wakers.slots[slot] = None;
        wakers.free.push(slot);
    }

    /// Resolves once the signal has fired; otherwise parks the caller's
    /// waker in its slot.  The fired re-check under the lock closes the race
    /// with a concurrent [`fire`](Self::fire) (fire takes the same lock to
    /// drain the slots, so a waker registered under the lock is never lost).
    fn poll_wait(&self, slot: usize, cx: &mut Context<'_>) -> Poll<()> {
        if self.fired() {
            return Poll::Ready(());
        }
        let mut wakers = self.wakers.lock();
        if self.fired() {
            return Poll::Ready(());
        }
        let entry = &mut wakers.slots[slot];
        match entry {
            Some(existing) if existing.will_wake(cx.waker()) => {}
            _ => *entry = Some(cx.waker().clone()),
        }
        Poll::Pending
    }

    /// Fires the signal (idempotent) and wakes every parked waiter.  Wakes
    /// run after the lock drops.
    fn fire(&self) {
        if self.fired.swap(true, Ordering::SeqCst) {
            return;
        }
        let woken: Vec<Waker> = {
            let mut wakers = self.wakers.lock();
            wakers.slots.iter_mut().filter_map(Option::take).collect()
        };
        for waker in woken {
            waker.wake();
        }
    }
}

/// The state every session task shares.
struct Shared {
    engine: Watchman<ServerPayload>,
    runtime: Arc<Runtime>,
    deps: Arc<DependencyObserver<RelationResolver>>,
    shutdown: ShutdownSignal,
    /// Live session count; the supervisor drains until it reaches zero.
    sessions: AtomicUsize,
    workers: usize,
    addr: SocketAddr,
    /// Admission-gate capacity ([`ServerConfig::max_inflight`]; 0 = off).
    max_inflight: usize,
    /// `GET`s currently holding an admission permit.
    inflight: AtomicUsize,
    /// Requests shed with `BUSY` (admission gate full or deadline judged
    /// unmeetable).  Folded into `STATS` responses as
    /// `StatsSnapshot::sheds` — sheds never reach the engine, so the engine
    /// cannot count them.
    sheds: AtomicU64,
    /// EWMA of `GET` service time in µs (α = 1/8): the basis of the
    /// `BUSY` retry-after hint and of deadline-aware shedding.
    service_ewma_us: AtomicU64,
    /// Mid-frame read deadline ([`ServerConfig::read_deadline`]).
    read_deadline: Option<Duration>,
    /// Installed fault plan, if any.
    fault: Option<Arc<FaultPlan>>,
    /// Accept-order connection ids for the fault plan's wire schedule.
    conn_seq: AtomicU64,
}

/// Owns one session's slice of the shared bookkeeping (the live-session
/// count and its shutdown waker slot).  Dropping the guard releases both —
/// including when the session task is *cancelled* rather than run to
/// completion, since cancelling a task drops its future.
struct SessionGuard {
    shared: Arc<Shared>,
    slot: usize,
    /// Accept-order connection id, echoed in the open/close trace events.
    conn: u64,
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        self.shared.shutdown.release_slot(self.slot);
        let remaining = self.shared.sessions.fetch_sub(1, Ordering::SeqCst) - 1;
        telemetry::global().recorder.record(
            TraceKind::SessionClose,
            0,
            self.conn,
            remaining as u64,
        );
    }
}

/// A handle to a running server.
///
/// Dropping the handle shuts the server down and waits for it to drain.
pub struct ServerHandle {
    shared: Arc<Shared>,
    thread: Option<thread::JoinHandle<()>>,
}

impl fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.shared.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address the server is listening on (with the ephemeral port
    /// resolved).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle to the served engine — tests and embedders can inspect (or
    /// pre-warm) the cache the network clients see.
    pub fn engine(&self) -> Watchman<ServerPayload> {
        self.shared.engine.clone()
    }

    /// Initiates shutdown without waiting (idempotent).
    pub fn shutdown(&self) {
        self.shared.shutdown.fire();
    }

    /// Shuts down and waits for the accept task and every session task to
    /// drain.
    pub fn join(mut self) {
        self.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }

    /// Blocks until the server exits on its own (a client `SHUTDOWN`
    /// opcode), without initiating shutdown from this side.
    pub fn wait(mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Builds the engine, binds the listener, spawns the accept task on the
/// engine's runtime and the supervisor thread that drains on shutdown.
pub fn serve(config: ServerConfig) -> Result<ServerHandle, ServerError> {
    let deps: Arc<DependencyObserver<RelationResolver>> = Arc::new(DependencyObserver::new(
        resolve_relations as RelationResolver,
    ));
    let mut builder = Watchman::builder()
        .shards(config.shards)
        .policy(config.policy)
        .capacity_bytes(config.capacity_bytes)
        .runtime_workers(config.runtime_workers)
        .failure(config.failure.clone())
        .observer(deps.clone());
    if let Some(rebalance) = config.rebalance {
        builder = builder.rebalance(rebalance);
    }
    let engine: Watchman<ServerPayload> = builder.build();
    let runtime = engine.runtime();

    // The listener registers with the runtime's reactor at bind time (this
    // also starts the reactor thread on first use).
    let listener =
        TcpListener::bind(&runtime, &config.addr).map_err(|source| ServerError::Bind {
            addr: config.addr.clone(),
            source,
        })?;
    let addr = listener.local_addr().map_err(|source| ServerError::Bind {
        addr: config.addr.clone(),
        source,
    })?;
    let shared = Arc::new(Shared {
        engine,
        runtime: Arc::clone(&runtime),
        deps,
        shutdown: ShutdownSignal::new(),
        sessions: AtomicUsize::new(0),
        workers: config.runtime_workers.max(1),
        addr,
        max_inflight: config.max_inflight,
        inflight: AtomicUsize::new(0),
        sheds: AtomicU64::new(0),
        service_ewma_us: AtomicU64::new(0),
        read_deadline: config.read_deadline,
        fault: config.fault_plan,
        conn_seq: AtomicU64::new(0),
    });

    let accept_slot = shared.shutdown.register_slot();
    let accept_shared = Arc::clone(&shared);
    drop(runtime.spawn(accept_task(listener, accept_shared, accept_slot)));

    let supervisor_slot = shared.shutdown.register_slot();
    let supervisor_shared = Arc::clone(&shared);
    let thread = thread::Builder::new()
        .name("watchmand-supervisor".to_owned())
        .spawn(move || supervise(supervisor_shared, supervisor_slot))
        .expect("spawn supervisor thread");

    Ok(ServerHandle {
        shared,
        thread: Some(thread),
    })
}

/// The supervisor: parks until the shutdown signal fires, gives in-flight
/// sessions [`DRAIN_GRACE`] to finish, then cancels whatever remains (a
/// connection stalled mid-frame, a fetch still executing) by shutting the
/// runtime down.  Runs on its own OS thread because it outlives the worker
/// pool it tears down.
fn supervise(shared: Arc<Shared>, slot: usize) {
    block_on(poll_fn(|cx| shared.shutdown.poll_wait(slot, cx)));
    let deadline = telemetry::now() + DRAIN_GRACE;
    while shared.sessions.load(Ordering::SeqCst) > 0 && telemetry::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
    // Cancels the accept task (closing the listening socket) and any
    // straggler sessions, stops the reactor, joins the workers.
    shared.runtime.shutdown();
}

/// The accept task: awaits readiness on the listening socket, spawning one
/// detached session task per connection, until the shutdown signal fires.
/// Dropping the listener on exit closes the listening socket, so new
/// connections are refused as soon as the drain starts.
async fn accept_task(listener: TcpListener, shared: Arc<Shared>, slot: usize) {
    loop {
        // Shutdown wins over a pending connection: once draining, the
        // backlog dies with the listener.
        let accepted = poll_fn(|cx| {
            if shared.shutdown.poll_wait(slot, cx).is_ready() {
                return Poll::Ready(None);
            }
            listener.poll_accept(cx).map(Some)
        })
        .await;
        match accepted {
            None => break,
            Some(Ok((mut stream, _peer))) => {
                let conn = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
                if let Some(plan) = &shared.fault {
                    let injector: Arc<dyn FaultInjector> = Arc::clone(plan) as _;
                    stream.install_fault_injector(injector, conn);
                }
                let session_slot = shared.shutdown.register_slot();
                let live = shared.sessions.fetch_add(1, Ordering::SeqCst) + 1;
                telemetry::global()
                    .recorder
                    .record(TraceKind::SessionOpen, 0, conn, live as u64);
                // The guard travels *inside* the spawned future: if the
                // runtime drops the task without polling it (a shutdown
                // race), dropping the future still releases the count and
                // the slot.
                let guard = SessionGuard {
                    shared: Arc::clone(&shared),
                    slot: session_slot,
                    conn,
                };
                drop(shared.runtime.spawn(serve_session(stream, guard)));
            }
            Some(Err(_)) if shared.shutdown.fired() => break,
            Some(Err(_)) => {
                // Transient accept failure (EMFILE under a connection
                // storm): back off instead of spinning.
                shared.runtime.sleep(ACCEPT_RETRY_TICK).await;
            }
        }
    }
    shared.shutdown.release_slot(slot);
}

/// How one `recv` into a session's [`FrameReader`] resolved.
enum Fill {
    /// More bytes arrived; the reader may now hold complete frames.
    Bytes,
    /// The peer closed the stream.
    Eof,
    /// The shutdown signal fired while the session was idle at a frame
    /// boundary.
    Drained,
    /// The socket failed — or the peer stalled mid-frame past the
    /// configured read deadline and this session is being evicted.
    Failed,
}

/// Fills the session's read buffer, racing the shutdown signal **only while
/// no frame bytes are buffered**: available bytes always win over shutdown,
/// and once a frame has started arriving the fill commits to completing it
/// (the supervisor's grace window bounds a peer that stalls mid-frame).
///
/// With a [`ServerConfig::read_deadline`] configured, a *committed* fill —
/// a frame has started arriving — additionally races that deadline: a peer
/// that opens a frame and then stops sending (the slow loris) is evicted
/// when the deadline fires, instead of holding buffer and session state
/// until shutdown.  Idle connections at a frame boundary are untouched —
/// a parked session costs nothing.
async fn fill_or_drain(
    reader: &mut wire::FrameReader,
    stream: &TcpStream,
    shared: &Shared,
    slot: usize,
) -> Fill {
    let committed = reader.buffered() > 0;
    let mut read_deadline = match shared.read_deadline {
        Some(limit) if committed => Some(Box::pin(shared.runtime.sleep(limit))),
        _ => None,
    };
    let started = telemetry::now();
    let mut stalled = false;
    let fill = poll_fn(|cx| match reader.poll_fill(cx, stream) {
        Poll::Ready(Ok(0)) => Poll::Ready(Fill::Eof),
        Poll::Ready(Ok(_)) => Poll::Ready(Fill::Bytes),
        Poll::Ready(Err(_)) => Poll::Ready(Fill::Failed),
        Poll::Pending => {
            if let Some(deadline) = read_deadline.as_mut() {
                if deadline.as_mut().poll(cx).is_ready() {
                    let telemetry = telemetry::global();
                    telemetry.slow_loris_evictions.incr();
                    telemetry.anomaly(
                        TraceKind::SlowLorisEvict,
                        0,
                        reader.buffered() as u64,
                        telemetry::elapsed_us(started),
                    );
                    return Poll::Ready(Fill::Failed);
                }
            }
            stalled = true;
            if !committed && shared.shutdown.poll_wait(slot, cx).is_ready() {
                Poll::Ready(Fill::Drained)
            } else {
                Poll::Pending
            }
        }
    })
    .await;
    // Only fills that actually suspended count as read stalls; a committed
    // fill whose bytes were already waiting records nothing.
    if stalled && committed {
        telemetry::global()
            .session_read_stall_us
            .record(telemetry::elapsed_us(started));
    }
    fill
}

/// Whether [`await_frame`] left a complete frame at the front of the
/// session's reader or the session should end.
enum Awaited {
    /// `reader.take_frame()` will yield the next request frame.
    Ready,
    /// Clean close, drain, IO failure, or a corrupt stream: the session is
    /// over (staged responses for earlier frames in the burst have been
    /// flushed best-effort).
    End,
}

/// Drives the session's reader until a complete frame is buffered.  Staged
/// responses are flushed before the session suspends for more bytes — a
/// pipelined client is waiting on exactly those responses to send its next
/// burst — and best-effort on the failure paths, so good frames decoded
/// before in-stream garbage still get their answers.
async fn await_frame(
    reader: &mut wire::FrameReader,
    writer: &mut wire::FrameWriter,
    stream: &TcpStream,
    shared: &Shared,
    slot: usize,
) -> Awaited {
    loop {
        match reader.frame_ready() {
            Ok(true) => return Awaited::Ready,
            Ok(false) => {}
            // Oversized length prefix: the stream is corrupt.  Answer what
            // was already staged, then fail this connection only.
            Err(_) => {
                let _ = writer.flush(stream).await;
                return Awaited::End;
            }
        }
        if writer.flush(stream).await.is_err() {
            return Awaited::End;
        }
        match fill_or_drain(reader, stream, shared, slot).await {
            Fill::Bytes => {}
            // Clean close between frames, drain, truncation mid-frame, or a
            // dead socket: nothing is staged (flushed just above), so end.
            Fill::Eof | Fill::Drained | Fill::Failed => return Awaited::End,
        }
    }
}

/// Polls `future` to completion with every poll wrapped in `catch_unwind`:
/// the async analogue of running a request handler inside `catch_unwind`.
/// A panic anywhere in handling (engine internals, a user observer, a
/// leader panic resumed in a waiter) resolves to `Err` instead of killing
/// the session task.
async fn catch_task_panic<F: Future>(future: F) -> Result<F::Output, ()> {
    let mut future = Box::pin(future);
    poll_fn(
        move |cx| match catch_unwind(AssertUnwindSafe(|| future.as_mut().poll(cx))) {
            Ok(Poll::Ready(output)) => Poll::Ready(Ok(output)),
            Ok(Poll::Pending) => Poll::Pending,
            Err(_) => Poll::Ready(Err(())),
        },
    )
    .await
}

/// One session: handshake, then a request/response loop until the client
/// hangs up, a frame fails to decode, or the server drains.  Requests on a
/// connection are handled strictly in order (pipelined clients rely on
/// response order), so the session is a plain sequential `async` loop.
///
/// IO is buffered on both sides: a [`wire::FrameReader`] drains every
/// pipelined request a single `recv` delivered, and responses accumulate in
/// a [`wire::FrameWriter`] that is flushed with one vectored write per burst
/// — right before the session suspends for more input — instead of one
/// `send` per frame.
async fn serve_session(stream: TcpStream, guard: SessionGuard) {
    let shared = Arc::clone(&guard.shared);
    let slot = guard.slot;
    let _ = stream.set_nodelay(true);
    let mut reader = wire::FrameReader::new();
    let mut writer = wire::FrameWriter::new();

    // Handshake: expect the client hello, always answer with ours (so a
    // version-mismatched client learns what this server speaks), then bail
    // on mismatch.
    let client_version = {
        match await_frame(&mut reader, &mut writer, &stream, &shared, slot).await {
            Awaited::End => return,
            Awaited::Ready => match wire::decode_hello(reader.take_frame()) {
                Ok(version) => version,
                Err(_) => return, // malformed handshake: fail this connection only
            },
        }
    };
    if writer.stage(&wire::encode_hello()).is_err() || writer.flush(&stream).await.is_err() {
        return;
    }
    if client_version != wire::VERSION {
        return;
    }

    loop {
        match await_frame(&mut reader, &mut writer, &stream, &shared, slot).await {
            Awaited::Ready => {}
            // Clean close, drain, or a malformed/truncated frame: this
            // connection ends; every other connection keeps running.
            Awaited::End => return,
        }
        // Decode before the handler runs so the borrow of the reader's
        // buffer ends ahead of the first await point.
        let decoded = wire::decode_request(reader.take_frame());
        let (request_id, response, shutdown_after) = match decoded {
            Ok((request_id, request)) => {
                let shutdown_after = matches!(request, Request::Shutdown);
                let response = match catch_task_panic(handle_request(&shared, request)).await {
                    Ok(response) => response,
                    Err(()) => Response::Error {
                        message: "internal panic while handling request".to_owned(),
                    },
                };
                (request_id, response, shutdown_after)
            }
            // A well-formed frame with an unknown opcode is answered, not
            // fatal: newer clients degrade gracefully.
            Err(WireError::UnknownOpcode { opcode, request_id }) => (
                request_id,
                Response::Error {
                    message: format!("unknown opcode {opcode}"),
                },
                false,
            ),
            // Any other decode failure means the stream is corrupt.  Flush
            // responses already staged for good frames in this burst, then
            // give up on the connection.
            Err(_) => {
                let _ = writer.flush(&stream).await;
                return;
            }
        };
        if writer.stage_response(request_id, &response).is_err() {
            let _ = writer.flush(&stream).await;
            return;
        }
        if shutdown_after {
            let _ = writer.flush(&stream).await;
            shared.shutdown.fire();
            return;
        }
    }
}

/// Deterministic payload bytes for a simulated execution: the query
/// signature repeated to the declared length, so replays materialize
/// identical bytes on every run.
fn synthesize_payload(signature: u64, len: u64) -> Bytes {
    let pattern = signature.to_le_bytes();
    let len = len as usize;
    let mut data = Vec::with_capacity(len);
    while data.len() < len {
        let take = pattern.len().min(len - data.len());
        data.extend_from_slice(&pattern[..take]);
    }
    Bytes::from(data)
}

/// The OS thread count of this process, from `/proc/self/status`.  `None`
/// where procfs is unavailable — the `SERVER_INFO` response reports 0 then.
fn process_thread_count() -> Option<u32> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_thread_count(&status)
}

fn parse_thread_count(status: &str) -> Option<u32> {
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

async fn handle_request(shared: &Shared, request: Request) -> Response {
    match request {
        Request::Get(get) => handle_get(shared, get).await,
        Request::Peek { key } => {
            let key = QueryKey::from_raw_query(&key);
            match shared.engine.peek(&key) {
                Some(value) => Response::Peek {
                    cached: true,
                    size_bytes: value.size_bytes(),
                },
                None => Response::Peek {
                    cached: false,
                    size_bytes: 0,
                },
            }
        }
        Request::Stats => {
            // The engine never sees shed requests, so the server owns the
            // shed counter and folds it into the snapshot here.
            let mut snapshot = shared.engine.stats_snapshot();
            snapshot.sheds = shared.sheds.load(Ordering::Relaxed);
            Response::Stats(snapshot)
        }
        Request::Invalidate { relation } => {
            let report = shared.deps.apply_update(&shared.engine, &relation);
            Response::Invalidate {
                affected: report.affected.len() as u32,
                invalidated: report.invalidated.len() as u32,
            }
        }
        Request::RebalanceNow { timestamp_us } => {
            let outcome = shared
                .engine
                .rebalance_now(Timestamp::from_micros(timestamp_us));
            Response::RebalanceNow(outcome.map(|outcome| RebalanceSummary {
                donor: outcome.donor as u32,
                recipient: outcome.recipient as u32,
                moved_bytes: outcome.moved_bytes,
                evicted: outcome.evicted.len() as u32,
            }))
        }
        Request::Shutdown => Response::Shutdown,
        Request::ServerInfo => Response::ServerInfo {
            threads: process_thread_count().unwrap_or(0),
            workers: shared.workers as u32,
            sessions: shared.sessions.load(Ordering::SeqCst) as u32,
        },
        Request::Metrics => Response::Metrics(metrics_snapshot(shared)),
        Request::TraceDump => Response::TraceDump(telemetry::global().recorder.dump()),
    }
}

/// Assembles the `METRICS` exposition: the process-global registry plus the
/// entries only this layer can see — scheduler counters, queue depth, live
/// sessions, the admission gate, and the engine's fragmentation average
/// (refreshed by taking a stats snapshot, which also updates the per-shard
/// occupancy gauges under the shard locks).
fn metrics_snapshot(shared: &Shared) -> MetricsSnapshot {
    let stats = shared.engine.stats_snapshot();
    let mut snapshot = telemetry::global().snapshot();
    let scheduler = shared.runtime.scheduler_stats();
    snapshot
        .counters
        .insert("runtime.scheduler.steals".to_owned(), scheduler.steals);
    snapshot
        .counters
        .insert("runtime.scheduler.parks".to_owned(), scheduler.parks);
    let mut gauge = |name: &str, value: u64| {
        snapshot.gauges.insert(name.to_owned(), value);
    };
    gauge("runtime.queue_depth", shared.runtime.queue_depth() as u64);
    gauge("runtime.workers", shared.workers as u64);
    gauge("runtime.alive_tasks", shared.runtime.alive_tasks() as u64);
    gauge(
        "server.sessions",
        shared.sessions.load(Ordering::SeqCst) as u64,
    );
    gauge(
        "server.inflight",
        shared.inflight.load(Ordering::SeqCst) as u64,
    );
    gauge("server.max_inflight", shared.max_inflight as u64);
    gauge(
        "server.service_ewma_us",
        shared.service_ewma_us.load(Ordering::Relaxed),
    );
    gauge(
        "engine.fragmentation.used_permille",
        (stats.fragmentation.average_used_fraction() * 1000.0) as u64,
    );
    snapshot
}

/// An admission permit: one slot of [`ServerConfig::max_inflight`], held
/// for the duration of one `GET`'s handling.  Dropping the permit releases
/// the slot — including when the handling future is cancelled or panics,
/// since both drop the future.
struct InflightPermit<'a> {
    /// `None` when the gate is disabled (nothing to release).
    shared: Option<&'a Shared>,
}

impl<'a> InflightPermit<'a> {
    /// Claims a slot, or reports the retry-after hint to shed with.
    fn try_acquire(shared: &'a Shared) -> Result<InflightPermit<'a>, u64> {
        if shared.max_inflight == 0 {
            return Ok(InflightPermit { shared: None });
        }
        let mut current = shared.inflight.load(Ordering::SeqCst);
        loop {
            if current >= shared.max_inflight {
                return Err(retry_after_hint(shared));
            }
            match shared.inflight.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    return Ok(InflightPermit {
                        shared: Some(shared),
                    })
                }
                Err(observed) => current = observed,
            }
        }
    }
}

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        if let Some(shared) = self.shared {
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// The `BUSY` retry-after hint: the observed service-time EWMA, clamped so
/// a cold server still hints something sane and a pathological sample
/// cannot tell clients to go away for minutes.
fn retry_after_hint(shared: &Shared) -> u64 {
    shared
        .service_ewma_us
        .load(Ordering::Relaxed)
        .clamp(1_000, 100_000)
}

/// One shed: the server-local counter (folded into `STATS`), the telemetry
/// counter, and a `Shed` anomaly trace carrying the refused query's
/// signature and the hint the client was sent.
fn record_shed(shared: &Shared, get: &GetRequest, retry_after_us: u64) {
    shared.sheds.fetch_add(1, Ordering::Relaxed);
    let telemetry = telemetry::global();
    telemetry.sheds.incr();
    telemetry.anomaly(
        TraceKind::Shed,
        QueryKey::from_raw_query(&get.key).signature().value(),
        shared.inflight.load(Ordering::SeqCst) as u64,
        retry_after_us,
    );
}

/// Folds one `GET`'s service time into the EWMA (α = 1/8).
fn record_service_time(shared: &Shared, service_us: u64) {
    let previous = shared.service_ewma_us.load(Ordering::Relaxed);
    let next = if previous == 0 {
        service_us
    } else {
        previous - previous / 8 + service_us / 8
    };
    shared.service_ewma_us.store(next, Ordering::Relaxed);
}

async fn handle_get(shared: &Shared, get: GetRequest) -> Response {
    if get.result_bytes > MAX_RESULT_BYTES {
        return Response::Error {
            message: format!(
                "result_bytes {} exceeds the {MAX_RESULT_BYTES}-byte limit",
                get.result_bytes
            ),
        };
    }
    // Overload control, ahead of any engine work.  Two sheds, both answered
    // with `BUSY` + a retry-after hint instead of queueing:
    //  * the admission gate is full — more in-flight `GET`s would only grow
    //    queueing delay past every deadline;
    //  * the request carries a deadline the service-time EWMA already says
    //    the server cannot meet — doing the work anyway would burn a worker
    //    to produce an answer the client has given up on.
    let _permit = match InflightPermit::try_acquire(shared) {
        Ok(permit) => permit,
        Err(retry_after_us) => {
            record_shed(shared, &get, retry_after_us);
            return Response::Busy { retry_after_us };
        }
    };
    if shared.max_inflight > 0 && get.deadline_hint_us != 0 {
        let estimate = shared.service_ewma_us.load(Ordering::Relaxed);
        if estimate > get.deadline_hint_us {
            let retry_after_us = retry_after_hint(shared);
            record_shed(shared, &get, retry_after_us);
            return Response::Busy { retry_after_us };
        }
    }
    let started = telemetry::now();
    let key = QueryKey::from_raw_query(&get.key);
    let now = Timestamp::from_micros(get.timestamp_us);
    let signature = key.signature().value();
    let result_bytes = get.result_bytes;
    let cost_blocks = get.cost_blocks;
    let fetch_delay = Duration::from_micros(u64::from(get.fetch_delay_us));
    // Misses execute on the engine runtime (single-flight across every
    // connection); hits resolve on the first poll without suspending the
    // session at all.  With a fault plan installed the lookup runs through
    // the engine's *fallible* pipeline — retry, breaker, stale serving,
    // negative cache — and a terminal failure answers this request with an
    // error response instead of killing the session.
    let lookup = match &shared.fault {
        Some(plan) => {
            let plan = Arc::clone(plan);
            let outcome = shared
                .engine
                .try_get_or_execute_async(&key, now, move || {
                    if let Some(error) = plan.fetch_fault(signature) {
                        return Err(error);
                    }
                    if !fetch_delay.is_zero() {
                        thread::sleep(fetch_delay);
                    }
                    Ok((
                        synthesize_payload(signature, result_bytes),
                        ExecutionCost::from_blocks(cost_blocks),
                    ))
                })
                .await;
            match outcome {
                Ok(lookup) => lookup,
                Err(failure) => {
                    record_service_time(
                        shared,
                        u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
                    );
                    return Response::Error {
                        message: format!("fetch failed: {}", failure.error.message()),
                    };
                }
            }
        }
        None => {
            shared
                .engine
                .get_or_execute_async(&key, now, move || {
                    if !fetch_delay.is_zero() {
                        thread::sleep(fetch_delay);
                    }
                    (
                        synthesize_payload(signature, result_bytes),
                        ExecutionCost::from_blocks(cost_blocks),
                    )
                })
                .await
        }
    };
    let service_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    record_service_time(shared, service_us);
    let source = match lookup.source {
        LookupSource::Hit => WireSource::Hit,
        LookupSource::Executed => WireSource::Executed,
        LookupSource::Coalesced => WireSource::Coalesced,
        LookupSource::Stale => WireSource::Stale,
    };
    let full_len = lookup.value.size_bytes();
    // Clamp to MAX_PREFIX_BYTES: the cached set may legally be bigger than
    // a wire frame, but the response must always fit one.
    let prefix_len =
        (get.payload_prefix_cap.min(wire::MAX_PREFIX_BYTES) as usize).min(lookup.value.len());
    Response::Get(GetResponse {
        source,
        cost_blocks: get.cost_blocks as f64,
        full_len,
        prefix: lookup.value[..prefix_len].to_vec(),
        service_us,
        deadline_exceeded: get.deadline_hint_us != 0 && service_us > get.deadline_hint_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_resolver_reads_the_from_clause() {
        let key = QueryKey::from_raw_query(
            "SELECT sum(l_price) FROM lineitem, orders WHERE l_orderkey = o_orderkey",
        );
        assert_eq!(resolve_relations(&key), vec!["LINEITEM", "ORDERS"]);
        let no_from = QueryKey::from_raw_query("SELECT 1");
        assert!(resolve_relations(&no_from).is_empty());
    }

    #[test]
    fn synthesized_payloads_are_deterministic_and_sized() {
        let a = synthesize_payload(0xDEAD_BEEF, 20);
        let b = synthesize_payload(0xDEAD_BEEF, 20);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        assert_eq!(synthesize_payload(1, 0).len(), 0);
        assert_eq!(synthesize_payload(1, 3).len(), 3);
    }

    #[test]
    fn thread_count_parses_proc_status() {
        let status = "Name:\twatchmand\nThreads:\t7\nVmPeak:\t  123 kB\n";
        assert_eq!(parse_thread_count(status), Some(7));
        assert_eq!(parse_thread_count("no such field"), None);
        // The live procfs read reports at least this thread on Linux.
        if let Some(threads) = process_thread_count() {
            assert!(threads >= 1);
        }
    }

    #[test]
    fn shutdown_signal_wakes_slots_exactly_once_and_recycles_them() {
        use std::task::Wake;

        struct Flag(AtomicBool);
        impl Wake for Flag {
            fn wake(self: Arc<Self>) {
                self.0.store(true, Ordering::SeqCst);
            }
        }

        let signal = ShutdownSignal::new();
        let a = signal.register_slot();
        let b = signal.register_slot();
        assert_ne!(a, b);

        let flag = Arc::new(Flag(AtomicBool::new(false)));
        let waker = Waker::from(Arc::clone(&flag));
        let mut cx = Context::from_waker(&waker);
        assert!(signal.poll_wait(a, &mut cx).is_pending());
        // Re-polling replaces the parked waker in place: no growth.
        assert!(signal.poll_wait(a, &mut cx).is_pending());

        signal.fire();
        assert!(flag.0.load(Ordering::SeqCst), "parked waker fired");
        assert!(signal.poll_wait(a, &mut cx).is_ready());
        assert!(signal.poll_wait(b, &mut cx).is_ready());

        // Released slots are recycled, not leaked.
        signal.release_slot(a);
        let c = signal.register_slot();
        assert_eq!(c, a);
    }
}
