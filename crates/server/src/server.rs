//! `watchmand`: the WATCHMAN cache server.
//!
//! The server front end exposes one shared [`Watchman`] engine to many
//! network clients — the multiuser deployment of paper §3, with the network
//! in place of in-process linkage:
//!
//! * a `std::net` **accept loop** on its own thread hands each connection to
//!   a session thread;
//! * session threads decode request frames ([`crate::wire`]) and execute
//!   lookups through [`Watchman::get_or_execute_async`] on the engine's
//!   hand-rolled runtime: **hits never touch the runtime**, and misses
//!   coalesce across *connections* through the engine's single-flight cells
//!   (two clients missing on the same query execute it once);
//! * admin opcodes (`STATS`, `PEEK`, `INVALIDATE`, `REBALANCE_NOW`,
//!   `SHUTDOWN`) map onto the engine's snapshot, non-mutating probe,
//!   coherence and rebalancing entry points.
//!
//! ## Failure isolation
//!
//! A malformed or truncated frame fails **its own connection only**: the
//! session thread closes the socket and every other session keeps running.
//! Request handling is wrapped in `catch_unwind`, so an internal panic
//! surfaces as an error *response* on that connection instead of taking a
//! thread (or the server) down.
//!
//! ## Shutdown
//!
//! `SHUTDOWN` (or [`ServerHandle::shutdown`]) drains: the listener stops
//! accepting, session threads finish the request they are on and exit at
//! their next idle tick, and [`ServerHandle::join`] returns once all of them
//! are gone.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bytes::Bytes;
use watchman_core::clock::Timestamp;
use watchman_core::coherence::DependencyObserver;
use watchman_core::engine::{LookupSource, PolicyKind, RebalanceConfig, Watchman};
use watchman_core::key::QueryKey;
use watchman_core::runtime::block_on;
use watchman_core::value::{CachePayload, ExecutionCost};

use crate::wire::{
    self, GetRequest, GetResponse, RebalanceSummary, Request, Response, WireError, WireSource,
};

/// Hard cap on the retrieved-set size a single `GET` may declare; larger
/// requests are answered with an error instead of materializing the payload
/// (defensive: a corrupt or hostile `result_bytes` must not OOM the server).
pub const MAX_RESULT_BYTES: u64 = 64 << 20;

/// How often an idle session thread wakes to check for shutdown.
const IDLE_TICK: Duration = Duration::from_millis(25);

/// The payload type the server caches: real bytes, deterministically
/// synthesized from the query signature (the simulated warehouse's stand-in
/// for a materialized retrieved set).
pub type ServerPayload = Bytes;

/// Configures [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Number of engine shards.
    pub shards: usize,
    /// Replacement/admission policy of every shard.
    pub policy: PolicyKind,
    /// Total cache capacity in bytes.
    pub capacity_bytes: u64,
    /// Worker count of the engine runtime — the execution multiprogramming
    /// level (each in-flight miss occupies a worker for its duration).
    pub runtime_workers: usize,
    /// Optional profit-aware capacity rebalancing between shards.
    pub rebalance: Option<RebalanceConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards: 4,
            policy: PolicyKind::LNC_RA,
            capacity_bytes: 64 << 20,
            runtime_workers: 4,
            rebalance: None,
        }
    }
}

/// Why the server could not start.
#[derive(Debug)]
pub enum ServerError {
    /// Binding the listening socket failed.
    Bind {
        /// The address that could not be bound.
        addr: String,
        /// The underlying socket error.
        source: io::Error,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Bind { source, .. } => Some(source),
        }
    }
}

type RelationResolver = fn(&QueryKey) -> Vec<String>;

/// Extracts the base relations a query reads with a FROM-clause heuristic:
/// the identifiers between `FROM` and the next clause keyword, uppercased.
/// Good enough for the synthetic warehouse's templates; a real front end
/// would consult its query plans (the engine takes any resolver).
fn resolve_relations(key: &QueryKey) -> Vec<String> {
    let mut relations = Vec::new();
    let mut in_from = false;
    for token in key.text().split('\u{1}') {
        if token.eq_ignore_ascii_case("from") {
            in_from = true;
            continue;
        }
        if in_from {
            if matches!(
                token.to_ascii_uppercase().as_str(),
                "WHERE" | "GROUP" | "ORDER" | "HAVING" | "LIMIT" | "JOIN" | "ON"
            ) {
                break;
            }
            let name: String = token
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect::<String>()
                .to_ascii_uppercase();
            if !name.is_empty() {
                relations.push(name);
            }
        }
    }
    relations
}

/// The state every session thread shares.
struct Shared {
    engine: Watchman<ServerPayload>,
    deps: Arc<DependencyObserver<RelationResolver>>,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    /// Initiates drain: stop accepting, let session threads finish and exit.
    fn request_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // The accept loop blocks in `accept`; a throwaway connection
            // wakes it so it can observe the flag.  A wildcard bind address
            // (0.0.0.0 / ::) is not connectable on every platform, so aim
            // the wake-up at the matching loopback address instead.
            let mut target = self.addr;
            if target.ip().is_unspecified() {
                target.set_ip(match target.ip() {
                    std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                    std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
                });
            }
            let _ = TcpStream::connect_timeout(&target, Duration::from_millis(500));
        }
    }
}

/// A handle to a running server.
///
/// Dropping the handle shuts the server down and waits for it to drain.
pub struct ServerHandle {
    shared: Arc<Shared>,
    thread: Option<thread::JoinHandle<()>>,
}

impl fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.shared.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address the server is listening on (with the ephemeral port
    /// resolved).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle to the served engine — tests and embedders can inspect (or
    /// pre-warm) the cache the network clients see.
    pub fn engine(&self) -> Watchman<ServerPayload> {
        self.shared.engine.clone()
    }

    /// Initiates shutdown without waiting (idempotent).
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Shuts down and waits for the accept loop and every session thread to
    /// drain.
    pub fn join(mut self) {
        self.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }

    /// Blocks until the server exits on its own (a client `SHUTDOWN`
    /// opcode), without initiating shutdown from this side.
    pub fn wait(mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Builds the engine, binds the listener and starts the accept loop.
pub fn serve(config: ServerConfig) -> Result<ServerHandle, ServerError> {
    let deps: Arc<DependencyObserver<RelationResolver>> = Arc::new(DependencyObserver::new(
        resolve_relations as RelationResolver,
    ));
    let mut builder = Watchman::builder()
        .shards(config.shards)
        .policy(config.policy)
        .capacity_bytes(config.capacity_bytes)
        .runtime_workers(config.runtime_workers)
        .observer(deps.clone());
    if let Some(rebalance) = config.rebalance {
        builder = builder.rebalance(rebalance);
    }
    let engine: Watchman<ServerPayload> = builder.build();

    let listener = TcpListener::bind(&config.addr).map_err(|source| ServerError::Bind {
        addr: config.addr.clone(),
        source,
    })?;
    let addr = listener.local_addr().map_err(|source| ServerError::Bind {
        addr: config.addr.clone(),
        source,
    })?;
    let shared = Arc::new(Shared {
        engine,
        deps,
        shutdown: AtomicBool::new(false),
        addr,
    });

    let accept_shared = Arc::clone(&shared);
    let thread = thread::Builder::new()
        .name("watchmand-accept".to_owned())
        .spawn(move || accept_loop(listener, accept_shared))
        .expect("spawn accept thread");

    Ok(ServerHandle {
        shared,
        thread: Some(thread),
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut sessions: Vec<thread::JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                sessions.retain(|session| !session.is_finished());
                let shared = Arc::clone(&shared);
                let session = thread::Builder::new()
                    .name("watchmand-session".to_owned())
                    .spawn(move || serve_connection(stream, shared))
                    .expect("spawn session thread");
                sessions.push(session);
            }
            Err(_) if shared.shutdown.load(Ordering::SeqCst) => break,
            Err(_) => thread::sleep(IDLE_TICK),
        }
    }
    drop(listener);
    // Drain: every session finishes its in-flight request and exits at its
    // next idle tick.
    for session in sessions {
        let _ = session.join();
    }
}

/// How long a drain waits for a frame that has *started* arriving before
/// giving the connection up.  Bounds [`ServerHandle::join`]: a client
/// stalled mid-frame (one byte of a length prefix, then silence) must not
/// hold the whole server's shutdown hostage.
const DRAIN_GRACE: Duration = Duration::from_secs(1);

/// Reads one frame, tolerating read-timeout ticks.  While no byte of the
/// frame has arrived, a shutdown request resolves to `Ok(None)` (idle
/// close); once a frame has started, the read is allowed to finish — but
/// only for [`DRAIN_GRACE`] past the shutdown request, so a connection
/// stalled mid-frame cannot block the drain forever.
fn read_frame_idle(
    stream: &mut TcpStream,
    stop: &AtomicBool,
) -> Result<Option<Vec<u8>>, WireError> {
    // Set when shutdown is first observed with a frame in progress.
    let mut drain_deadline: Option<Instant> = None;
    let mut check_stop = |started: bool| -> bool {
        if !stop.load(Ordering::SeqCst) {
            return false;
        }
        if !started {
            return true;
        }
        let deadline = *drain_deadline.get_or_insert_with(|| Instant::now() + DRAIN_GRACE);
        Instant::now() >= deadline
    };
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        if check_stop(filled > 0) {
            return Ok(None);
        }
        match stream.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Truncated {
                    context: "frame header",
                })
            }
            Ok(n) => filled += n,
            Err(err)
                if matches!(
                    err.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(err) => return Err(WireError::Io(err)),
        }
    }
    let declared = u32::from_le_bytes(header);
    if declared > wire::MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge { declared });
    }
    let mut body = vec![0u8; declared as usize];
    let mut filled = 0;
    while filled < body.len() {
        if check_stop(true) {
            return Ok(None);
        }
        match stream.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(WireError::Truncated {
                    context: "frame body",
                })
            }
            Ok(n) => filled += n,
            Err(err)
                if matches!(
                    err.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(err) => return Err(WireError::Io(err)),
        }
    }
    Ok(Some(body))
}

/// One session: handshake, then a request/response loop until the client
/// hangs up, a frame fails to decode, or the server drains.
fn serve_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IDLE_TICK));

    // Handshake: expect the client hello, always answer with ours (so a
    // version-mismatched client learns what this server speaks), then bail
    // on mismatch.
    let client_version = match read_frame_idle(&mut stream, &shared.shutdown) {
        Ok(Some(body)) => match wire::decode_hello(&body) {
            Ok(version) => version,
            Err(_) => return, // malformed handshake: fail this connection only
        },
        _ => return,
    };
    if wire::write_frame(&mut stream, &wire::encode_hello()).is_err() {
        return;
    }
    if client_version != wire::VERSION {
        return;
    }

    loop {
        let body = match read_frame_idle(&mut stream, &shared.shutdown) {
            Ok(Some(body)) => body,
            // Clean close, drain, or a malformed/truncated frame: this
            // connection ends; every other connection keeps running.
            Ok(None) | Err(_) => return,
        };
        let (request_id, response, shutdown_after) = match wire::decode_request(&body) {
            Ok((request_id, request)) => {
                let shutdown_after = matches!(request, Request::Shutdown);
                // A panic anywhere in request handling (engine internals, a
                // user observer) must fail the request, not the thread.
                let response = catch_unwind(AssertUnwindSafe(|| handle_request(&shared, request)))
                    .unwrap_or_else(|_| Response::Error {
                        message: "internal panic while handling request".to_owned(),
                    });
                (request_id, response, shutdown_after)
            }
            // A well-formed frame with an unknown opcode is answered, not
            // fatal: newer clients degrade gracefully.
            Err(WireError::UnknownOpcode { opcode, request_id }) => (
                request_id,
                Response::Error {
                    message: format!("unknown opcode {opcode}"),
                },
                false,
            ),
            // Any other decode failure means the stream is corrupt.
            Err(_) => return,
        };
        let Ok(encoded) = wire::encode_response(request_id, &response) else {
            return;
        };
        if wire::write_frame(&mut stream, &encoded).is_err() || stream.flush().is_err() {
            return;
        }
        if shutdown_after {
            shared.request_shutdown();
            return;
        }
    }
}

/// Deterministic payload bytes for a simulated execution: the query
/// signature repeated to the declared length, so replays materialize
/// identical bytes on every run.
fn synthesize_payload(signature: u64, len: u64) -> Bytes {
    let pattern = signature.to_le_bytes();
    let len = len as usize;
    let mut data = Vec::with_capacity(len);
    while data.len() < len {
        let take = pattern.len().min(len - data.len());
        data.extend_from_slice(&pattern[..take]);
    }
    Bytes::from(data)
}

fn handle_request(shared: &Shared, request: Request) -> Response {
    match request {
        Request::Get(get) => handle_get(shared, get),
        Request::Peek { key } => {
            let key = QueryKey::from_raw_query(&key);
            match shared.engine.peek(&key) {
                Some(value) => Response::Peek {
                    cached: true,
                    size_bytes: value.size_bytes(),
                },
                None => Response::Peek {
                    cached: false,
                    size_bytes: 0,
                },
            }
        }
        Request::Stats => Response::Stats(shared.engine.stats_snapshot()),
        Request::Invalidate { relation } => {
            let report = shared.deps.apply_update(&shared.engine, &relation);
            Response::Invalidate {
                affected: report.affected.len() as u32,
                invalidated: report.invalidated.len() as u32,
            }
        }
        Request::RebalanceNow { timestamp_us } => {
            let outcome = shared
                .engine
                .rebalance_now(Timestamp::from_micros(timestamp_us));
            Response::RebalanceNow(outcome.map(|outcome| RebalanceSummary {
                donor: outcome.donor as u32,
                recipient: outcome.recipient as u32,
                moved_bytes: outcome.moved_bytes,
                evicted: outcome.evicted.len() as u32,
            }))
        }
        Request::Shutdown => Response::Shutdown,
    }
}

fn handle_get(shared: &Shared, get: GetRequest) -> Response {
    if get.result_bytes > MAX_RESULT_BYTES {
        return Response::Error {
            message: format!(
                "result_bytes {} exceeds the {MAX_RESULT_BYTES}-byte limit",
                get.result_bytes
            ),
        };
    }
    let started = Instant::now();
    let key = QueryKey::from_raw_query(&get.key);
    let now = Timestamp::from_micros(get.timestamp_us);
    let signature = key.signature().value();
    let result_bytes = get.result_bytes;
    let cost_blocks = get.cost_blocks;
    let fetch_delay = Duration::from_micros(u64::from(get.fetch_delay_us));
    // Misses execute on the engine runtime (single-flight across every
    // connection); hits are answered under the shard lock without touching
    // the runtime at all.
    let lookup = block_on(shared.engine.get_or_execute_async(&key, now, move || {
        if !fetch_delay.is_zero() {
            thread::sleep(fetch_delay);
        }
        (
            synthesize_payload(signature, result_bytes),
            ExecutionCost::from_blocks(cost_blocks),
        )
    }));
    let service_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    let source = match lookup.source {
        LookupSource::Hit => WireSource::Hit,
        LookupSource::Executed => WireSource::Executed,
        LookupSource::Coalesced => WireSource::Coalesced,
    };
    let full_len = lookup.value.size_bytes();
    // Clamp to MAX_PREFIX_BYTES: the cached set may legally be bigger than
    // a wire frame, but the response must always fit one.
    let prefix_len =
        (get.payload_prefix_cap.min(wire::MAX_PREFIX_BYTES) as usize).min(lookup.value.len());
    Response::Get(GetResponse {
        source,
        cost_blocks: get.cost_blocks as f64,
        full_len,
        prefix: lookup.value[..prefix_len].to_vec(),
        service_us,
        deadline_exceeded: get.deadline_hint_us != 0 && service_us > get.deadline_hint_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_resolver_reads_the_from_clause() {
        let key = QueryKey::from_raw_query(
            "SELECT sum(l_price) FROM lineitem, orders WHERE l_orderkey = o_orderkey",
        );
        assert_eq!(resolve_relations(&key), vec!["LINEITEM", "ORDERS"]);
        let no_from = QueryKey::from_raw_query("SELECT 1");
        assert!(resolve_relations(&no_from).is_empty());
    }

    #[test]
    fn synthesized_payloads_are_deterministic_and_sized() {
        let a = synthesize_payload(0xDEAD_BEEF, 20);
        let b = synthesize_payload(0xDEAD_BEEF, 20);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        assert_eq!(synthesize_payload(1, 0).len(), 0);
        assert_eq!(synthesize_payload(1, 3).len(), 3);
    }
}
