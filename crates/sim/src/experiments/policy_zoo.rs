//! Extension ablation: LNC-RA against the wider policy zoo.
//!
//! Beyond the paper's LNC-RA / LNC-R / LRU comparison, this experiment also
//! runs LRU-K, LFU, LCS (the ADMS baselines discussed in §5) and
//! GreedyDual-Size (the cost/size-aware policy that later became standard).
//! It quantifies how much of LNC-RA's advantage comes from using *any*
//! cost/size information versus from the specific profit metric and admission
//! control.

use serde::{Deserialize, Serialize};

use crate::policy_kind::PolicyKind;
use crate::runner::{run_policy, RunResult};
use crate::table::{percent, ratio, TextTable};
use crate::workload::{ExperimentScale, Workload};

/// The cache fractions used by the ablation.
pub const CACHE_FRACTIONS: [f64; 3] = [0.005, 0.01, 0.05];

/// Results of the zoo on one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyZooResult {
    /// Benchmark label.
    pub benchmark: String,
    /// Cache fractions swept.
    pub fractions: Vec<f64>,
    /// Policy labels.
    pub policies: Vec<String>,
    /// Runs indexed `[policy][fraction]`.
    pub runs: Vec<Vec<RunResult>>,
}

impl PolicyZooResult {
    /// The CSR of a policy at a fraction index.
    pub fn csr(&self, policy: &str, fraction_index: usize) -> Option<f64> {
        let idx = self.policies.iter().position(|p| p == policy)?;
        self.runs[idx]
            .get(fraction_index)
            .map(|r| r.cost_savings_ratio)
    }
}

/// The complete policy-zoo ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyZooExperiment {
    /// One result per benchmark.
    pub results: Vec<PolicyZooResult>,
}

impl PolicyZooExperiment {
    /// Runs the ablation with the default fractions.
    pub fn run(scale: ExperimentScale) -> Self {
        Self::run_with_fractions(scale, &CACHE_FRACTIONS)
    }

    /// Runs the ablation with custom fractions.
    pub fn run_with_fractions(scale: ExperimentScale, fractions: &[f64]) -> Self {
        let policies = PolicyKind::all();
        let results = Workload::both(scale)
            .into_iter()
            .map(|workload| {
                let runs = policies
                    .iter()
                    .map(|&kind| {
                        fractions
                            .iter()
                            .map(|&f| run_policy(&workload.trace, kind, f))
                            .collect()
                    })
                    .collect();
                PolicyZooResult {
                    benchmark: workload.kind().label().to_owned(),
                    fractions: fractions.to_vec(),
                    policies: policies.iter().map(PolicyKind::label).collect(),
                    runs,
                }
            })
            .collect();
        PolicyZooExperiment { results }
    }

    /// Renders one CSR table per benchmark.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for result in &self.results {
            let mut headers: Vec<String> = vec!["policy".to_owned()];
            headers.extend(result.fractions.iter().map(|f| percent(*f)));
            let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut table = TextTable::new(
                format!(
                    "Ablation: CSR of the full policy zoo ({})",
                    result.benchmark
                ),
                &header_refs,
            );
            for (policy, runs) in result.policies.iter().zip(&result.runs) {
                let mut row = vec![policy.clone()];
                row.extend(runs.iter().map(|r| ratio(r.cost_savings_ratio)));
                table.push_row(row);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lnc_ra_is_at_or_near_the_top_of_the_zoo() {
        let experiment =
            PolicyZooExperiment::run_with_fractions(ExperimentScale::quick(2_500), &[0.01]);
        for result in &experiment.results {
            let lnc = result.csr("LNC-RA", 0).unwrap();
            // LNC-RA must clearly dominate every cost/size-blind policy.
            for blind in ["LRU", "LRU-4", "LFU"] {
                let other = result.csr(blind, 0).unwrap();
                assert!(
                    lnc > other,
                    "{}: LNC-RA ({lnc}) beaten by the cost-blind {blind} ({other})",
                    result.benchmark
                );
            }
            // Against the other size/cost-aware policies (LCS, GreedyDual-Size)
            // LNC-RA must stay in the same league; on some workload/cache
            // combinations LCS-style size-only eviction can edge ahead.
            for policy in &result.policies {
                let other = result.csr(policy, 0).unwrap();
                assert!(
                    lnc >= other * 0.75,
                    "{}: LNC-RA ({lnc}) clearly beaten by {policy} ({other})",
                    result.benchmark
                );
            }
        }
    }

    #[test]
    fn cost_aware_policies_beat_cost_blind_ones_on_skewed_workloads() {
        // On the Set Query trace (heavily skewed costs), the cost/size-aware
        // policies (LNC-RA, GreedyDual-Size) must beat the cost-blind LRU.
        let experiment =
            PolicyZooExperiment::run_with_fractions(ExperimentScale::quick(2_500), &[0.01]);
        let sq = experiment
            .results
            .iter()
            .find(|r| r.benchmark == "Set Query")
            .unwrap();
        let lru = sq.csr("LRU", 0).unwrap();
        assert!(sq.csr("LNC-RA", 0).unwrap() > lru);
        assert!(sq.csr("GreedyDual-Size", 0).unwrap() > lru * 0.9);
    }

    #[test]
    fn render_lists_all_policies() {
        let experiment =
            PolicyZooExperiment::run_with_fractions(ExperimentScale::quick(300), &[0.01]);
        let rendered = experiment.render();
        for policy in PolicyKind::all() {
            assert!(rendered.contains(&policy.label()), "missing {policy}");
        }
    }
}
