//! Optimality-gap experiment (ties the §2.3 analysis to the traces).
//!
//! Theorem 1 shows that, under a stationary reference distribution and
//! negligible fragmentation, the static selection produced by the greedy
//! LNC\* algorithm is optimal.  This experiment computes, for each benchmark
//! trace and cache size, the cost savings ratio that the *static* LNC\*
//! selection would achieve (using the trace's empirical reference counts as
//! the probability estimates, and charging one compulsory miss per distinct
//! query) and compares it with what the *on-line* LNC-RA policy actually
//! achieved.  The gap measures how much is lost to on-line estimation and
//! transient behaviour.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use watchman_core::theory::{lnc_star_skipping, KnapsackItem};
use watchman_warehouse::QueryInstance;

use crate::policy_kind::PolicyKind;
use crate::runner::run_policy;
use crate::table::{percent, ratio, TextTable};
use crate::workload::{ExperimentScale, Workload};

/// One row of the optimality-gap table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimalityRow {
    /// Benchmark label.
    pub benchmark: String,
    /// Cache size as a fraction of the database.
    pub cache_fraction: f64,
    /// CSR achieved by on-line LNC-RA.
    pub online_csr: f64,
    /// CSR the static LNC\* selection would achieve on the same trace.
    pub static_csr: f64,
}

/// The complete optimality-gap experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimalityExperiment {
    /// One row per (benchmark, cache fraction).
    pub rows: Vec<OptimalityRow>,
}

/// Per-distinct-query aggregates extracted from a trace.
struct QueryAggregate {
    references: u64,
    cost_blocks: u64,
    result_bytes: u64,
}

impl OptimalityExperiment {
    /// Runs the experiment for the given cache fractions.
    pub fn run(scale: ExperimentScale, fractions: &[f64]) -> Self {
        let mut rows = Vec::new();
        for workload in Workload::both(scale) {
            let aggregates = Self::aggregate(&workload);
            let items: Vec<KnapsackItem> = aggregates
                .values()
                .map(|a| {
                    KnapsackItem::new(a.references as f64, a.cost_blocks as f64, a.result_bytes)
                })
                .collect();
            let total_cost: f64 = aggregates
                .values()
                .map(|a| a.references as f64 * a.cost_blocks as f64)
                .sum();
            for &fraction in fractions {
                let capacity = (workload.database_bytes() as f64 * fraction).round() as u64;
                let selection = lnc_star_skipping(&items, capacity);
                // A statically cached query still pays one compulsory miss to
                // materialize its retrieved set; all later references hit.
                let saved: f64 = selection
                    .chosen
                    .iter()
                    .map(|&i| (items[i].probability - 1.0).max(0.0) * items[i].cost)
                    .sum();
                let static_csr = if total_cost > 0.0 {
                    saved / total_cost
                } else {
                    0.0
                };
                let online = run_policy(&workload.trace, PolicyKind::LNC_RA, fraction);
                rows.push(OptimalityRow {
                    benchmark: workload.kind().label().to_owned(),
                    cache_fraction: fraction,
                    online_csr: online.cost_savings_ratio,
                    static_csr,
                });
            }
        }
        OptimalityExperiment { rows }
    }

    fn aggregate(workload: &Workload) -> HashMap<QueryInstance, QueryAggregate> {
        let mut aggregates: HashMap<QueryInstance, QueryAggregate> = HashMap::new();
        for record in workload.trace.iter() {
            let entry = aggregates.entry(record.instance).or_insert(QueryAggregate {
                references: 0,
                cost_blocks: record.cost_blocks,
                result_bytes: record.result_bytes,
            });
            entry.references += 1;
        }
        aggregates
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(
            "Optimality gap: on-line LNC-RA vs static LNC* selection",
            &["benchmark", "cache", "LNC-RA CSR", "LNC* CSR", "gap"],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.benchmark.clone(),
                percent(row.cache_fraction),
                ratio(row.online_csr),
                ratio(row.static_csr),
                ratio(row.static_csr - row.online_csr),
            ]);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_policy_comes_close_to_the_static_oracle() {
        let experiment = OptimalityExperiment::run(ExperimentScale::quick(2_500), &[0.01]);
        assert_eq!(experiment.rows.len(), 2);
        for row in &experiment.rows {
            assert!(
                row.static_csr > 0.0,
                "{}: static CSR is zero",
                row.benchmark
            );
            // The on-line policy cannot be expected to beat the informed
            // static selection by much, and must reach a reasonable fraction
            // of it.
            assert!(
                row.online_csr > 0.4 * row.static_csr,
                "{}: online {} too far below static {}",
                row.benchmark,
                row.online_csr,
                row.static_csr
            );
        }
    }

    #[test]
    fn render_mentions_both_quantities() {
        let experiment = OptimalityExperiment::run(ExperimentScale::quick(400), &[0.01]);
        let rendered = experiment.render();
        assert!(rendered.contains("LNC-RA CSR"));
        assert!(rendered.contains("LNC* CSR"));
    }
}
