//! Figure 6: external cache fragmentation.
//!
//! The optimality argument of §2.3 assumes the cache can always be filled
//! almost completely.  Figure 6 verifies that assumption experimentally by
//! measuring the average fraction of *used* cache space for LNC-RA, LNC-R and
//! LRU across cache sizes: the paper finds LNC-RA stays above 96 % used
//! (typically 98.5 %) and even the policies without admission control stay
//! above 88 %.

use serde::{Deserialize, Serialize};

use crate::policy_kind::PolicyKind;
use crate::runner::run_policy;
use crate::table::{percent, TextTable};
use crate::workload::{ExperimentScale, Workload};

/// The cache-size sweep used by Figure 6 (the paper starts at 0.2 %).
pub const PAPER_CACHE_FRACTIONS: [f64; 7] = [0.002, 0.005, 0.01, 0.02, 0.03, 0.04, 0.05];

/// Used-space fractions of one policy across the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FragmentationSeries {
    /// Policy label.
    pub policy: String,
    /// Average used fraction per cache fraction.
    pub avg_used: Vec<f64>,
    /// Minimum observed used fraction per cache fraction.
    pub min_used: Vec<f64>,
}

/// The Figure 6 result for one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FragmentationResult {
    /// Benchmark label.
    pub benchmark: String,
    /// The cache fractions swept.
    pub fractions: Vec<f64>,
    /// One series per policy.
    pub series: Vec<FragmentationSeries>,
}

/// The complete Figure 6 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FragmentationExperiment {
    /// One result per benchmark.
    pub results: Vec<FragmentationResult>,
}

impl FragmentationExperiment {
    /// Runs the experiment with the paper's sweep.
    pub fn run(scale: ExperimentScale) -> Self {
        Self::run_with_fractions(scale, &PAPER_CACHE_FRACTIONS)
    }

    /// Runs the experiment with a custom sweep.
    pub fn run_with_fractions(scale: ExperimentScale, fractions: &[f64]) -> Self {
        let policies = PolicyKind::paper_trio();
        let results = Workload::both(scale)
            .into_iter()
            .map(|workload| {
                let series = policies
                    .iter()
                    .map(|&kind| {
                        let runs: Vec<_> = fractions
                            .iter()
                            .map(|&f| run_policy(&workload.trace, kind, f))
                            .collect();
                        FragmentationSeries {
                            policy: kind.label(),
                            avg_used: runs.iter().map(|r| r.avg_used_fraction).collect(),
                            min_used: runs.iter().map(|r| r.min_used_fraction).collect(),
                        }
                    })
                    .collect();
                FragmentationResult {
                    benchmark: workload.kind().label().to_owned(),
                    fractions: fractions.to_vec(),
                    series,
                }
            })
            .collect();
        FragmentationExperiment { results }
    }

    /// Renders one table per benchmark (average used space, as in Figure 6).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for result in &self.results {
            let mut headers: Vec<String> = vec!["policy".to_owned()];
            headers.extend(result.fractions.iter().map(|f| percent(*f)));
            let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut table = TextTable::new(
                format!(
                    "Figure 6: % of cache space used ({}) vs cache size",
                    result.benchmark
                ),
                &header_refs,
            );
            for series in &result.series {
                let mut row = vec![series.policy.clone()];
                row.extend(series.avg_used.iter().map(|v| percent(*v)));
                table.push_row(row);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_are_well_utilized_once_warm() {
        // The assumption behind Theorem 1: unused space is a small fraction
        // of the cache.  The steady-state (average) utilization must be high
        // for every policy; LNC-RA must not be worse than the baselines by
        // more than a small margin.
        let experiment = FragmentationExperiment::run_with_fractions(
            ExperimentScale::quick(3_000),
            &[0.005, 0.02],
        );
        for result in &experiment.results {
            for series in &result.series {
                for (&fraction, &avg) in result.fractions.iter().zip(&series.avg_used) {
                    assert!(
                        avg > 0.70,
                        "{} / {} @ {:.3}: average used fraction {} too low",
                        result.benchmark,
                        series.policy,
                        fraction,
                        avg
                    );
                }
            }
        }
    }

    #[test]
    fn lnc_ra_utilization_is_competitive() {
        let experiment =
            FragmentationExperiment::run_with_fractions(ExperimentScale::quick(2_000), &[0.01]);
        for result in &experiment.results {
            let get = |label: &str| {
                result
                    .series
                    .iter()
                    .find(|s| s.policy == label)
                    .map(|s| s.avg_used[0])
                    .unwrap()
            };
            let lnc_ra = get("LNC-RA");
            let lru = get("LRU");
            assert!(
                lnc_ra > lru - 0.15,
                "{}: LNC-RA utilization {} collapsed relative to LRU {}",
                result.benchmark,
                lnc_ra,
                lru
            );
        }
    }

    #[test]
    fn render_contains_percentages() {
        let experiment =
            FragmentationExperiment::run_with_fractions(ExperimentScale::quick(400), &[0.01]);
        let rendered = experiment.render();
        assert!(rendered.contains("Figure 6"));
        assert!(rendered.contains('%'));
        assert!(rendered.contains("LNC-RA"));
    }
}
