//! Figures 4 and 5: cost savings ratio and hit ratio as a function of cache
//! size, plus the admission-control ablation the paper reports in §4.2.
//!
//! The paper sweeps cache sizes from 0.1 % to 5 % of the database size and
//! compares LNC-RA, LNC-R and vanilla LRU, with the infinite-cache value as
//! an upper bound.  The headline findings reproduced here:
//!
//! * LNC-RA consistently outperforms LRU, by the largest factor at the
//!   smallest cache sizes;
//! * the admission algorithm (LNC-RA vs LNC-R) always helps, again most at
//!   small cache sizes;
//! * cost savings ratios converge to the infinite-cache ceiling much faster
//!   than hit ratios.

use serde::{Deserialize, Serialize};

use crate::policy_kind::PolicyKind;
use crate::runner::{run_infinite, run_policy, RunResult};
use crate::table::{percent, ratio, TextTable};
use crate::workload::{ExperimentScale, Workload};

/// The cache-size sweep used by Figures 4–6 (fractions of database size).
pub const PAPER_CACHE_FRACTIONS: [f64; 8] = [0.001, 0.002, 0.005, 0.01, 0.02, 0.03, 0.04, 0.05];

/// A reduced sweep for quick runs.
pub const QUICK_CACHE_FRACTIONS: [f64; 4] = [0.002, 0.01, 0.03, 0.05];

/// Results of one benchmark's sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Benchmark label.
    pub benchmark: String,
    /// The cache fractions swept.
    pub fractions: Vec<f64>,
    /// Per-policy results, indexed `[policy][fraction]`.
    pub runs: Vec<Vec<RunResult>>,
    /// Policy labels, parallel to `runs`.
    pub policies: Vec<String>,
    /// The infinite-cache upper bound.
    pub infinite: RunResult,
}

impl SweepResult {
    /// The runs of a policy by label.
    pub fn policy_runs(&self, label: &str) -> Option<&[RunResult]> {
        self.policies
            .iter()
            .position(|p| p == label)
            .map(|i| self.runs[i].as_slice())
    }

    /// The average CSR improvement factor of `a` over `b` across the sweep.
    pub fn average_csr_factor(&self, a: &str, b: &str) -> f64 {
        let (Some(a_runs), Some(b_runs)) = (self.policy_runs(a), self.policy_runs(b)) else {
            return 0.0;
        };
        let factors: Vec<f64> = a_runs
            .iter()
            .zip(b_runs)
            .filter(|(_, b)| b.cost_savings_ratio > 0.0)
            .map(|(a, b)| a.cost_savings_ratio / b.cost_savings_ratio)
            .collect();
        if factors.is_empty() {
            0.0
        } else {
            factors.iter().sum::<f64>() / factors.len() as f64
        }
    }

    /// The maximum CSR improvement factor of `a` over `b` (the paper reports
    /// it is reached at the smallest cache size).
    pub fn max_csr_factor(&self, a: &str, b: &str) -> f64 {
        let (Some(a_runs), Some(b_runs)) = (self.policy_runs(a), self.policy_runs(b)) else {
            return 0.0;
        };
        a_runs
            .iter()
            .zip(b_runs)
            .filter(|(_, b)| b.cost_savings_ratio > 0.0)
            .map(|(a, b)| a.cost_savings_ratio / b.cost_savings_ratio)
            .fold(0.0, f64::max)
    }
}

/// The complete Figures 4/5 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostSavingsExperiment {
    /// One sweep per benchmark.
    pub sweeps: Vec<SweepResult>,
}

impl CostSavingsExperiment {
    /// Runs the experiment with the paper's cache-size sweep.
    pub fn run(scale: ExperimentScale) -> Self {
        Self::run_with_fractions(scale, &PAPER_CACHE_FRACTIONS)
    }

    /// Runs the experiment with a custom cache-size sweep.
    pub fn run_with_fractions(scale: ExperimentScale, fractions: &[f64]) -> Self {
        let policies = PolicyKind::paper_trio();
        let sweeps = Workload::both(scale)
            .into_iter()
            .map(|workload| {
                let runs: Vec<Vec<RunResult>> = policies
                    .iter()
                    .map(|&kind| {
                        fractions
                            .iter()
                            .map(|&fraction| run_policy(&workload.trace, kind, fraction))
                            .collect()
                    })
                    .collect();
                SweepResult {
                    benchmark: workload.kind().label().to_owned(),
                    fractions: fractions.to_vec(),
                    policies: policies.iter().map(PolicyKind::label).collect(),
                    runs,
                    infinite: run_infinite(&workload.trace),
                }
            })
            .collect();
        CostSavingsExperiment { sweeps }
    }

    fn render_metric(
        &self,
        title_prefix: &str,
        metric: impl Fn(&RunResult) -> f64,
        infinite_metric: impl Fn(&RunResult) -> f64,
    ) -> String {
        let mut out = String::new();
        for sweep in &self.sweeps {
            let mut headers: Vec<String> = vec!["policy".to_owned()];
            headers.extend(sweep.fractions.iter().map(|f| percent(*f)));
            let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut table = TextTable::new(
                format!(
                    "{title_prefix} ({}) vs cache size (% of database)",
                    sweep.benchmark
                ),
                &header_refs,
            );
            for (policy, runs) in sweep.policies.iter().zip(&sweep.runs) {
                let mut row = vec![policy.clone()];
                row.extend(runs.iter().map(|r| ratio(metric(r))));
                table.push_row(row);
            }
            let mut inf_row = vec!["inf".to_owned()];
            inf_row.extend(
                sweep
                    .fractions
                    .iter()
                    .map(|_| ratio(infinite_metric(&sweep.infinite))),
            );
            table.push_row(inf_row);
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }

    /// Renders the Figure 4 tables (cost savings ratio).
    pub fn render_cost_savings(&self) -> String {
        self.render_metric(
            "Figure 4: cost savings ratio",
            |r| r.cost_savings_ratio,
            |r| r.cost_savings_ratio,
        )
    }

    /// Renders the Figure 5 tables (hit ratio).
    pub fn render_hit_ratio(&self) -> String {
        self.render_metric("Figure 5: hit ratio", |r| r.hit_ratio, |r| r.hit_ratio)
    }

    /// Renders the §4.2 summary: average/maximum improvement factors of
    /// LNC-RA over LRU and over LNC-R (the admission-control ablation).
    pub fn render_summary(&self) -> String {
        let mut table = TextTable::new(
            "Section 4.2 summary: CSR improvement factors",
            &[
                "benchmark",
                "LNC-RA/LRU avg",
                "LNC-RA/LRU max",
                "LNC-RA/LNC-R avg",
                "LNC-RA/LNC-R max",
            ],
        );
        for sweep in &self.sweeps {
            table.push_row(vec![
                sweep.benchmark.clone(),
                format!("{:.2}x", sweep.average_csr_factor("LNC-RA", "LRU")),
                format!("{:.2}x", sweep.max_csr_factor("LNC-RA", "LRU")),
                format!("{:.2}x", sweep.average_csr_factor("LNC-RA", "LNC-R")),
                format!("{:.2}x", sweep.max_csr_factor("LNC-RA", "LNC-R")),
            ]);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_experiment() -> CostSavingsExperiment {
        CostSavingsExperiment::run_with_fractions(
            ExperimentScale::quick(3_000),
            &[0.002, 0.01, 0.05],
        )
    }

    #[test]
    fn lnc_ra_dominates_lru_everywhere() {
        let experiment = quick_experiment();
        for sweep in &experiment.sweeps {
            let lnc = sweep.policy_runs("LNC-RA").unwrap();
            let lru = sweep.policy_runs("LRU").unwrap();
            for (a, b) in lnc.iter().zip(lru) {
                assert!(
                    a.cost_savings_ratio >= b.cost_savings_ratio * 0.98,
                    "{} @ {:.3}: LNC-RA {} < LRU {}",
                    sweep.benchmark,
                    a.cache_fraction,
                    a.cost_savings_ratio,
                    b.cost_savings_ratio
                );
            }
            assert!(
                sweep.average_csr_factor("LNC-RA", "LRU") > 1.2,
                "{}: average improvement factor too small",
                sweep.benchmark
            );
        }
    }

    #[test]
    fn improvement_is_largest_at_the_smallest_cache() {
        let experiment = quick_experiment();
        for sweep in &experiment.sweeps {
            let lnc = sweep.policy_runs("LNC-RA").unwrap();
            let lru = sweep.policy_runs("LRU").unwrap();
            let first_factor = lnc[0].cost_savings_ratio / lru[0].cost_savings_ratio.max(1e-9);
            let last_factor = lnc.last().unwrap().cost_savings_ratio
                / lru.last().unwrap().cost_savings_ratio.max(1e-9);
            assert!(
                first_factor >= last_factor * 0.8,
                "{}: improvement should not grow with cache size (first {first_factor}, last {last_factor})",
                sweep.benchmark
            );
        }
    }

    #[test]
    fn admission_control_helps_on_average() {
        let experiment = quick_experiment();
        for sweep in &experiment.sweeps {
            assert!(
                sweep.average_csr_factor("LNC-RA", "LNC-R") > 0.97,
                "{}: admission control should not hurt on average",
                sweep.benchmark
            );
        }
        // On at least one benchmark the admission algorithm must yield a
        // clear improvement (the paper reports +32 % on TPC-D).
        let best = experiment
            .sweeps
            .iter()
            .map(|s| s.average_csr_factor("LNC-RA", "LNC-R"))
            .fold(0.0, f64::max);
        assert!(best > 1.02, "admission never helped (best factor {best})");
    }

    #[test]
    fn csr_converges_to_infinite_cache_faster_than_hit_ratio() {
        let experiment = quick_experiment();
        for sweep in &experiment.sweeps {
            let lnc = sweep.policy_runs("LNC-RA").unwrap().last().unwrap();
            let csr_gap = sweep.infinite.cost_savings_ratio - lnc.cost_savings_ratio;
            let hr_gap = sweep.infinite.hit_ratio - lnc.hit_ratio;
            assert!(
                csr_gap <= hr_gap + 0.05,
                "{}: CSR should converge at least as fast as HR (gaps {csr_gap} vs {hr_gap})",
                sweep.benchmark
            );
        }
    }

    #[test]
    fn render_produces_all_three_tables() {
        let experiment =
            CostSavingsExperiment::run_with_fractions(ExperimentScale::quick(500), &[0.01, 0.05]);
        assert!(experiment.render_cost_savings().contains("Figure 4"));
        assert!(experiment.render_hit_ratio().contains("Figure 5"));
        let summary = experiment.render_summary();
        assert!(summary.contains("LNC-RA/LRU"));
        assert!(summary.contains("TPC-D"));
    }
}
