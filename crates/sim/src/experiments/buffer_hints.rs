//! Figure 7: effect of WATCHMAN's hints on buffer-manager performance.
//!
//! Setup from §4.2: a 15 MB page buffer pool, a 15 MB WATCHMAN cache and a
//! 14-relation database of 100 MB total, driven by 17 000 queries producing
//! tens of millions of page references.  Every query that misses the WATCHMAN
//! cache is executed, reading its pages through the buffer pool; whenever
//! WATCHMAN admits a retrieved set it sends the buffer manager a hint listing
//! the pages of that query that are p₀-redundant, and the buffer manager
//! moves them to the end of its LRU chain.
//!
//! Sweeping p₀ from 100 % down to 0 % reproduces the paper's curve: moderate
//! thresholds improve the buffer hit ratio, while p₀ → 0 degenerates the
//! buffer's LRU into MRU and the hit ratio collapses.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use watchman_buffer::{BufferPool, RedundancyHintObserver};
use watchman_core::clock::Timestamp;
use watchman_core::engine::Watchman;
use watchman_core::key::QueryKey;
use watchman_core::sync::Mutex;
use watchman_core::value::{ExecutionCost, SizedPayload};

use crate::policy_kind::PolicyKind;
use crate::table::{percent, ratio, TextTable};
use crate::workload::{ExperimentScale, Workload};

/// Configuration of the buffer-interaction experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BufferHintConfig {
    /// Buffer pool size in bytes (paper: 15 MB).
    pub buffer_bytes: u64,
    /// WATCHMAN cache size in bytes (paper: 15 MB).
    pub cache_bytes: u64,
    /// The p₀ thresholds to sweep, as fractions in `[0, 1]`.
    pub thresholds: [f64; 6],
}

impl Default for BufferHintConfig {
    fn default() -> Self {
        BufferHintConfig {
            buffer_bytes: 15 * 1024 * 1024,
            cache_bytes: 15 * 1024 * 1024,
            thresholds: [1.0, 0.8, 0.6, 0.4, 0.2, 0.0],
        }
    }
}

/// One point of the Figure 7 curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferHintPoint {
    /// The p₀ threshold (1.0 = 100 %).
    pub threshold: f64,
    /// Buffer hit ratio at this threshold.
    pub buffer_hit_ratio: f64,
    /// Number of pages demoted by hints.
    pub demotions: u64,
    /// Total page references issued (queries that missed the WATCHMAN cache).
    pub page_references: u64,
}

/// The complete Figure 7 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferHintExperiment {
    /// Buffer hit ratio without any hints (the baseline the paper's curve
    /// starts from).
    pub no_hints_hit_ratio: f64,
    /// One point per swept threshold.
    pub points: Vec<BufferHintPoint>,
}

impl BufferHintExperiment {
    /// Runs the experiment with the paper's configuration.
    pub fn run(scale: ExperimentScale) -> Self {
        Self::run_with(scale, BufferHintConfig::default())
    }

    /// Runs the experiment with a custom configuration.
    pub fn run_with(scale: ExperimentScale, config: BufferHintConfig) -> Self {
        let workload = Workload::buffer_experiment(scale);
        let no_hints = Self::run_once(&workload, &config, None);
        let points = config
            .thresholds
            .iter()
            .map(|&threshold| Self::run_once(&workload, &config, Some(threshold)))
            .collect();
        BufferHintExperiment {
            no_hints_hit_ratio: no_hints.buffer_hit_ratio,
            points,
        }
    }

    /// Replays the workload once with the given p₀ threshold (`None` = hints
    /// disabled).
    ///
    /// The hint path is event-driven: a [`RedundancyHintObserver`] subscribed
    /// to the engine mirrors the cache's contents from admission/eviction
    /// events and demotes p₀-redundant pages whenever a set is admitted — the
    /// replay loop only executes queries and records page accesses.
    fn run_once(
        workload: &Workload,
        config: &BufferHintConfig,
        threshold: Option<f64>,
    ) -> BufferHintPoint {
        let pool = Arc::new(Mutex::new(BufferPool::with_capacity_bytes(
            config.buffer_bytes,
        )));
        // Hints disabled (`threshold == None`) means no observer at all: the
        // engine then emits no hints and the pool runs plain LRU.
        let observer = threshold.map(|p0| {
            let benchmark = workload.benchmark.clone();
            let instances: HashMap<QueryKey, _> = workload
                .trace
                .iter()
                .map(|record| {
                    (
                        QueryKey::from_raw_query(&record.query_text),
                        record.instance,
                    )
                })
                .collect();
            Arc::new(RedundancyHintObserver::new(
                Arc::clone(&pool),
                p0,
                move |key: &QueryKey| {
                    instances
                        .get(key)
                        .map(|&instance| benchmark.page_accesses(instance))
                        .unwrap_or_default()
                },
            ))
        });
        let mut builder = Watchman::builder()
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(config.cache_bytes);
        if let Some(observer) = &observer {
            builder = builder.observer(observer.clone());
        }
        let cache: Watchman<SizedPayload> = builder.build();

        for record in workload.trace.iter() {
            let now = Timestamp::from_micros(record.timestamp_us);
            let key = QueryKey::from_raw_query(&record.query_text);
            if cache.get(&key, now).is_some() {
                // Retrieved set served from the WATCHMAN cache: the query is
                // not executed and reads no pages.
                continue;
            }
            // Execute the query: read its pages through the buffer pool and
            // remember which query touched which page.
            let pages = workload.benchmark.page_accesses(record.instance);
            {
                let mut pool = pool.lock();
                for &page in &pages {
                    pool.access(page);
                }
            }
            if let Some(observer) = &observer {
                observer.record_access(&pages, key.signature());
            }

            // Offering the set triggers the observer's hint on admission.
            cache.insert(
                key,
                SizedPayload::new(record.result_bytes),
                ExecutionCost::from_blocks(record.cost_blocks),
                now,
            );
        }

        let pool = pool.lock();
        BufferHintPoint {
            threshold: threshold.unwrap_or(f64::NAN),
            buffer_hit_ratio: pool.stats().hit_ratio(),
            demotions: pool.stats().demotions,
            page_references: pool.stats().references,
        }
    }

    /// The best hit ratio achieved over the sweep and its threshold.
    pub fn best_point(&self) -> Option<&BufferHintPoint> {
        self.points
            .iter()
            .max_by(|a, b| a.buffer_hit_ratio.total_cmp(&b.buffer_hit_ratio))
    }

    /// Renders the Figure 7 table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(
            "Figure 7: buffer hit ratio vs p0 threshold (15 MB pool, 15 MB cache)",
            &["p0", "buffer hit ratio", "demotions", "page refs"],
        );
        table.push_row(vec![
            "no hints".to_owned(),
            ratio(self.no_hints_hit_ratio),
            "0".to_owned(),
            "-".to_owned(),
        ]);
        for point in &self.points {
            table.push_row(vec![
                percent(point.threshold),
                ratio(point.buffer_hit_ratio),
                point.demotions.to_string(),
                point.page_references.to_string(),
            ]);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hints_at_moderate_thresholds_do_not_hurt_and_zero_threshold_collapses() {
        // The paper-scale buffer/cache sizes with a shortened trace: the pool
        // must be large enough relative to the per-query page footprint for
        // the hit ratio to be meaningful.
        let experiment = BufferHintExperiment::run_with(
            ExperimentScale::quick(500),
            BufferHintConfig::default(),
        );
        assert_eq!(experiment.points.len(), 6);
        let baseline = experiment.no_hints_hit_ratio;
        assert!(
            baseline > 0.05,
            "baseline buffer hit ratio {baseline} is meaningless"
        );
        // Moderate thresholds (p0 >= 0.6) must be at least roughly as good as
        // no hints at all.
        for point in experiment.points.iter().filter(|p| p.threshold >= 0.6) {
            assert!(
                point.buffer_hit_ratio > baseline - 0.05,
                "p0={} hit ratio {} collapsed below baseline {}",
                point.threshold,
                point.buffer_hit_ratio,
                baseline
            );
        }
        // p0 = 0 demotes every tracked page on every hint and must not be the
        // best configuration, nor meaningfully beat the no-hint baseline.
        let zero = experiment.points.last().unwrap();
        let best = experiment.best_point().unwrap();
        assert!(zero.buffer_hit_ratio <= best.buffer_hit_ratio + 1e-9);
        assert!(
            zero.buffer_hit_ratio < baseline + 0.02,
            "p0=0 ({}) should not meaningfully beat the no-hint baseline ({})",
            zero.buffer_hit_ratio,
            baseline
        );
        // Hints must actually fire.
        assert!(experiment.points.iter().any(|p| p.demotions > 0));
    }

    #[test]
    fn page_reference_counts_are_substantial() {
        let experiment = BufferHintExperiment::run_with(
            ExperimentScale::quick(150),
            BufferHintConfig::default(),
        );
        for point in &experiment.points {
            assert!(point.page_references > 10_000);
        }
    }

    #[test]
    fn render_lists_every_threshold() {
        let experiment = BufferHintExperiment::run_with(
            ExperimentScale::quick(100),
            BufferHintConfig::default(),
        );
        let rendered = experiment.render();
        assert!(rendered.contains("Figure 7"));
        assert!(rendered.contains("no hints"));
        assert!(rendered.contains("100.0%"));
        assert!(rendered.contains("0.0%"));
    }
}
