//! Extension sweep: static vs profit-aware rebalanced shard capacity.
//!
//! The concurrent engine hash-partitions the keyspace across N shards and by
//! default splits the cache capacity statically `total/N`.  On a skewed
//! keyspace that starves hot shards.  This experiment quantifies both the
//! metric cost of static partitioning and the repair delivered by the
//! engine's profit-aware rebalancer ([`RebalanceConfig`]): a skewed trace is
//! replayed at shards ∈ {1, 2, 4, 8, 16} × a set of cache fractions, once
//! with the static split and once with rebalancing enabled, and the CSRs are
//! reported side by side (a Figure-style table the paper never had,
//! answering its §3 multiuser-deployment question).
//!
//! The sweep runs as a **matrix** over benchmarks and policies
//! ([`ShardRebalanceExperiment::run_matrix`]):
//!
//! * skewed TPC-D × LNC-RA — the paper's deployed policy, whose §2.4
//!   retained reference information gives the rebalancer its exact
//!   gain/loss signal;
//! * skewed Set Query × LNC-RA — the same question on the second benchmark;
//! * skewed TPC-D × GreedyDual-Size — a policy that retains no reference
//!   information, so the rebalancer falls back to its **pressure-only**
//!   signal (rejections + evictions).  Pressure prices neither side of a
//!   move, so this row is the honest lower bound of the mechanism.
//!
//! Replays are deterministic: the engine never rebalances on the request
//! path, and the replay driver schedules passes every
//! [`REBALANCE_EVERY_RECORDS`](crate::runner::REBALANCE_EVERY_RECORDS)
//! records instead of configuring the wall-clock background task.

use serde::{Deserialize, Serialize};
use watchman_core::engine::RebalanceConfig;

use crate::policy_kind::PolicyKind;
use crate::runner::{run_policy_sharded_with, RunResult};
use crate::table::{percent, ratio, TextTable};
use crate::workload::{ExperimentScale, Workload};

/// The shard counts swept.
pub const SHARD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// The cache fractions swept on the TPC-D trace.
pub const CACHE_FRACTIONS: [f64; 2] = [0.005, 0.01];

/// The cache fractions swept on the Set Query trace.  Its database is ~3×
/// the TPC-D one and its hot report working set is proportionally smaller,
/// so shard starvation only bites at tighter fractions.
pub const SET_QUERY_FRACTIONS: [f64; 2] = [0.001, 0.002];

/// One (shards, cache fraction) cell of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSweepCell {
    /// Number of shards.
    pub shards: usize,
    /// Cache capacity as a fraction of the database size.
    pub cache_fraction: f64,
    /// The run with the static `total/N` capacity split.
    pub static_split: RunResult,
    /// The run with profit-aware rebalancing enabled.
    pub rebalanced: RunResult,
}

impl ShardSweepCell {
    /// CSR gained (or lost) by rebalancing over the static split.
    pub fn csr_delta(&self) -> f64 {
        self.rebalanced.cost_savings_ratio - self.static_split.cost_savings_ratio
    }
}

/// The complete static-vs-rebalanced shard sweep for one (benchmark, policy)
/// pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardRebalanceExperiment {
    /// Benchmark label.
    pub benchmark: String,
    /// Display label of the policy every shard runs.
    pub policy: String,
    /// The cells, in (fraction-major, shards-minor) order.
    pub cells: Vec<ShardSweepCell>,
}

impl ShardRebalanceExperiment {
    /// The rebalance configuration the sweep uses: `manual()` scheduling
    /// (the replay driver runs a pass every 128 records — wall-clock
    /// background passes would make the replay nondeterministic), floor at
    /// 50% of the fair share, 5% of one fair share per step — steps small
    /// enough that each move stays within the marginal gain-vs-loss argument
    /// that justifies it.
    pub fn rebalance_config() -> RebalanceConfig {
        RebalanceConfig::new()
            .manual()
            .with_min_shard_fraction(0.5)
            .with_step_fraction(0.05)
    }

    /// Runs the sweep on the skewed TPC-D workload with LNC-RA (the paper's
    /// deployed policy) at the default shard counts and fractions.
    pub fn run(scale: ExperimentScale) -> Self {
        Self::run_with(scale, &SHARD_COUNTS, &CACHE_FRACTIONS)
    }

    /// Runs the skewed-TPC-D / LNC-RA sweep with custom shard counts and
    /// fractions.
    pub fn run_with(scale: ExperimentScale, shard_counts: &[usize], fractions: &[f64]) -> Self {
        Self::run_on(
            &Workload::tpcd_skewed(scale),
            "TPC-D (skewed)",
            PolicyKind::LNC_RA,
            shard_counts,
            fractions,
        )
    }

    /// Runs the full benchmark × policy matrix at the default shard counts,
    /// each benchmark at its own fractions (see the module docs for why each
    /// row is there).
    pub fn run_matrix(scale: ExperimentScale) -> Vec<Self> {
        let tpcd = Workload::tpcd_skewed(scale);
        let set_query = Workload::set_query_skewed(scale);
        vec![
            Self::run_on(
                &tpcd,
                "TPC-D (skewed)",
                PolicyKind::LNC_RA,
                &SHARD_COUNTS,
                &CACHE_FRACTIONS,
            ),
            Self::run_on(
                &set_query,
                "Set Query (skewed)",
                PolicyKind::LNC_RA,
                &SHARD_COUNTS,
                &SET_QUERY_FRACTIONS,
            ),
            // GreedyDual-Size retains no reference information: the
            // rebalancer falls back to the pressure-only signal.
            Self::run_on(
                &tpcd,
                "TPC-D (skewed)",
                PolicyKind::GreedyDualSize,
                &SHARD_COUNTS,
                &CACHE_FRACTIONS,
            ),
        ]
    }

    /// Runs the sweep for one workload and policy.
    pub fn run_on(
        workload: &Workload,
        benchmark_label: &str,
        kind: PolicyKind,
        shard_counts: &[usize],
        fractions: &[f64],
    ) -> Self {
        let mut cells = Vec::with_capacity(shard_counts.len() * fractions.len());
        for &fraction in fractions {
            for &shards in shard_counts {
                let static_split =
                    run_policy_sharded_with(&workload.trace, kind, fraction, shards, None);
                let rebalanced = run_policy_sharded_with(
                    &workload.trace,
                    kind,
                    fraction,
                    shards,
                    Some(Self::rebalance_config()),
                );
                cells.push(ShardSweepCell {
                    shards,
                    cache_fraction: fraction,
                    static_split,
                    rebalanced,
                });
            }
        }
        ShardRebalanceExperiment {
            benchmark: benchmark_label.to_owned(),
            policy: kind.label(),
            cells,
        }
    }

    /// The cell for a (shards, fraction) pair, if it was swept.
    pub fn cell(&self, shards: usize, fraction: f64) -> Option<&ShardSweepCell> {
        self.cells
            .iter()
            .find(|c| c.shards == shards && (c.cache_fraction - fraction).abs() < 1e-12)
    }

    /// Renders the sweep as one Figure-style table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(
            format!(
                "Shard sweep: CSR static total/N vs profit-rebalanced ({}, {})",
                self.benchmark, self.policy
            ),
            &[
                "cache",
                "shards",
                "CSR static",
                "CSR rebalanced",
                "delta",
                "HR static",
                "HR rebalanced",
                "rebalances",
            ],
        );
        for cell in &self.cells {
            table.push_row(vec![
                percent(cell.cache_fraction),
                cell.shards.to_string(),
                ratio(cell.static_split.cost_savings_ratio),
                ratio(cell.rebalanced.cost_savings_ratio),
                format!("{:+.3}", cell.csr_delta()),
                ratio(cell.static_split.hit_ratio),
                ratio(cell.rebalanced.hit_ratio),
                cell.rebalanced.rebalances.to_string(),
            ]);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebalancing_meets_or_beats_the_static_split_on_a_skewed_workload() {
        let experiment =
            ShardRebalanceExperiment::run_with(ExperimentScale::quick(4_000), &[4, 8], &[0.005]);
        for cell in &experiment.cells {
            assert!(
                cell.rebalanced.cost_savings_ratio >= cell.static_split.cost_savings_ratio - 1e-9,
                "{} shards: rebalanced CSR {} fell below static CSR {}",
                cell.shards,
                cell.rebalanced.cost_savings_ratio,
                cell.static_split.cost_savings_ratio
            );
            assert!(
                cell.rebalanced.rebalances > 0,
                "{} shards: the rebalancer never moved capacity",
                cell.shards
            );
        }
        // At 8 shards the static split visibly starves hot shards; the
        // rebalancer must claw a real improvement back.
        let eight = experiment.cell(8, 0.005).unwrap();
        assert!(
            eight.csr_delta() > 0.0,
            "8 shards: rebalancing should strictly improve CSR (delta {})",
            eight.csr_delta()
        );
    }

    #[test]
    fn set_query_sweep_also_benefits_from_rebalancing() {
        let experiment = ShardRebalanceExperiment::run_on(
            &Workload::set_query_skewed(ExperimentScale::quick(4_000)),
            "Set Query (skewed)",
            PolicyKind::LNC_RA,
            &[8],
            &[0.001],
        );
        let cell = &experiment.cells[0];
        assert!(
            cell.rebalanced.rebalances > 0,
            "the rebalancer never moved capacity on Set Query"
        );
        assert!(
            cell.csr_delta() > 0.0,
            "Set Query at a starved fraction: rebalancing should improve CSR \
             (static {}, rebalanced {})",
            cell.static_split.cost_savings_ratio,
            cell.rebalanced.cost_savings_ratio
        );
    }

    #[test]
    fn pressure_only_policy_never_collapses_under_rebalancing() {
        // GreedyDual-Size retains no reference information: the rebalancer
        // falls back to pure rejection/eviction pressure.  That signal
        // prices neither side of a move, so we assert safety (no meaningful
        // CSR regression), not improvement.
        let experiment = ShardRebalanceExperiment::run_on(
            &Workload::tpcd_skewed(ExperimentScale::quick(3_000)),
            "TPC-D (skewed)",
            PolicyKind::GreedyDualSize,
            &[8],
            &[0.005],
        );
        let cell = &experiment.cells[0];
        assert!(
            cell.rebalanced.cost_savings_ratio >= cell.static_split.cost_savings_ratio - 0.02,
            "pressure-only rebalancing regressed CSR from {} to {}",
            cell.static_split.cost_savings_ratio,
            cell.rebalanced.cost_savings_ratio
        );
    }

    #[test]
    fn single_shard_rebalancing_is_a_no_op() {
        let experiment =
            ShardRebalanceExperiment::run_with(ExperimentScale::quick(1_000), &[1], &[0.01]);
        let cell = &experiment.cells[0];
        assert_eq!(cell.rebalanced.rebalances, 0);
        assert!(
            (cell.csr_delta()).abs() < 1e-12,
            "one shard has nothing to move"
        );
    }

    #[test]
    fn render_contains_every_cell() {
        let experiment =
            ShardRebalanceExperiment::run_with(ExperimentScale::quick(500), &[1, 2], &[0.01]);
        let rendered = experiment.render();
        assert!(rendered.contains("CSR rebalanced"));
        assert!(rendered.contains("LNC-RA"));
        assert_eq!(rendered.lines().count(), 3 + experiment.cells.len());
    }
}
