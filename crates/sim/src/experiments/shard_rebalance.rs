//! Extension sweep: static vs profit-aware rebalanced shard capacity.
//!
//! The concurrent engine hash-partitions the keyspace across N shards and by
//! default splits the cache capacity statically `total/N`.  On a skewed
//! keyspace that starves hot shards.  This experiment quantifies both the
//! metric cost of static partitioning and the repair delivered by the
//! engine's profit-aware rebalancer ([`RebalanceConfig`]): a skewed TPC-D
//! trace is replayed at shards ∈ {1, 2, 4, 8, 16} × a set of cache
//! fractions, once with the static split and once with rebalancing enabled,
//! and the CSRs are reported side by side (a Figure-style table the paper
//! never had, answering its §3 multiuser-deployment question).

use serde::{Deserialize, Serialize};
use watchman_core::engine::RebalanceConfig;

use crate::policy_kind::PolicyKind;
use crate::runner::{run_policy_sharded_with, RunResult};
use crate::table::{percent, ratio, TextTable};
use crate::workload::{ExperimentScale, Workload};

/// The shard counts swept.
pub const SHARD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// The cache fractions swept.
pub const CACHE_FRACTIONS: [f64; 2] = [0.005, 0.01];

/// One (shards, cache fraction) cell of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSweepCell {
    /// Number of shards.
    pub shards: usize,
    /// Cache capacity as a fraction of the database size.
    pub cache_fraction: f64,
    /// The run with the static `total/N` capacity split.
    pub static_split: RunResult,
    /// The run with profit-aware rebalancing enabled.
    pub rebalanced: RunResult,
}

impl ShardSweepCell {
    /// CSR gained (or lost) by rebalancing over the static split.
    pub fn csr_delta(&self) -> f64 {
        self.rebalanced.cost_savings_ratio - self.static_split.cost_savings_ratio
    }
}

/// The complete static-vs-rebalanced shard sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardRebalanceExperiment {
    /// Benchmark label.
    pub benchmark: String,
    /// The cells, in (fraction-major, shards-minor) order.
    pub cells: Vec<ShardSweepCell>,
}

impl ShardRebalanceExperiment {
    /// The rebalance configuration the sweep uses: a pass every 128
    /// operations (responsive enough for a 17 000-query trace), floor at 50%
    /// of the fair share, 5% of one fair share per step — steps small enough
    /// that each move stays within the marginal gain-vs-loss argument that
    /// justifies it.
    pub fn rebalance_config() -> RebalanceConfig {
        RebalanceConfig::new()
            .with_interval(128)
            .with_min_shard_fraction(0.5)
            .with_step_fraction(0.05)
    }

    /// Runs the sweep on the skewed TPC-D workload with LNC-RA (the paper's
    /// deployed policy) at the default shard counts and fractions.
    pub fn run(scale: ExperimentScale) -> Self {
        Self::run_with(scale, &SHARD_COUNTS, &CACHE_FRACTIONS)
    }

    /// Runs the sweep with custom shard counts and fractions.
    pub fn run_with(scale: ExperimentScale, shard_counts: &[usize], fractions: &[f64]) -> Self {
        let workload = Workload::tpcd_skewed(scale);
        let kind = PolicyKind::LNC_RA;
        let mut cells = Vec::with_capacity(shard_counts.len() * fractions.len());
        for &fraction in fractions {
            for &shards in shard_counts {
                let static_split =
                    run_policy_sharded_with(&workload.trace, kind, fraction, shards, None);
                let rebalanced = run_policy_sharded_with(
                    &workload.trace,
                    kind,
                    fraction,
                    shards,
                    Some(Self::rebalance_config()),
                );
                cells.push(ShardSweepCell {
                    shards,
                    cache_fraction: fraction,
                    static_split,
                    rebalanced,
                });
            }
        }
        ShardRebalanceExperiment {
            benchmark: "TPC-D (skewed)".to_owned(),
            cells,
        }
    }

    /// The cell for a (shards, fraction) pair, if it was swept.
    pub fn cell(&self, shards: usize, fraction: f64) -> Option<&ShardSweepCell> {
        self.cells
            .iter()
            .find(|c| c.shards == shards && (c.cache_fraction - fraction).abs() < 1e-12)
    }

    /// Renders the sweep as one Figure-style table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(
            format!(
                "Shard sweep: CSR static total/N vs profit-rebalanced ({})",
                self.benchmark
            ),
            &[
                "cache",
                "shards",
                "CSR static",
                "CSR rebalanced",
                "delta",
                "HR static",
                "HR rebalanced",
                "rebalances",
            ],
        );
        for cell in &self.cells {
            table.push_row(vec![
                percent(cell.cache_fraction),
                cell.shards.to_string(),
                ratio(cell.static_split.cost_savings_ratio),
                ratio(cell.rebalanced.cost_savings_ratio),
                format!("{:+.3}", cell.csr_delta()),
                ratio(cell.static_split.hit_ratio),
                ratio(cell.rebalanced.hit_ratio),
                cell.rebalanced.rebalances.to_string(),
            ]);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebalancing_meets_or_beats_the_static_split_on_a_skewed_workload() {
        let experiment =
            ShardRebalanceExperiment::run_with(ExperimentScale::quick(4_000), &[4, 8], &[0.005]);
        for cell in &experiment.cells {
            assert!(
                cell.rebalanced.cost_savings_ratio >= cell.static_split.cost_savings_ratio - 1e-9,
                "{} shards: rebalanced CSR {} fell below static CSR {}",
                cell.shards,
                cell.rebalanced.cost_savings_ratio,
                cell.static_split.cost_savings_ratio
            );
            assert!(
                cell.rebalanced.rebalances > 0,
                "{} shards: the rebalancer never moved capacity",
                cell.shards
            );
        }
        // At 8 shards the static split visibly starves hot shards; the
        // rebalancer must claw a real improvement back.
        let eight = experiment.cell(8, 0.005).unwrap();
        assert!(
            eight.csr_delta() > 0.0,
            "8 shards: rebalancing should strictly improve CSR (delta {})",
            eight.csr_delta()
        );
    }

    #[test]
    fn single_shard_rebalancing_is_a_no_op() {
        let experiment =
            ShardRebalanceExperiment::run_with(ExperimentScale::quick(1_000), &[1], &[0.01]);
        let cell = &experiment.cells[0];
        assert_eq!(cell.rebalanced.rebalances, 0);
        assert!(
            (cell.csr_delta()).abs() < 1e-12,
            "one shard has nothing to move"
        );
    }

    #[test]
    fn render_contains_every_cell() {
        let experiment =
            ShardRebalanceExperiment::run_with(ExperimentScale::quick(500), &[1, 2], &[0.01]);
        let rendered = experiment.render();
        assert!(rendered.contains("CSR rebalanced"));
        assert_eq!(rendered.lines().count(), 3 + experiment.cells.len());
    }
}
