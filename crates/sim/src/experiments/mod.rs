//! Reproductions of the paper's evaluation (Figures 2–7) plus extension
//! ablations.
//!
//! | Module | Paper artefact |
//! |--------|----------------|
//! | [`infinite_cache`] | Figure 2 — infinite-cache CSR/HR and working-set size |
//! | [`impact_of_k`] | Figure 3 — impact of the reference window `K` |
//! | [`cost_savings`] | Figure 4 (CSR vs cache size), Figure 5 (HR vs cache size), §4.2 improvement summary |
//! | [`fragmentation`] | Figure 6 — external cache fragmentation |
//! | [`buffer_hints`] | Figure 7 — buffer-manager hit ratio vs p₀ |
//! | [`policy_zoo`] | Extension — LNC-RA vs LRU-K / LFU / LCS / GreedyDual-Size |
//! | [`optimality`] | Extension — on-line LNC-RA vs the static LNC\* oracle of §2.3 |
//! | [`shard_rebalance`] | Extension — shards × cache-fraction sweep, static vs profit-rebalanced capacity |
//!
//! Each experiment type has a `run(scale)` constructor and a `render()`
//! method that prints the same rows/series the corresponding paper figure
//! reports.

pub mod buffer_hints;
pub mod cost_savings;
pub mod fragmentation;
pub mod impact_of_k;
pub mod infinite_cache;
pub mod optimality;
pub mod policy_zoo;
pub mod shard_rebalance;

pub use buffer_hints::BufferHintExperiment;
pub use cost_savings::CostSavingsExperiment;
pub use fragmentation::FragmentationExperiment;
pub use impact_of_k::ImpactOfKExperiment;
pub use infinite_cache::InfiniteCacheExperiment;
pub use optimality::OptimalityExperiment;
pub use policy_zoo::PolicyZooExperiment;
pub use shard_rebalance::ShardRebalanceExperiment;
