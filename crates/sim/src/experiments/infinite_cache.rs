//! Figure 2: performance with an infinite cache.
//!
//! The paper first replays both traces against an unlimited cache to
//! establish the reference-locality ceiling: the maximal cost savings ratio,
//! the maximal hit ratio, and the cache size an unbounded cache grows to
//! (compared with the database size).

use serde::{Deserialize, Serialize};

use crate::runner::run_infinite;
use crate::table::{bytes, ratio, TextTable};
use crate::workload::{ExperimentScale, Workload};

/// One row of the Figure 2 table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfiniteCacheRow {
    /// Benchmark label ("TPC-D" / "Set Query").
    pub benchmark: String,
    /// Cost savings ratio with an infinite cache.
    pub cost_savings_ratio: f64,
    /// Hit ratio with an infinite cache.
    pub hit_ratio: f64,
    /// Bytes the unbounded cache grew to (the trace working set).
    pub cache_bytes: u64,
    /// Database size in bytes.
    pub database_bytes: u64,
}

/// The complete Figure 2 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfiniteCacheExperiment {
    /// One row per benchmark.
    pub rows: Vec<InfiniteCacheRow>,
}

impl InfiniteCacheExperiment {
    /// Runs the experiment at the given scale.
    pub fn run(scale: ExperimentScale) -> Self {
        let rows = Workload::both(scale)
            .into_iter()
            .map(|workload| {
                let result = run_infinite(&workload.trace);
                let stats = watchman_trace::TraceStats::of(&workload.trace);
                InfiniteCacheRow {
                    benchmark: workload.kind().label().to_owned(),
                    cost_savings_ratio: result.cost_savings_ratio,
                    hit_ratio: result.hit_ratio,
                    cache_bytes: stats.working_set_bytes,
                    database_bytes: workload.database_bytes(),
                }
            })
            .collect();
        InfiniteCacheExperiment { rows }
    }

    /// Renders the Figure 2 table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(
            "Figure 2: performance with infinite cache",
            &["benchmark", "CSR", "HR", "cache size", "db size"],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.benchmark.clone(),
                ratio(row.cost_savings_ratio),
                ratio(row.hit_ratio),
                bytes(row.cache_bytes),
                bytes(row.database_bytes),
            ]);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_benchmarks_show_high_locality() {
        // The drill-down distribution only becomes visible once every
        // template has accumulated a few hundred references, so this test
        // uses a longer trace than most.
        let experiment = InfiniteCacheExperiment::run(ExperimentScale::quick(8_000));
        assert_eq!(experiment.rows.len(), 2);
        for row in &experiment.rows {
            assert!(
                row.cost_savings_ratio > 0.45,
                "{}: CSR {} too low for a drill-down workload",
                row.benchmark,
                row.cost_savings_ratio
            );
            assert!(
                row.hit_ratio > 0.32,
                "{}: HR {} too low for a drill-down workload",
                row.benchmark,
                row.hit_ratio
            );
            assert!(row.cache_bytes < row.database_bytes);
        }
    }

    #[test]
    fn set_query_has_higher_csr_but_lower_hit_ratio_than_tpcd() {
        // The paper's Figure 2 finding: the Set Query trace yields a smaller
        // hit ratio than TPC-D but a higher cost savings ratio relative to
        // it, because its query-cost distribution is more skewed.
        let experiment = InfiniteCacheExperiment::run(ExperimentScale::quick(8_000));
        let tpcd = &experiment.rows[0];
        let sq = &experiment.rows[1];
        assert!(
            sq.hit_ratio < tpcd.hit_ratio,
            "Set Query HR ({}) should be below TPC-D HR ({})",
            sq.hit_ratio,
            tpcd.hit_ratio
        );
        assert!(
            sq.cost_savings_ratio - sq.hit_ratio > tpcd.cost_savings_ratio - tpcd.hit_ratio,
            "Set Query must show a larger CSR-HR gap (cost skew) than TPC-D: SQ ({}, {}), TPC-D ({}, {})",
            sq.cost_savings_ratio,
            sq.hit_ratio,
            tpcd.cost_savings_ratio,
            tpcd.hit_ratio
        );
    }

    #[test]
    fn render_contains_every_benchmark() {
        let experiment = InfiniteCacheExperiment::run(ExperimentScale::quick(500));
        let rendered = experiment.render();
        assert!(rendered.contains("TPC-D"));
        assert!(rendered.contains("Set Query"));
        assert!(rendered.contains("Figure 2"));
    }
}
