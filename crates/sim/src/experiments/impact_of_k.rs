//! Figure 3: impact of the reference window `K`.
//!
//! With the cache fixed at 1 % of the database size, the paper varies the
//! number of retained reference times `K` and compares LNC-RA with LRU-K.
//! The finding: LRU-K improves substantially with larger `K`, while LNC-RA —
//! which already uses cost and size information — improves only mildly.

use serde::{Deserialize, Serialize};

use crate::policy_kind::PolicyKind;
use crate::runner::run_policy;
use crate::table::{ratio, TextTable};
use crate::workload::{ExperimentScale, Workload};

/// The cache size used throughout Figure 3: 1 % of the database.
pub const CACHE_FRACTION: f64 = 0.01;

/// CSR of one policy for each value of `K`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KSeries {
    /// Policy family label ("LNC-RA" or "LRU-K").
    pub policy: String,
    /// `(K, cost savings ratio)` pairs in ascending `K` order.
    pub points: Vec<(usize, f64)>,
}

impl KSeries {
    /// Relative CSR improvement from the smallest to the largest `K`.
    pub fn improvement(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some((_, first)), Some((_, last))) if *first > 0.0 => (last - first) / first,
            _ => 0.0,
        }
    }
}

/// The Figure 3 result for one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImpactOfKResult {
    /// Benchmark label.
    pub benchmark: String,
    /// One series per policy family.
    pub series: Vec<KSeries>,
}

/// The complete Figure 3 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImpactOfKExperiment {
    /// One result per benchmark.
    pub results: Vec<ImpactOfKResult>,
    /// The values of `K` swept.
    pub ks: Vec<usize>,
}

impl ImpactOfKExperiment {
    /// Runs the experiment at the given scale, sweeping `K ∈ {1, 2, 3, 4}`.
    pub fn run(scale: ExperimentScale) -> Self {
        Self::run_with_ks(scale, &[1, 2, 3, 4])
    }

    /// Runs the experiment for a custom set of `K` values.
    pub fn run_with_ks(scale: ExperimentScale, ks: &[usize]) -> Self {
        let results = Workload::both(scale)
            .into_iter()
            .map(|workload| {
                let lnc_points = ks
                    .iter()
                    .map(|&k| {
                        let r =
                            run_policy(&workload.trace, PolicyKind::LncRa { k }, CACHE_FRACTION);
                        (k, r.cost_savings_ratio)
                    })
                    .collect();
                let lruk_points = ks
                    .iter()
                    .map(|&k| {
                        let r = run_policy(&workload.trace, PolicyKind::LruK { k }, CACHE_FRACTION);
                        (k, r.cost_savings_ratio)
                    })
                    .collect();
                ImpactOfKResult {
                    benchmark: workload.kind().label().to_owned(),
                    series: vec![
                        KSeries {
                            policy: "LNC-RA".to_owned(),
                            points: lnc_points,
                        },
                        KSeries {
                            policy: "LRU-K".to_owned(),
                            points: lruk_points,
                        },
                    ],
                }
            })
            .collect();
        ImpactOfKExperiment {
            results,
            ks: ks.to_vec(),
        }
    }

    /// Renders one table per benchmark.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for result in &self.results {
            let mut headers: Vec<String> = vec!["policy".to_owned()];
            headers.extend(self.ks.iter().map(|k| format!("K={k}")));
            let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut table = TextTable::new(
                format!(
                    "Figure 3: impact of K on CSR ({}, cache = 1% of database)",
                    result.benchmark
                ),
                &header_refs,
            );
            for series in &result.series {
                let mut row = vec![series.policy.clone()];
                row.extend(series.points.iter().map(|(_, csr)| ratio(*csr)));
                table.push_row(row);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lruk_gains_from_k_and_lnc_ra_stays_on_top() {
        // Paper Figure 3: LRU-K improves strongly with larger K (48 % on
        // TPC-D, 29 % on Set Query), while LNC-RA — which already uses cost
        // and size information — is far less sensitive to K and dominates
        // LRU-K at every K.  (On our synthetic traces LNC-RA's CSR moves
        // mildly with K, sometimes downward; see EXPERIMENTS.md for the
        // discussion of that deviation.)
        let experiment = ImpactOfKExperiment::run_with_ks(ExperimentScale::quick(6_000), &[1, 4]);
        for result in &experiment.results {
            let lnc = &result.series[0];
            let lruk = &result.series[1];
            // LRU-K must benefit substantially from more reference history.
            assert!(
                lruk.improvement() > 0.10,
                "{}: LRU-K should gain clearly from K=1 to K=4 ({:?})",
                result.benchmark,
                lruk.points
            );
            // LNC-RA must not collapse: its worst K stays within a moderate
            // band of its best K.
            let best = lnc.points.iter().map(|p| p.1).fold(0.0, f64::max);
            let worst = lnc.points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
            assert!(
                worst > 0.55 * best,
                "{}: LNC-RA varies too wildly with K ({:?})",
                result.benchmark,
                lnc.points
            );
            // LNC-RA with any K must beat LRU-K at the same K (it uses more
            // information).
            for (lnc_point, lruk_point) in lnc.points.iter().zip(&lruk.points) {
                assert!(
                    lnc_point.1 >= lruk_point.1,
                    "{}: LNC-RA (K={}) = {} should not be below LRU-K = {}",
                    result.benchmark,
                    lnc_point.0,
                    lnc_point.1,
                    lruk_point.1
                );
            }
        }
    }

    #[test]
    fn render_mentions_both_policies_and_all_ks() {
        let experiment = ImpactOfKExperiment::run_with_ks(ExperimentScale::quick(600), &[1, 2]);
        let rendered = experiment.render();
        assert!(rendered.contains("LNC-RA"));
        assert!(rendered.contains("LRU-K"));
        assert!(rendered.contains("K=1"));
        assert!(rendered.contains("K=2"));
    }
}
