//! Workload construction shared by all experiments.
//!
//! Each experiment needs one or both of the paper's benchmark traces.  To
//! keep experiments fast during development and exhaustive when reproducing
//! the paper, every experiment takes an [`ExperimentScale`]: the paper scale
//! replays the full 17 000-query traces, the quick scale a few thousand
//! queries (enough for every qualitative trend to be visible).

use serde::{Deserialize, Serialize};
use watchman_trace::{Trace, TraceConfig, TraceGenerator};
use watchman_warehouse::{setquery, synthetic, tpcd, Benchmark, BenchmarkKind};

/// How large an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Number of queries per trace.
    pub query_count: usize,
    /// Workload seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// The paper's scale: 17 000 queries per trace.
    pub fn paper() -> Self {
        ExperimentScale {
            query_count: TraceConfig::PAPER_QUERY_COUNT,
            seed: 1996,
        }
    }

    /// A reduced scale for unit tests and micro-benchmarks.
    pub fn quick(query_count: usize) -> Self {
        ExperimentScale {
            query_count,
            seed: 1996,
        }
    }

    /// Returns the scale with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn trace_config(&self) -> TraceConfig {
        TraceConfig {
            query_count: self.query_count,
            seed: self.seed,
            mean_interarrival_us: 1_000_000,
            template_weights: None,
        }
    }
}

/// A benchmark together with a trace generated against it.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The benchmark (catalog + templates + models).
    pub benchmark: Benchmark,
    /// The generated trace.
    pub trace: Trace,
}

impl Workload {
    /// Builds the TPC-D workload at the given scale.
    pub fn tpcd(scale: ExperimentScale) -> Workload {
        let benchmark = tpcd::benchmark();
        let trace = TraceGenerator::new(&benchmark, scale.trace_config()).generate();
        Workload { benchmark, trace }
    }

    /// Builds the Set Query workload at the given scale.
    pub fn set_query(scale: ExperimentScale) -> Workload {
        let benchmark = setquery::benchmark();
        let trace = TraceGenerator::new(&benchmark, scale.trace_config()).generate();
        Workload { benchmark, trace }
    }

    /// Builds a *skewed* TPC-D workload instead of the paper's uniform
    /// template selection: a few dozen hot drill-down summaries dominate the
    /// references, against a stream of one-off detail queries.
    ///
    /// Most references go to Q10 (24 distinct instances, a few KB each) and
    /// Q1 (61 tiny instances); the bulk of the remainder goes to the
    /// never-repeating low-summarization templates Q13/Q16.  With so few
    /// distinct hot keys, the engine's signature hashing lands *unequal
    /// slices of the hot working set* on different shards — exactly the
    /// keyspace skew that starves a static `total/N` capacity split and that
    /// profit-aware rebalancing is designed to repair.  (A smooth popularity
    /// skew over thousands of keys would not do this: hashing would average
    /// it out across shards.)
    pub fn tpcd_skewed(scale: ExperimentScale) -> Workload {
        let benchmark = tpcd::benchmark();
        let mut weights = vec![0.5; benchmark.template_count()];
        weights[9] = 40.0; // Q10: 24 hot instances, ~3 KB results
        weights[0] = 10.0; // Q1: 61 hot instances, tiny results
        weights[12] = 30.0; // Q13: one-off detail queries (churn)
        weights[15] = 10.0; // Q16: one-off detail queries (churn)
        let config = scale.trace_config().with_weights(weights);
        let trace = TraceGenerator::new(&benchmark, config).generate();
        Workload { benchmark, trace }
    }

    /// Builds a *skewed* Set Query workload, the Set Query analogue of
    /// [`Workload::tpcd_skewed`]: a few dozen hot report queries dominate
    /// the references against a stream of one-off detail queries.
    ///
    /// Most references go to SQ5 (60 distinct full-scan report instances)
    /// and SQ6A (160 join reports with multi-KB retrieved sets) — the
    /// expensive summaries everyone re-runs, and large enough to contend for
    /// cache space; the bulk of the remainder goes to the never-repeating
    /// low-summarization templates SQ7P1 and SQ4B.  As with the TPC-D
    /// variant, hashing so few distinct hot keys lands unequal slices of the
    /// hot working set on different shards — the keyspace skew a static
    /// `total/N` capacity split cannot absorb.
    pub fn set_query_skewed(scale: ExperimentScale) -> Workload {
        let benchmark = setquery::benchmark();
        let mut weights = vec![0.5; benchmark.template_count()];
        weights[7] = 30.0; // SQ5: 60 hot instances, expensive scan reports
        weights[8] = 20.0; // SQ6A: 160 hot instances, costly joins, KB-sized
        weights[10] = 20.0; // SQ7P1: one-off large projections (churn)
        weights[6] = 20.0; // SQ4B: one-off detail queries (churn)
        let config = scale.trace_config().with_weights(weights);
        let trace = TraceGenerator::new(&benchmark, config).generate();
        Workload { benchmark, trace }
    }

    /// Builds the 14-relation buffer-experiment workload at the given scale.
    pub fn buffer_experiment(scale: ExperimentScale) -> Workload {
        let benchmark = synthetic::benchmark();
        let trace = TraceGenerator::new(&benchmark, scale.trace_config()).generate();
        Workload { benchmark, trace }
    }

    /// Both cache-experiment workloads (TPC-D and Set Query), in the order
    /// the paper's figures present them.
    pub fn both(scale: ExperimentScale) -> Vec<Workload> {
        vec![Workload::tpcd(scale), Workload::set_query(scale)]
    }

    /// The benchmark kind.
    pub fn kind(&self) -> BenchmarkKind {
        self.benchmark.kind()
    }

    /// The database size in bytes.
    pub fn database_bytes(&self) -> u64 {
        self.benchmark.catalog().total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_build_expected_trace_lengths() {
        assert_eq!(ExperimentScale::paper().query_count, 17_000);
        let workload = Workload::tpcd(ExperimentScale::quick(200));
        assert_eq!(workload.trace.len(), 200);
        assert_eq!(workload.kind(), BenchmarkKind::TpcD);
        assert!(workload.database_bytes() > 0);
    }

    #[test]
    fn both_returns_tpcd_then_set_query() {
        let workloads = Workload::both(ExperimentScale::quick(50));
        assert_eq!(workloads.len(), 2);
        assert_eq!(workloads[0].kind(), BenchmarkKind::TpcD);
        assert_eq!(workloads[1].kind(), BenchmarkKind::SetQuery);
    }

    #[test]
    fn seeds_change_traces() {
        let a = Workload::tpcd(ExperimentScale::quick(100));
        let b = Workload::tpcd(ExperimentScale::quick(100).with_seed(7));
        assert_ne!(a.trace, b.trace);
    }

    #[test]
    fn buffer_workload_uses_fourteen_relations() {
        let workload = Workload::buffer_experiment(ExperimentScale::quick(20));
        assert_eq!(workload.benchmark.catalog().relation_count(), 14);
    }
}
