//! Trace replay: drive a cache (bare policy or concurrent engine) with a
//! workload trace and collect the paper's performance metrics.
//!
//! Three engine drivers exist:
//!
//! * [`replay_trace_engine`] — one session, synchronous
//!   [`Watchman::get_or_execute`]; fully deterministic.
//! * [`replay_trace_engine_async`] — one session, the asynchronous
//!   [`Watchman::get_or_execute_async`] path driven to completion per
//!   record; deterministic, and byte-identical to the synchronous replay
//!   (the two front doors share one implementation).
//! * [`replay_trace_engine_concurrent`] — N session tasks on the engine's
//!   runtime, replaying disjoint slices of the trace concurrently; exercises
//!   coalescing and contention, so per-run metrics vary with scheduling.

use serde::{Deserialize, Serialize};
use watchman_core::clock::Timestamp;
use watchman_core::engine::{RebalanceConfig, StatsSnapshot, Watchman};
use watchman_core::key::QueryKey;
use watchman_core::metrics::{CacheStats, FragmentationTracker};
use watchman_core::policy::QueryCache;
use watchman_core::runtime::block_on;
use watchman_core::value::{ExecutionCost, SizedPayload};
use watchman_trace::Trace;

use crate::policy_kind::{BoxedCache, PolicyKind};

/// How often the deterministic replay drivers schedule a rebalance pass
/// ([`Watchman::rebalance_now`]), in trace records.  The engine itself never
/// runs passes on the request path; a wall-clock background task would make
/// replays nondeterministic, so the drivers schedule passes explicitly — the
/// logical-time analogue of the background period.
pub const REBALANCE_EVERY_RECORDS: u64 = 128;

/// The metrics of one (trace, policy, cache size) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Display label of the policy.
    pub policy: String,
    /// Cache capacity in bytes.
    pub capacity_bytes: u64,
    /// Cache capacity as a fraction of the database size.
    pub cache_fraction: f64,
    /// Cost savings ratio (the paper's primary metric).
    pub cost_savings_ratio: f64,
    /// Hit ratio.
    pub hit_ratio: f64,
    /// Average fraction of cache space in use (1 − external fragmentation).
    pub avg_used_fraction: f64,
    /// Minimum observed used fraction.
    pub min_used_fraction: f64,
    /// Number of query references replayed.
    pub references: u64,
    /// Number of admissions.
    pub admissions: u64,
    /// Number of admission rejections.
    pub rejections: u64,
    /// Number of evictions.
    pub evictions: u64,
    /// Number of shards the capacity was partitioned across (1 for bare
    /// policy replays).
    pub shards: usize,
    /// Number of capacity transfers the engine's rebalancer performed
    /// (0 when rebalancing is disabled).
    pub rebalances: u64,
}

impl RunResult {
    fn from_stats(
        policy: String,
        capacity_bytes: u64,
        cache_fraction: f64,
        stats: &CacheStats,
        fragmentation: &FragmentationTracker,
    ) -> RunResult {
        RunResult {
            policy,
            capacity_bytes,
            cache_fraction,
            cost_savings_ratio: stats.cost_savings_ratio(),
            hit_ratio: stats.hit_ratio(),
            avg_used_fraction: fragmentation.average_used_fraction(),
            min_used_fraction: fragmentation.min_used_fraction(),
            references: stats.references,
            admissions: stats.admissions,
            rejections: stats.rejections,
            evictions: stats.evictions,
            shards: 1,
            rebalances: 0,
        }
    }
}

/// Replays `trace` against an already-constructed bare cache policy.
///
/// For every trace record the runner performs the protocol described in
/// [`watchman_core::policy`]: a `get` with the record's timestamp, and on a
/// miss an `insert` carrying the record's retrieved-set size and execution
/// cost.  Occupancy is sampled after every query for the fragmentation
/// metric.
pub fn replay_trace(
    trace: &Trace,
    cache: &mut dyn QueryCache<SizedPayload>,
    cache_fraction: f64,
) -> RunResult {
    let mut fragmentation = FragmentationTracker::new();
    for record in trace.iter() {
        let now = Timestamp::from_micros(record.timestamp_us);
        let key = QueryKey::from_raw_query(&record.query_text);
        if cache.get(&key, now).is_none() {
            // Miss: "execute" the query (its cost is already recorded in the
            // trace) and offer the retrieved set for admission.
            cache.insert(
                key,
                SizedPayload::new(record.result_bytes),
                ExecutionCost::from_blocks(record.cost_blocks),
                now,
            );
        }
        fragmentation.record(cache.used_bytes(), cache.capacity_bytes());
    }
    RunResult::from_stats(
        cache.name().to_owned(),
        cache.capacity_bytes(),
        cache_fraction,
        cache.stats(),
        &fragmentation,
    )
}

/// Replays `trace` through a concurrent [`Watchman`] engine using
/// [`Watchman::get_or_execute`] — the same protocol a live multiuser front
/// end runs, here driven by one session.
///
/// Every [`REBALANCE_EVERY_RECORDS`] records the driver schedules one
/// rebalance pass ([`Watchman::rebalance_now`]); a no-op unless the engine
/// was built with rebalancing enabled.
pub fn replay_trace_engine(
    trace: &Trace,
    engine: &Watchman<SizedPayload>,
    cache_fraction: f64,
) -> RunResult {
    replay_records(
        trace,
        engine,
        cache_fraction,
        |engine, key, now, size, cost| {
            engine.get_or_execute(key, now, || {
                (SizedPayload::new(size), ExecutionCost::from_blocks(cost))
            });
        },
    )
}

/// Like [`replay_trace_engine`], but drives the **asynchronous** front door
/// ([`Watchman::get_or_execute_async`]) to completion for each record.
///
/// One session awaiting each lookup in turn is still fully deterministic —
/// the leader's fetch runs on the engine's runtime, but the driver does not
/// proceed until it lands — so this replay yields a byte-identical
/// [`RunResult`] (and engine `StatsSnapshot`) to the synchronous one: the
/// two front doors share a single miss/coalesce/abandon implementation.
pub fn replay_trace_engine_async(
    trace: &Trace,
    engine: &Watchman<SizedPayload>,
    cache_fraction: f64,
) -> RunResult {
    replay_records(
        trace,
        engine,
        cache_fraction,
        |engine, key, now, size, cost| {
            block_on(engine.get_or_execute_async(key, now, move || {
                (SizedPayload::new(size), ExecutionCost::from_blocks(cost))
            }));
        },
    )
}

/// The shared single-session replay loop: only the per-record lookup call
/// differs between the sync and async drivers, and keeping everything else
/// (timestamps, driver-scheduled rebalance passes, fragmentation sampling)
/// in one place is what guarantees the two stay byte-identical.
fn replay_records<F>(
    trace: &Trace,
    engine: &Watchman<SizedPayload>,
    cache_fraction: f64,
    mut lookup: F,
) -> RunResult
where
    F: FnMut(&Watchman<SizedPayload>, &QueryKey, Timestamp, u64, u64),
{
    let mut fragmentation = FragmentationTracker::new();
    for (index, record) in trace.iter().enumerate() {
        let now = Timestamp::from_micros(record.timestamp_us);
        let key = QueryKey::from_raw_query(&record.query_text);
        lookup(engine, &key, now, record.result_bytes, record.cost_blocks);
        if (index as u64 + 1).is_multiple_of(REBALANCE_EVERY_RECORDS) {
            engine.rebalance_now(now);
        }
        fragmentation.record(engine.used_bytes(), engine.capacity_bytes());
    }
    engine_result(engine, cache_fraction, &fragmentation)
}

/// Replays `trace` through the engine with `sessions` concurrent session
/// tasks on the engine's own runtime — the multiuser deployment of paper §3
/// driven end to end through [`Watchman::get_or_execute_async`].
///
/// Records are dealt round-robin across sessions; each session awaits its
/// lookups in trace order, so sessions race on the shared cache exactly like
/// live front-end sessions would (coalesced references included).  Aggregate
/// counters still balance (`references == trace.len()`), but eviction
/// decisions depend on interleaving, so per-run metrics are not
/// deterministic.  Occupancy is sampled once per session batch rather than
/// per reference; the fragmentation figures are therefore coarse.
pub fn replay_trace_engine_concurrent(
    trace: &Trace,
    engine: &Watchman<SizedPayload>,
    sessions: usize,
    cache_fraction: f64,
) -> RunResult {
    let sessions = sessions.max(1);
    let runtime = engine.runtime();
    let mut fragmentation = FragmentationTracker::new();
    let handles: Vec<_> = (0..sessions)
        .map(|session| {
            let engine = engine.clone();
            // Each session owns its slice of the trace (round-robin deal).
            let records: Vec<(u64, String, u64, u64)> = trace
                .iter()
                .skip(session)
                .step_by(sessions)
                .map(|r| {
                    (
                        r.timestamp_us,
                        r.query_text.clone(),
                        r.result_bytes,
                        r.cost_blocks,
                    )
                })
                .collect();
            runtime.spawn(async move {
                for (timestamp_us, query_text, result_bytes, cost_blocks) in records {
                    let key = QueryKey::from_raw_query(&query_text);
                    engine
                        .get_or_execute_async(
                            &key,
                            Timestamp::from_micros(timestamp_us),
                            move || {
                                (
                                    SizedPayload::new(result_bytes),
                                    ExecutionCost::from_blocks(cost_blocks),
                                )
                            },
                        )
                        .await;
                }
            })
        })
        .collect();
    for handle in handles {
        block_on(handle).expect("session task completed");
        fragmentation.record(engine.used_bytes(), engine.capacity_bytes());
    }
    engine_result(engine, cache_fraction, &fragmentation)
}

fn engine_result(
    engine: &Watchman<SizedPayload>,
    cache_fraction: f64,
    fragmentation: &FragmentationTracker,
) -> RunResult {
    let mut result = RunResult::from_stats(
        engine.policy().label(),
        engine.capacity_bytes(),
        cache_fraction,
        &engine.stats(),
        fragmentation,
    );
    result.shards = engine.shard_count();
    result.rebalances = engine.rebalance_count();
    result
}

/// Builds a [`RunResult`] from an engine [`StatsSnapshot`] — the
/// constructor remote drivers use when the engine lives in another process
/// (the server crate's wire-backed replay and load generator fetch a
/// snapshot over the `STATS` opcode and report it in the same schema the
/// in-process sweeps print).
///
/// Occupancy is not sampled per reference over the wire, so the
/// fragmentation fields are zero.
pub fn run_result_from_snapshot(
    policy: String,
    capacity_bytes: u64,
    cache_fraction: f64,
    snapshot: &StatsSnapshot,
) -> RunResult {
    RunResult {
        policy,
        capacity_bytes,
        cache_fraction,
        cost_savings_ratio: snapshot.total.cost_savings_ratio(),
        hit_ratio: snapshot.total.hit_ratio(),
        avg_used_fraction: 0.0,
        min_used_fraction: 0.0,
        references: snapshot.total.references,
        admissions: snapshot.total.admissions,
        rejections: snapshot.total.rejections,
        evictions: snapshot.total.evictions,
        shards: snapshot.per_shard.len(),
        rebalances: snapshot.rebalances,
    }
}

/// Builds a one-shard engine for `kind` at `cache_fraction` of the trace's
/// database size and replays the trace through it.
pub fn run_policy(trace: &Trace, kind: PolicyKind, cache_fraction: f64) -> RunResult {
    run_policy_sharded(trace, kind, cache_fraction, 1)
}

/// Like [`run_policy`], but hash-partitions the keyspace across `shards`
/// independent policy instances — the configuration a concurrent deployment
/// runs.  With a single replaying session the aggregate metrics measure the
/// effect of partitioning the capacity, not of contention.
pub fn run_policy_sharded(
    trace: &Trace,
    kind: PolicyKind,
    cache_fraction: f64,
    shards: usize,
) -> RunResult {
    run_policy_sharded_with(trace, kind, cache_fraction, shards, None)
}

/// Like [`run_policy_sharded`], but optionally enabling the engine's
/// profit-aware capacity rebalancing between shards.
///
/// This is the runner the static-vs-rebalanced shard sweep uses: the same
/// trace replayed at the same shard count, once with the static `total/N`
/// split (`rebalance: None`) and once with capacity following per-shard
/// profit (`rebalance: Some(..)`).  The config is forced into `manual()`
/// mode and passes are driver-scheduled every [`REBALANCE_EVERY_RECORDS`]
/// records: a wall-clock background task would make the replay
/// nondeterministic.
pub fn run_policy_sharded_with(
    trace: &Trace,
    kind: PolicyKind,
    cache_fraction: f64,
    shards: usize,
    rebalance: Option<RebalanceConfig>,
) -> RunResult {
    let capacity = (trace.database_bytes as f64 * cache_fraction).round() as u64;
    let mut builder = Watchman::builder()
        .shards(shards)
        .policy(kind)
        .capacity_bytes(capacity);
    if let Some(config) = rebalance {
        builder = builder.rebalance(config.manual());
    }
    let engine: Watchman<SizedPayload> = builder.build();
    replay_trace_engine(trace, &engine, cache_fraction)
}

/// Replays the trace against an effectively infinite cache (used by the
/// Figure 2 experiment and as the "inf" line of Figures 4 and 5).
pub fn run_infinite(trace: &Trace) -> RunResult {
    let mut cache: BoxedCache = PolicyKind::LNC_RA.build(u64::MAX);
    let mut result = replay_trace(trace, cache.as_mut(), f64::INFINITY);
    result.policy = "inf".to_owned();
    // Occupancy relative to an unbounded cache is meaningless.
    result.avg_used_fraction = 0.0;
    result.min_used_fraction = 0.0;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use watchman_trace::{TraceConfig, TraceGenerator, TraceStats};
    use watchman_warehouse::tpcd;

    fn quick_trace(n: usize, seed: u64) -> Trace {
        let benchmark = tpcd::benchmark();
        TraceGenerator::new(&benchmark, TraceConfig::quick(n, seed)).generate()
    }

    #[test]
    fn infinite_cache_achieves_the_trace_upper_bounds() {
        let trace = quick_trace(1_500, 1);
        let stats = TraceStats::of(&trace);
        let result = run_infinite(&trace);
        assert!((result.hit_ratio - stats.max_hit_ratio).abs() < 1e-9);
        assert!((result.cost_savings_ratio - stats.max_cost_savings_ratio).abs() < 1e-9);
        assert_eq!(result.references, trace.len() as u64);
    }

    #[test]
    fn finite_caches_never_beat_the_infinite_cache() {
        let trace = quick_trace(1_200, 2);
        let inf = run_infinite(&trace);
        for kind in PolicyKind::paper_trio() {
            let result = run_policy(&trace, kind, 0.01);
            assert!(
                result.cost_savings_ratio <= inf.cost_savings_ratio + 1e-9,
                "{kind} beat the infinite cache"
            );
            assert!(result.hit_ratio <= inf.hit_ratio + 1e-9);
        }
    }

    #[test]
    fn lnc_ra_outperforms_lru_on_small_caches() {
        // The paper's headline result: at small cache sizes LNC-RA achieves a
        // multiple of LRU's cost savings ratio on the TPC-D trace.
        let trace = quick_trace(3_000, 3);
        let lnc = run_policy(&trace, PolicyKind::LNC_RA, 0.005);
        let lru = run_policy(&trace, PolicyKind::Lru, 0.005);
        assert!(
            lnc.cost_savings_ratio > 1.5 * lru.cost_savings_ratio,
            "LNC-RA CSR {} should clearly beat LRU CSR {}",
            lnc.cost_savings_ratio,
            lru.cost_savings_ratio
        );
    }

    #[test]
    fn results_are_deterministic() {
        let trace = quick_trace(800, 4);
        let a = run_policy(&trace, PolicyKind::LNC_RA, 0.01);
        let b = run_policy(&trace, PolicyKind::LNC_RA, 0.01);
        assert_eq!(a, b);
    }

    #[test]
    fn engine_replay_matches_bare_policy_replay() {
        // One shard, one session: the engine path must reproduce the bare
        // policy replay metric for metric.
        let trace = quick_trace(1_000, 6);
        let capacity = (trace.database_bytes as f64 * 0.01).round() as u64;
        let mut bare: BoxedCache = PolicyKind::LNC_RA.build(capacity);
        let via_policy = replay_trace(&trace, bare.as_mut(), 0.01);
        let via_engine = run_policy(&trace, PolicyKind::LNC_RA, 0.01);
        assert_eq!(via_engine.references, via_policy.references);
        assert_eq!(via_engine.admissions, via_policy.admissions);
        assert_eq!(via_engine.evictions, via_policy.evictions);
        assert!((via_engine.cost_savings_ratio - via_policy.cost_savings_ratio).abs() < 1e-12);
        assert!((via_engine.hit_ratio - via_policy.hit_ratio).abs() < 1e-12);
    }

    #[test]
    fn async_replay_is_byte_identical_to_sync_replay() {
        // Acceptance criterion: the sync and async front doors share one
        // miss/coalesce/abandon implementation, so a deterministic
        // single-session TPC-D replay must yield identical snapshots.
        let trace = quick_trace(1_500, 9);
        let capacity = (trace.database_bytes as f64 * 0.01).round() as u64;
        let build = || -> watchman_core::engine::Watchman<SizedPayload> {
            watchman_core::engine::Watchman::builder()
                .shards(4)
                .policy(PolicyKind::LNC_RA)
                .capacity_bytes(capacity)
                .build()
        };
        let sync_engine = build();
        let async_engine = build();
        let via_sync = replay_trace_engine(&trace, &sync_engine, 0.01);
        let via_async = replay_trace_engine_async(&trace, &async_engine, 0.01);
        assert_eq!(via_sync, via_async, "RunResults must match field for field");
        assert_eq!(
            sync_engine.stats_snapshot(),
            async_engine.stats_snapshot(),
            "engine snapshots must be identical"
        );
    }

    #[test]
    fn concurrent_replay_accounts_for_every_reference() {
        let trace = quick_trace(1_200, 10);
        let capacity = (trace.database_bytes as f64 * 0.01).round() as u64;
        let engine: watchman_core::engine::Watchman<SizedPayload> =
            watchman_core::engine::Watchman::builder()
                .shards(4)
                .policy(PolicyKind::LNC_RA)
                .capacity_bytes(capacity)
                .runtime_workers(3)
                .build();
        let result = replay_trace_engine_concurrent(&trace, &engine, 4, 0.01);
        assert_eq!(result.references, trace.len() as u64);
        let snapshot = engine.stats_snapshot();
        assert_eq!(
            snapshot.total.references,
            snapshot.total.hits + snapshot.total.coalesced + snapshot.total.misses(),
            "references partition into hits, coalesced waits and misses"
        );
        assert!(engine.used_bytes() <= engine.capacity_bytes());
    }

    #[test]
    fn sharded_replay_stays_close_to_unsharded() {
        let trace = quick_trace(1_500, 7);
        let unsharded = run_policy(&trace, PolicyKind::LNC_RA, 0.01);
        let sharded = run_policy_sharded(&trace, PolicyKind::LNC_RA, 0.01, 8);
        assert_eq!(sharded.references, unsharded.references);
        // Partitioning the capacity changes individual eviction decisions but
        // must not collapse the cost savings.
        assert!(
            sharded.cost_savings_ratio > 0.5 * unsharded.cost_savings_ratio,
            "sharded CSR {} vs unsharded {}",
            sharded.cost_savings_ratio,
            unsharded.cost_savings_ratio
        );
    }

    #[test]
    fn run_result_counts_are_consistent() {
        let trace = quick_trace(600, 5);
        let result = run_policy(&trace, PolicyKind::Lru, 0.02);
        assert_eq!(result.references, trace.len() as u64);
        assert!(result.admissions + result.rejections <= result.references);
        assert!(result.avg_used_fraction >= result.min_used_fraction);
        assert!(result.policy == "LRU");
    }
}
