//! Trace replay: drive a cache (bare policy or concurrent engine) with a
//! workload trace and collect the paper's performance metrics.

use serde::{Deserialize, Serialize};
use watchman_core::clock::Timestamp;
use watchman_core::engine::{RebalanceConfig, Watchman};
use watchman_core::key::QueryKey;
use watchman_core::metrics::{CacheStats, FragmentationTracker};
use watchman_core::policy::QueryCache;
use watchman_core::value::{ExecutionCost, SizedPayload};
use watchman_trace::Trace;

use crate::policy_kind::{BoxedCache, PolicyKind};

/// The metrics of one (trace, policy, cache size) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Display label of the policy.
    pub policy: String,
    /// Cache capacity in bytes.
    pub capacity_bytes: u64,
    /// Cache capacity as a fraction of the database size.
    pub cache_fraction: f64,
    /// Cost savings ratio (the paper's primary metric).
    pub cost_savings_ratio: f64,
    /// Hit ratio.
    pub hit_ratio: f64,
    /// Average fraction of cache space in use (1 − external fragmentation).
    pub avg_used_fraction: f64,
    /// Minimum observed used fraction.
    pub min_used_fraction: f64,
    /// Number of query references replayed.
    pub references: u64,
    /// Number of admissions.
    pub admissions: u64,
    /// Number of admission rejections.
    pub rejections: u64,
    /// Number of evictions.
    pub evictions: u64,
    /// Number of shards the capacity was partitioned across (1 for bare
    /// policy replays).
    pub shards: usize,
    /// Number of capacity transfers the engine's rebalancer performed
    /// (0 when rebalancing is disabled).
    pub rebalances: u64,
}

impl RunResult {
    fn from_stats(
        policy: String,
        capacity_bytes: u64,
        cache_fraction: f64,
        stats: &CacheStats,
        fragmentation: &FragmentationTracker,
    ) -> RunResult {
        RunResult {
            policy,
            capacity_bytes,
            cache_fraction,
            cost_savings_ratio: stats.cost_savings_ratio(),
            hit_ratio: stats.hit_ratio(),
            avg_used_fraction: fragmentation.average_used_fraction(),
            min_used_fraction: fragmentation.min_used_fraction(),
            references: stats.references,
            admissions: stats.admissions,
            rejections: stats.rejections,
            evictions: stats.evictions,
            shards: 1,
            rebalances: 0,
        }
    }
}

/// Replays `trace` against an already-constructed bare cache policy.
///
/// For every trace record the runner performs the protocol described in
/// [`watchman_core::policy`]: a `get` with the record's timestamp, and on a
/// miss an `insert` carrying the record's retrieved-set size and execution
/// cost.  Occupancy is sampled after every query for the fragmentation
/// metric.
pub fn replay_trace(
    trace: &Trace,
    cache: &mut dyn QueryCache<SizedPayload>,
    cache_fraction: f64,
) -> RunResult {
    let mut fragmentation = FragmentationTracker::new();
    for record in trace.iter() {
        let now = Timestamp::from_micros(record.timestamp_us);
        let key = QueryKey::from_raw_query(&record.query_text);
        if cache.get(&key, now).is_none() {
            // Miss: "execute" the query (its cost is already recorded in the
            // trace) and offer the retrieved set for admission.
            cache.insert(
                key,
                SizedPayload::new(record.result_bytes),
                ExecutionCost::from_blocks(record.cost_blocks),
                now,
            );
        }
        fragmentation.record(cache.used_bytes(), cache.capacity_bytes());
    }
    RunResult::from_stats(
        cache.name().to_owned(),
        cache.capacity_bytes(),
        cache_fraction,
        cache.stats(),
        &fragmentation,
    )
}

/// Replays `trace` through a concurrent [`Watchman`] engine using
/// [`Watchman::get_or_execute`] — the same protocol a live multiuser front
/// end runs, here driven by one session.
pub fn replay_trace_engine(
    trace: &Trace,
    engine: &Watchman<SizedPayload>,
    cache_fraction: f64,
) -> RunResult {
    let mut fragmentation = FragmentationTracker::new();
    for record in trace.iter() {
        let now = Timestamp::from_micros(record.timestamp_us);
        let key = QueryKey::from_raw_query(&record.query_text);
        engine.get_or_execute(&key, now, || {
            (
                SizedPayload::new(record.result_bytes),
                ExecutionCost::from_blocks(record.cost_blocks),
            )
        });
        fragmentation.record(engine.used_bytes(), engine.capacity_bytes());
    }
    let mut result = RunResult::from_stats(
        engine.policy().label(),
        engine.capacity_bytes(),
        cache_fraction,
        &engine.stats(),
        &fragmentation,
    );
    result.shards = engine.shard_count();
    result.rebalances = engine.rebalance_count();
    result
}

/// Builds a one-shard engine for `kind` at `cache_fraction` of the trace's
/// database size and replays the trace through it.
pub fn run_policy(trace: &Trace, kind: PolicyKind, cache_fraction: f64) -> RunResult {
    run_policy_sharded(trace, kind, cache_fraction, 1)
}

/// Like [`run_policy`], but hash-partitions the keyspace across `shards`
/// independent policy instances — the configuration a concurrent deployment
/// runs.  With a single replaying session the aggregate metrics measure the
/// effect of partitioning the capacity, not of contention.
pub fn run_policy_sharded(
    trace: &Trace,
    kind: PolicyKind,
    cache_fraction: f64,
    shards: usize,
) -> RunResult {
    run_policy_sharded_with(trace, kind, cache_fraction, shards, None)
}

/// Like [`run_policy_sharded`], but optionally enabling the engine's
/// profit-aware capacity rebalancing between shards.
///
/// This is the runner the static-vs-rebalanced shard sweep uses: the same
/// trace replayed at the same shard count, once with the static `total/N`
/// split (`rebalance: None`) and once with capacity following per-shard
/// profit (`rebalance: Some(..)`).
pub fn run_policy_sharded_with(
    trace: &Trace,
    kind: PolicyKind,
    cache_fraction: f64,
    shards: usize,
    rebalance: Option<RebalanceConfig>,
) -> RunResult {
    let capacity = (trace.database_bytes as f64 * cache_fraction).round() as u64;
    let mut builder = Watchman::builder()
        .shards(shards)
        .policy(kind)
        .capacity_bytes(capacity);
    if let Some(config) = rebalance {
        builder = builder.rebalance(config);
    }
    let engine: Watchman<SizedPayload> = builder.build();
    replay_trace_engine(trace, &engine, cache_fraction)
}

/// Replays the trace against an effectively infinite cache (used by the
/// Figure 2 experiment and as the "inf" line of Figures 4 and 5).
pub fn run_infinite(trace: &Trace) -> RunResult {
    let mut cache: BoxedCache = PolicyKind::LNC_RA.build(u64::MAX);
    let mut result = replay_trace(trace, cache.as_mut(), f64::INFINITY);
    result.policy = "inf".to_owned();
    // Occupancy relative to an unbounded cache is meaningless.
    result.avg_used_fraction = 0.0;
    result.min_used_fraction = 0.0;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use watchman_trace::{TraceConfig, TraceGenerator, TraceStats};
    use watchman_warehouse::tpcd;

    fn quick_trace(n: usize, seed: u64) -> Trace {
        let benchmark = tpcd::benchmark();
        TraceGenerator::new(&benchmark, TraceConfig::quick(n, seed)).generate()
    }

    #[test]
    fn infinite_cache_achieves_the_trace_upper_bounds() {
        let trace = quick_trace(1_500, 1);
        let stats = TraceStats::of(&trace);
        let result = run_infinite(&trace);
        assert!((result.hit_ratio - stats.max_hit_ratio).abs() < 1e-9);
        assert!((result.cost_savings_ratio - stats.max_cost_savings_ratio).abs() < 1e-9);
        assert_eq!(result.references, trace.len() as u64);
    }

    #[test]
    fn finite_caches_never_beat_the_infinite_cache() {
        let trace = quick_trace(1_200, 2);
        let inf = run_infinite(&trace);
        for kind in PolicyKind::paper_trio() {
            let result = run_policy(&trace, kind, 0.01);
            assert!(
                result.cost_savings_ratio <= inf.cost_savings_ratio + 1e-9,
                "{kind} beat the infinite cache"
            );
            assert!(result.hit_ratio <= inf.hit_ratio + 1e-9);
        }
    }

    #[test]
    fn lnc_ra_outperforms_lru_on_small_caches() {
        // The paper's headline result: at small cache sizes LNC-RA achieves a
        // multiple of LRU's cost savings ratio on the TPC-D trace.
        let trace = quick_trace(3_000, 3);
        let lnc = run_policy(&trace, PolicyKind::LNC_RA, 0.005);
        let lru = run_policy(&trace, PolicyKind::Lru, 0.005);
        assert!(
            lnc.cost_savings_ratio > 1.5 * lru.cost_savings_ratio,
            "LNC-RA CSR {} should clearly beat LRU CSR {}",
            lnc.cost_savings_ratio,
            lru.cost_savings_ratio
        );
    }

    #[test]
    fn results_are_deterministic() {
        let trace = quick_trace(800, 4);
        let a = run_policy(&trace, PolicyKind::LNC_RA, 0.01);
        let b = run_policy(&trace, PolicyKind::LNC_RA, 0.01);
        assert_eq!(a, b);
    }

    #[test]
    fn engine_replay_matches_bare_policy_replay() {
        // One shard, one session: the engine path must reproduce the bare
        // policy replay metric for metric.
        let trace = quick_trace(1_000, 6);
        let capacity = (trace.database_bytes as f64 * 0.01).round() as u64;
        let mut bare: BoxedCache = PolicyKind::LNC_RA.build(capacity);
        let via_policy = replay_trace(&trace, bare.as_mut(), 0.01);
        let via_engine = run_policy(&trace, PolicyKind::LNC_RA, 0.01);
        assert_eq!(via_engine.references, via_policy.references);
        assert_eq!(via_engine.admissions, via_policy.admissions);
        assert_eq!(via_engine.evictions, via_policy.evictions);
        assert!((via_engine.cost_savings_ratio - via_policy.cost_savings_ratio).abs() < 1e-12);
        assert!((via_engine.hit_ratio - via_policy.hit_ratio).abs() < 1e-12);
    }

    #[test]
    fn sharded_replay_stays_close_to_unsharded() {
        let trace = quick_trace(1_500, 7);
        let unsharded = run_policy(&trace, PolicyKind::LNC_RA, 0.01);
        let sharded = run_policy_sharded(&trace, PolicyKind::LNC_RA, 0.01, 8);
        assert_eq!(sharded.references, unsharded.references);
        // Partitioning the capacity changes individual eviction decisions but
        // must not collapse the cost savings.
        assert!(
            sharded.cost_savings_ratio > 0.5 * unsharded.cost_savings_ratio,
            "sharded CSR {} vs unsharded {}",
            sharded.cost_savings_ratio,
            unsharded.cost_savings_ratio
        );
    }

    #[test]
    fn run_result_counts_are_consistent() {
        let trace = quick_trace(600, 5);
        let result = run_policy(&trace, PolicyKind::Lru, 0.02);
        assert_eq!(result.references, trace.len() as u64);
        assert!(result.admissions + result.rejections <= result.references);
        assert!(result.avg_used_fraction >= result.min_used_fraction);
        assert!(result.policy == "LRU");
    }
}
