//! Minimal fixed-width text tables for experiment output.
//!
//! Every experiment renders its results as one or more of these tables; the
//! figure binaries and the Criterion benches print them so that
//! `bench_output.txt` contains the same rows/series the paper's figures
//! report.

use std::fmt::Write as _;

/// A simple left-padded text table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have the same arity as the headers).
    ///
    /// # Panics
    ///
    /// Panics if the row arity differs from the header arity.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:>width$}", h, width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header_line.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }
}

/// Formats a ratio (0–1) with three decimals.
pub fn ratio(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a byte count in a human-friendly unit.
pub fn bytes(value: u64) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    let v = value as f64;
    if v >= MB {
        format!("{:.1} MB", v / MB)
    } else if v >= KB {
        format!("{:.1} KB", v / KB)
    } else {
        format!("{value} B")
    }
}

/// Formats a percentage with one decimal.
pub fn percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut table = TextTable::new("Demo", &["policy", "csr"]);
        table.push_row(vec!["LNC-RA".into(), "0.812".into()]);
        table.push_row(vec!["LRU".into(), "0.204".into()]);
        let rendered = table.render();
        assert!(rendered.contains("== Demo =="));
        assert!(rendered.contains("policy"));
        assert!(rendered.contains("LNC-RA"));
        assert!(rendered.contains("0.204"));
        assert_eq!(table.row_count(), 2);
        assert_eq!(table.title(), "Demo");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn rejects_mismatched_rows() {
        let mut table = TextTable::new("Bad", &["a", "b"]);
        table.push_row(vec!["only one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(0.51234), "0.512");
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(2048), "2.0 KB");
        assert_eq!(bytes(3 * 1024 * 1024), "3.0 MB");
        assert_eq!(percent(0.987), "98.7%");
    }
}
