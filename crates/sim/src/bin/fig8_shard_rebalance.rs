//! Extension figure: static `total/N` vs profit-rebalanced shard capacity,
//! swept over shards × cache fraction on a skewed TPC-D trace.
//!
//! Run with `cargo run --release -p watchman-sim --bin fig8_shard_rebalance`.
//! Pass `--quick` for a shortened run suitable for CI smoke testing.

use watchman_sim::{ExperimentScale, ShardRebalanceExperiment};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        ExperimentScale::quick(4_000)
    } else {
        ExperimentScale::paper()
    };
    println!(
        "Shard capacity sweep (scale: {} queries, skewed TPC-D trace)\n",
        scale.query_count
    );
    let experiment = ShardRebalanceExperiment::run(scale);
    print!("{}", experiment.render());
}
