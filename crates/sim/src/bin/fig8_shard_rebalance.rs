//! Extension figure: static `total/N` vs profit-rebalanced shard capacity,
//! swept over shards × cache fraction as a benchmark × policy matrix —
//! skewed TPC-D and skewed Set Query with LNC-RA (exact gain/loss signal
//! from §2.4 retained information), plus GreedyDual-Size as the
//! pressure-only fallback row.
//!
//! Run with `cargo run --release -p watchman-sim --bin fig8_shard_rebalance`.
//! Pass `--quick` for a shortened run suitable for CI smoke testing.

use watchman_sim::{ExperimentScale, ShardRebalanceExperiment};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        ExperimentScale::quick(4_000)
    } else {
        ExperimentScale::paper()
    };
    println!(
        "Shard capacity sweep matrix (scale: {} queries per trace)\n",
        scale.query_count
    );
    for experiment in ShardRebalanceExperiment::run_matrix(scale) {
        print!("{}", experiment.render());
        println!();
    }
}
