//! Extension ablation: LNC-RA against LRU, LRU-K, LFU, LCS and
//! GreedyDual-Size, plus the optimality-gap comparison against the static
//! LNC* oracle of §2.3.
//!
//! Run with `cargo run --release -p watchman-sim --bin ablation_policy_zoo`.
//! Pass `--quick` to use a shortened trace.

use watchman_sim::{ExperimentScale, OptimalityExperiment, PolicyZooExperiment};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        ExperimentScale::quick(4_000)
    } else {
        ExperimentScale::paper()
    };
    let zoo = PolicyZooExperiment::run(scale);
    print!("{}", zoo.render());
    let optimality = OptimalityExperiment::run(scale, &[0.01, 0.05]);
    print!("{}", optimality.render());
}
