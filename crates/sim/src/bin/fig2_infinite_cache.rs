//! Reproduces Figure 2: performance with an infinite cache.
//!
//! Run with `cargo run --release -p watchman-sim --bin fig2_infinite_cache`.
//! Pass `--quick` to use a shortened trace.

use watchman_sim::{ExperimentScale, InfiniteCacheExperiment};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        ExperimentScale::quick(4_000)
    } else {
        ExperimentScale::paper()
    };
    let experiment = InfiniteCacheExperiment::run(scale);
    print!("{}", experiment.render());
    if let Ok(json) = serde_json::to_string_pretty(&experiment.rows) {
        eprintln!("{json}");
    }
}
