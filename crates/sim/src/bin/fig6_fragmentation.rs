//! Reproduces Figure 6: external cache fragmentation (fraction of cache space
//! in use) for LNC-RA, LNC-R and LRU across cache sizes.
//!
//! Run with `cargo run --release -p watchman-sim --bin fig6_fragmentation`.
//! Pass `--quick` to use a shortened trace and a reduced sweep.

use watchman_sim::{ExperimentScale, FragmentationExperiment};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let experiment = if quick {
        FragmentationExperiment::run_with_fractions(
            ExperimentScale::quick(4_000),
            &[0.005, 0.01, 0.03, 0.05],
        )
    } else {
        FragmentationExperiment::run(ExperimentScale::paper())
    };
    print!("{}", experiment.render());
}
