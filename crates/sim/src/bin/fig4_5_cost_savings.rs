//! Reproduces Figure 4 (cost savings ratio vs cache size), Figure 5 (hit
//! ratio vs cache size) and the §4.2 improvement-factor summary.
//!
//! Run with `cargo run --release -p watchman-sim --bin fig4_5_cost_savings`.
//! Pass `--quick` to use a shortened trace and a reduced sweep.

use watchman_sim::experiments::cost_savings::QUICK_CACHE_FRACTIONS;
use watchman_sim::{CostSavingsExperiment, ExperimentScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let experiment = if quick {
        CostSavingsExperiment::run_with_fractions(
            ExperimentScale::quick(4_000),
            &QUICK_CACHE_FRACTIONS,
        )
    } else {
        CostSavingsExperiment::run(ExperimentScale::paper())
    };
    print!("{}", experiment.render_cost_savings());
    print!("{}", experiment.render_hit_ratio());
    print!("{}", experiment.render_summary());
}
