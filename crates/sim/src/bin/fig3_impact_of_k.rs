//! Reproduces Figure 3: impact of the reference window `K` on the cost
//! savings ratio (cache size = 1 % of the database).
//!
//! Run with `cargo run --release -p watchman-sim --bin fig3_impact_of_k`.
//! Pass `--quick` to use a shortened trace.

use watchman_sim::{ExperimentScale, ImpactOfKExperiment};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        ExperimentScale::quick(4_000)
    } else {
        ExperimentScale::paper()
    };
    let experiment = ImpactOfKExperiment::run(scale);
    print!("{}", experiment.render());
}
