//! Runs every experiment of the paper's evaluation section (Figures 2–7) and
//! the extension ablations, printing each table.
//!
//! Run with `cargo run --release -p watchman-sim --bin run_all`.
//! Pass `--quick` for a shortened run suitable for CI.

use watchman_sim::{
    BufferHintExperiment, CostSavingsExperiment, ExperimentScale, FragmentationExperiment,
    ImpactOfKExperiment, InfiniteCacheExperiment, OptimalityExperiment, PolicyZooExperiment,
    ShardRebalanceExperiment,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        ExperimentScale::quick(4_000)
    } else {
        ExperimentScale::paper()
    };
    let buffer_scale = if quick {
        ExperimentScale::quick(2_000)
    } else {
        ExperimentScale::paper()
    };

    println!(
        "WATCHMAN evaluation reproduction (scale: {} queries per trace)\n",
        scale.query_count
    );

    let fig2 = InfiniteCacheExperiment::run(scale);
    println!("{}", fig2.render());

    let fig3 = ImpactOfKExperiment::run(scale);
    print!("{}", fig3.render());

    let fig45 = CostSavingsExperiment::run(scale);
    print!("{}", fig45.render_cost_savings());
    print!("{}", fig45.render_hit_ratio());
    println!("{}", fig45.render_summary());

    let fig6 = FragmentationExperiment::run(scale);
    print!("{}", fig6.render());

    let fig7 = BufferHintExperiment::run(buffer_scale);
    println!("{}", fig7.render());

    let zoo = PolicyZooExperiment::run(scale);
    print!("{}", zoo.render());

    let optimality = OptimalityExperiment::run(scale, &[0.01, 0.05]);
    print!("{}", optimality.render());

    let shard_sweep = ShardRebalanceExperiment::run(scale);
    print!("{}", shard_sweep.render());
}
