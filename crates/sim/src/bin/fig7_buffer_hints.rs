//! Reproduces Figure 7: effect of WATCHMAN's p₀-redundancy hints on the
//! buffer manager's hit ratio (15 MB buffer pool, 15 MB WATCHMAN cache,
//! 14-relation 100 MB database).
//!
//! Run with `cargo run --release -p watchman-sim --bin fig7_buffer_hints`.
//! Pass `--quick` to use a shortened trace (the full run replays tens of
//! millions of page references).

use watchman_sim::{BufferHintExperiment, ExperimentScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        ExperimentScale::quick(2_000)
    } else {
        ExperimentScale::paper()
    };
    let experiment = BufferHintExperiment::run(scale);
    print!("{}", experiment.render());
}
