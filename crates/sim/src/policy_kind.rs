//! Named cache-policy configurations used throughout the experiments.
//!
//! [`PolicyKind`] now lives in the core library
//! ([`watchman_core::engine::PolicyKind`]) so the concurrent engine, the
//! simulator, the buffer-hint machinery and the examples all share one
//! construction path; this module re-exports it together with the
//! simulation-payload aliases the experiment runners use.

pub use watchman_core::engine::PolicyKind;
use watchman_core::policy::QueryCache;
use watchman_core::value::SizedPayload;

/// The payload type used by all simulation experiments: retrieved sets are
/// represented by their size only, which is all any policy decision uses.
pub type SimPayload = SizedPayload;

/// A boxed cache policy over simulation payloads.
pub type BoxedCache = Box<dyn QueryCache<SimPayload> + Send>;

#[cfg(test)]
mod tests {
    use super::*;
    use watchman_core::clock::Timestamp;
    use watchman_core::key::QueryKey;
    use watchman_core::value::ExecutionCost;

    #[test]
    fn labels_are_stable() {
        assert_eq!(PolicyKind::LNC_RA.label(), "LNC-RA");
        assert_eq!(PolicyKind::LncRa { k: 2 }.label(), "LNC-RA(K=2)");
        assert_eq!(PolicyKind::Lru.label(), "LRU");
        assert_eq!(PolicyKind::LruK { k: 3 }.label(), "LRU-3");
        assert_eq!(PolicyKind::GreedyDualSize.to_string(), "GreedyDual-Size");
    }

    #[test]
    fn paper_trio_and_zoo_composition() {
        assert_eq!(PolicyKind::paper_trio().len(), 3);
        assert_eq!(PolicyKind::all().len(), 7);
    }

    #[test]
    fn every_kind_builds_a_working_cache() {
        for kind in PolicyKind::all() {
            let mut cache: BoxedCache = kind.build(10_000);
            assert_eq!(cache.capacity_bytes(), 10_000);
            let key = QueryKey::new("q");
            assert!(cache.get(&key, Timestamp::from_micros(1)).is_none());
            let outcome = cache.insert(
                key.clone(),
                SimPayload::new(100),
                ExecutionCost::from_blocks(50),
                Timestamp::from_micros(1),
            );
            assert!(outcome.is_cached(), "{kind}: first insert must be cached");
            assert!(cache.get(&key, Timestamp::from_micros(2)).is_some());
        }
    }
}
