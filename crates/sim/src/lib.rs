//! # watchman-sim
//!
//! The experiment harness of the WATCHMAN reproduction: it wires the cache
//! policies ([`watchman-core`](watchman_core)), the synthetic warehouse
//! ([`watchman-warehouse`](watchman_warehouse)), the trace generator
//! ([`watchman-trace`](watchman_trace)) and the buffer manager
//! ([`watchman-buffer`](watchman_buffer)) into the experiments of the paper's
//! evaluation section.
//!
//! * [`policy_kind`] — named policy configurations;
//! * [`workload`] — the TPC-D, Set Query and buffer-experiment workloads;
//! * [`runner`] — trace replay and metric collection;
//! * [`experiments`] — one module per paper figure (2–7) plus extension
//!   ablations;
//! * [`table`] — text-table rendering used by the figure binaries and the
//!   Criterion benches.
//!
//! Each figure also has a binary (`fig2_infinite_cache`, `fig3_impact_of_k`,
//! `fig4_5_cost_savings`, `fig6_fragmentation`, `fig7_buffer_hints`,
//! `ablation_policy_zoo`, `run_all`) that runs the experiment at paper scale
//! and prints its table.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod policy_kind;
pub mod runner;
pub mod table;
pub mod workload;

pub use experiments::{
    BufferHintExperiment, CostSavingsExperiment, FragmentationExperiment, ImpactOfKExperiment,
    InfiniteCacheExperiment, OptimalityExperiment, PolicyZooExperiment, ShardRebalanceExperiment,
};
pub use policy_kind::{BoxedCache, PolicyKind, SimPayload};
pub use runner::{
    replay_trace, replay_trace_engine, replay_trace_engine_async, replay_trace_engine_concurrent,
    run_infinite, run_policy, run_policy_sharded, run_policy_sharded_with,
    run_result_from_snapshot, RunResult, REBALANCE_EVERY_RECORDS,
};
pub use workload::{ExperimentScale, Workload};
