//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! small serde-compatible surface the workspace needs: [`Serialize`] /
//! [`Deserialize`] traits over a JSON-like [`Value`] tree, derive macros
//! re-exported from the vendored `serde_derive`, and implementations for the
//! standard-library types the workspace serializes.
//!
//! The data model is deliberately simple — a self-describing tree — rather
//! than real serde's visitor architecture.  `serde_json` (also vendored)
//! renders and parses this tree as JSON text.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer that does not fit in `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object, if this value is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of an array, if this value is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up an object field by name.
    pub fn get(&self, field: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| value_get(entries, field))
    }
}

/// Looks up a field in an object's entry list (helper used by derived code).
pub fn value_get<'a>(entries: &'a [(String, Value)], field: &str) -> Option<&'a Value> {
    entries
        .iter()
        .find(|(name, _)| name == field)
        .map(|(_, v)| v)
}

/// A (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// A type-mismatch error.
    pub fn expected(expected: &str, context: &str) -> Self {
        Error::custom(format!("expected {expected} while deserializing {context}"))
    }

    /// A missing-field error.
    pub fn missing_field(field: &str) -> Self {
        Error::custom(format!("missing field `{field}`"))
    }

    /// An unknown-enum-variant error.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        Error::custom(format!("unknown variant `{variant}` for {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be rendered into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Called when a struct field is absent from the serialized form.
    ///
    /// The default is an error; `Option<T>` overrides it to produce `None`,
    /// which mirrors real serde's handling of optional fields.
    fn from_missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::missing_field(field))
    }
}

// ---------------------------------------------------------------------------
// Primitive implementations
// ---------------------------------------------------------------------------

macro_rules! int_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(v) => <$ty>::try_from(*v)
                        .map_err(|_| Error::expected(stringify!($ty), "integer")),
                    Value::UInt(v) => <$ty>::try_from(*v)
                        .map_err(|_| Error::expected(stringify!($ty), "integer")),
                    _ => Err(Error::expected(stringify!($ty), "integer")),
                }
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) => Value::Int(v),
            Err(_) => Value::UInt(*self),
        }
    }
}

impl Deserialize for u64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Int(v) => u64::try_from(*v).map_err(|_| Error::expected("u64", "integer")),
            Value::UInt(v) => Ok(*v),
            _ => Err(Error::expected("u64", "integer")),
        }
    }
}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(v) => v.to_value(),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            Value::UInt(v) => Ok(*v as f64),
            _ => Err(Error::expected("f64", "number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(v) => Ok(*v),
            _ => Err(Error::expected("bool", "boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(v) => Ok(v.clone()),
            _ => Err(Error::expected("string", "string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(v) if v.chars().count() == 1 => Ok(v.chars().next().unwrap()),
            _ => Err(Error::expected("single-character string", "char")),
        }
    }
}

impl Serialize for Arc<str> {
    fn to_value(&self) -> Value {
        Value::Str(self.as_ref().to_owned())
    }
}

impl Deserialize for Arc<str> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        String::from_value(value).map(Arc::from)
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", "VecDeque"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        <[T; N]>::try_from(items).map_err(|_| Error::expected("fixed-length array", "array"))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        self.as_ref().to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        self.as_ref().to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::expected("object", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::expected("object", "HashMap"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! tuple_impl {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| Error::expected("array", "tuple"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::expected("tuple-length array", "tuple"));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
