//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the Criterion API the workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`, `Bencher::{iter,
//! iter_batched, iter_custom}`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — on top of a simple wall-clock harness: each
//! benchmark is auto-calibrated to a target measurement time, run for a
//! number of samples, and reported as `min / median / max` nanoseconds per
//! iteration on stdout.  There is no statistical regression machinery; the
//! numbers are honest medians, good enough to compare variants run in the
//! same process.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted for API compatibility;
/// the harness always times routines individually, so the distinction only
/// affects batching granularity in real Criterion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, self.measurement_time, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Overrides the target measurement time for this group (accepted for
    /// compatibility; the group inherits the driver's time otherwise).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&full, samples, self.criterion.measurement_time, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures to drive the measurement loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the requested number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs produced by `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Hands full timing control to the routine: it receives the iteration
    /// count and returns the measured duration.
    pub fn iter_custom<R>(&mut self, mut routine: R)
    where
        R: FnMut(u64) -> Duration,
    {
        self.elapsed = routine(self.iters);
    }
}

fn run_benchmark<F>(name: &str, samples: usize, measurement_time: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: grow the iteration count until one sample takes long enough
    // that timer quantization is negligible.
    let mut iters: u64 = 1;
    loop {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_sample = measurement_time.as_nanos() / samples.max(1) as u128;
        if bencher.elapsed.as_nanos() >= per_sample.min(2_000_000) || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(4).max(iters + 1);
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut bencher = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            bencher.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));

    let min = per_iter.first().copied().unwrap_or(0.0);
    let max = per_iter.last().copied().unwrap_or(0.0);
    let median = per_iter[per_iter.len() / 2];
    println!(
        "{name:<50} time: [{} {} {}] ({iters} iters x {samples} samples)",
        format_ns(min),
        format_ns(median),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        c.bench_function("counted", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_run_batched_and_custom() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(4));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(0u8);
                }
                start.elapsed()
            })
        });
        group.finish();
    }
}
