//! Offline stand-in for `rand`.
//!
//! Provides the minimal API surface the workspace uses: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`] over integer and
//! float ranges.  The generator is xoshiro256** seeded through SplitMix64 —
//! deterministic for a given seed, statistically solid for simulation
//! workloads, and explicitly **not** cryptographically secure (neither is the
//! real `StdRng` guaranteed to keep its algorithm, only its quality).

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Samples a uniform value in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples a random boolean with probability `p` of being true.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                // Two's-complement span is correct for signed and unsigned.
                let span = self.end.wrapping_sub(self.start) as u64;
                // Debiased multiply-shift rejection sampling (Lemire).
                let threshold = span.wrapping_neg() % span;
                loop {
                    let r = rng.next_u64();
                    let wide = r as u128 * span as u128;
                    if (wide as u64) >= threshold {
                        return self.start.wrapping_add(((wide >> 64) as u64) as $ty);
                    }
                }
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let sample = self.start + unit * (self.end - self.start);
        // Guard against rounding up to the exclusive bound.
        if sample < self.end {
            sample
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        let wide = Range {
            start: f64::from(self.start),
            end: f64::from(self.end),
        };
        wide.sample(rng) as f32
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, as the xoshiro authors
            // recommend, so that zero and near-zero seeds work.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let first: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let other: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_ne!(first, other);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }
}
