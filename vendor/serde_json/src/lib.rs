//! Offline stand-in for `serde_json`: renders and parses the vendored
//! mini-serde [`serde::Value`] tree as JSON text.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// A JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Error::new(err.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value to human-readable, indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into a value of type `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if !v.is_finite() {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
            let text = v.to_string();
            out.push_str(&text);
            // serde_json always renders floats with a decimal point.
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let high = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&high) {
                                // Surrogate pair.
                                if !self.consume_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                high
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we just consumed.
                    let start = self.pos - 1;
                    let text = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let ch = text.chars().next().unwrap();
                    self.pos = start + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"hi\n".to_string()).unwrap(), "\"hi\\n\"");
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
    }

    #[test]
    fn round_trips_containers() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);
        let opt: Option<u64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn big_u64_round_trips() {
        let v = u64::MAX;
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }
}
