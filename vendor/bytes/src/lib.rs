//! Offline stand-in for `bytes`: an immutable, cheaply cloneable byte buffer.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates a buffer from a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// The number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Bytes::from(data.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        assert!(Bytes::new().is_empty());
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(Bytes::from("hi").len(), 2);
    }
}
