//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`collection::vec`], the [`proptest!`] macro with `#![proptest_config]`,
//! and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest: case generation is seeded from the test
//! name (deterministic across runs), and failing cases are reported with
//! their case number but **not shrunk** to a minimal counterexample.

#![forbid(unsafe_code)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies by the [`proptest!`] runner.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A deterministic RNG derived from the test name.
    pub fn deterministic(name: &str) -> Self {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of values from `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.len.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`", left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts inequality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            ));
        }
    }};
}

/// Declares property tests, mirroring proptest's macro.
///
/// Each property runs `config.cases` times with values drawn from its
/// strategies; `prop_assert*` failures report the case number.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strategy), &mut rng); )+
                    let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("property {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, message);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $($arg in $strategy),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u64)> {
        (1u64..100, 1u64..100)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, f in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn prop_map_applies(p in pair().prop_map(|(a, b)| a + b)) {
            prop_assert!((2..200).contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
