//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal serde-compatible surface: `serde::Serialize` / `serde::Deserialize`
//! are traits over a JSON-like [`serde::Value`] tree, and this proc-macro crate
//! derives them for the limited shapes the workspace actually uses:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, wider tuples as arrays),
//! * unit structs,
//! * enums with unit, tuple and struct variants (externally tagged, like real
//!   serde's default representation).
//!
//! Generics, `#[serde(...)]` attributes and borrowed deserialization are not
//! supported; deriving on such a type fails with a compile error rather than
//! generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

enum Variant {
    Unit(String),
    Tuple(String, usize),
    Named(String, Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse(input);
    gen_serialize(&name, &shape).parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse(input);
    gen_deserialize(&name, &shape).parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(crate)`).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic types are not supported");
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::NamedStruct(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                (name, Shape::TupleStruct(tuple_arity(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => (name, Shape::UnitStruct),
            other => panic!("serde derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::Enum(parse_variants(g.stream())))
            }
            other => panic!("serde derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}`"),
    }
}

/// Parses `field: Type, ...` bodies, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after `{field}`, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth zero.
        let mut angle: i64 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant body.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut arity = 0;
    let mut angle: i64 = 0;
    let mut pending = false;
    for token in stream {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                arity += 1;
                pending = false;
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    if pending {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            if p.as_char() == '#' {
                i += 2;
                continue;
            }
            if p.as_char() == ',' {
                i += 1;
                continue;
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected variant name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                variants.push(Variant::Tuple(name, tuple_arity(g.stream())));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push(Variant::Named(name, parse_named_fields(g.stream())));
                i += 1;
            }
            _ => variants.push(Variant::Unit(name)),
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(v) => format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"
                    ),
                    Variant::Tuple(v, 1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Variant::Tuple(v, n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Variant::Named(v, fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| format!("{f}: __{f}")).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value(__{f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {} }} => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                            binds.join(", "),
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}\n"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: match ::serde::value_get(__obj, \"{f}\") {{ Some(__x) => ::serde::Deserialize::from_value(__x)?, None => ::serde::Deserialize::from_missing_field(\"{f}\")? }}"
                    )
                })
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\"))?;\n        Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}\"))?;\n        if __arr.len() != {n} {{ return Err(::serde::Error::expected(\"array of length {n}\", \"{name}\")); }}\n        Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(v) => Some(format!("\"{v}\" => Ok({name}::{v}),")),
                    _ => None,
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(_) => None,
                    Variant::Tuple(v, 1) => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Variant::Tuple(v, n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let __arr = __inner.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}::{v}\"))?; if __arr.len() != {n} {{ return Err(::serde::Error::expected(\"array of length {n}\", \"{name}::{v}\")); }} Ok({name}::{v}({})) }}",
                            items.join(", ")
                        ))
                    }
                    Variant::Named(v, fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: match ::serde::value_get(__fields, \"{f}\") {{ Some(__x) => ::serde::Deserialize::from_value(__x)?, None => ::serde::Deserialize::from_missing_field(\"{f}\")? }}"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let __fields = __inner.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}::{v}\"))?; Ok({name}::{v} {{ {} }}) }}",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match __v {{\n            ::serde::Value::Str(__s) => match __s.as_str() {{ {} __other => Err(::serde::Error::unknown_variant(__other, \"{name}\")) }},\n            __val => {{\n                let __obj = __val.as_object().ok_or_else(|| ::serde::Error::expected(\"string or object\", \"{name}\"))?;\n                if __obj.len() != 1 {{ return Err(::serde::Error::expected(\"single-entry object\", \"{name}\")); }}\n                let (__tag, __inner) = (&__obj[0].0, &__obj[0].1);\n                match __tag.as_str() {{ {} __other => Err(::serde::Error::unknown_variant(__other, \"{name}\")) }}\n            }}\n        }}",
                unit_arms.join(" "),
                tagged_arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n        {body}\n    }}\n}}\n"
    )
}
