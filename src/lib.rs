//! # WATCHMAN — a data warehouse intelligent cache manager
//!
//! This is the facade crate of the WATCHMAN reproduction (Scheuermann, Shim &
//! Vingralek, VLDB 1996).  It re-exports the workspace crates so applications
//! and the bundled examples can depend on a single crate:
//!
//! * [`core`] ([`watchman_core`]) — the cache manager itself: the LNC-R
//!   replacement and LNC-A admission algorithms (combined: LNC-RA), the
//!   retained-reference-information mechanism, the comparison baselines
//!   (LRU, LRU-K, LFU, LCS, GreedyDual-Size), metrics and the §2.3
//!   optimality oracles.
//! * [`warehouse`] ([`watchman_warehouse`]) — the synthetic data warehouse:
//!   TPC-D, Set Query and the 14-relation buffer workload, with cost,
//!   result-size and page-access models.
//! * [`trace`] ([`watchman_trace`]) — drill-down workload traces.
//! * [`buffer`] ([`watchman_buffer`]) — the page-level LRU buffer manager
//!   with p₀-redundancy hints.
//! * [`sim`] ([`watchman_sim`]) — the experiment harness reproducing the
//!   paper's Figures 2–7 and the extension ablations.
//!
//! ## Quick start
//!
//! ```
//! use watchman::prelude::*;
//!
//! // A 2 MB LNC-RA cache (K = 4, admission control and retained reference
//! // information enabled — the paper's configuration).
//! let mut cache: LncCache<SizedPayload> = LncCache::lnc_ra(2 << 20);
//!
//! let query = QueryKey::from_raw_query(
//!     "SELECT o_orderpriority, count(*) FROM orders GROUP BY o_orderpriority",
//! );
//! let now = Timestamp::from_secs(10);
//!
//! if cache.get(&query, now).is_none() {
//!     // Execute the query against the warehouse, then offer the retrieved
//!     // set together with its observed execution cost (in block reads).
//!     let outcome = cache.insert(
//!         query.clone(),
//!         SizedPayload::new(320),
//!         ExecutionCost::from_blocks(8_500),
//!         now,
//!     );
//!     assert!(outcome.is_admitted());
//! }
//! assert!(cache.contains(&query));
//! ```
//!
//! See the `examples/` directory for complete programs: `quickstart`,
//! `drill_down`, `buffer_hints` and `policy_comparison`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub use watchman_buffer as buffer;
pub use watchman_core as core;
pub use watchman_sim as sim;
pub use watchman_trace as trace;
pub use watchman_warehouse as warehouse;

/// The most commonly used types from every workspace crate.
pub mod prelude {
    pub use watchman_buffer::{BufferPool, BufferStats, QueryReferenceTracker};
    pub use watchman_core::prelude::*;
    pub use watchman_sim::{
        replay_trace, run_infinite, run_policy, ExperimentScale, PolicyKind, RunResult, Workload,
    };
    pub use watchman_trace::{Trace, TraceConfig, TraceGenerator, TraceRecord, TraceStats};
    pub use watchman_warehouse::{
        Benchmark, BenchmarkKind, ExecutionResult, QueryExecutor, QueryInstance, TemplateId,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable_together() {
        let workload = Workload::tpcd(ExperimentScale::quick(100));
        let result = run_policy(&workload.trace, PolicyKind::LNC_RA, 0.01);
        assert_eq!(result.references, 100);
    }
}
