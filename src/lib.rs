//! # WATCHMAN — a data warehouse intelligent cache manager
//!
//! This is the facade crate of the WATCHMAN reproduction (Scheuermann, Shim &
//! Vingralek, VLDB 1996).  It re-exports the workspace crates so applications
//! and the bundled examples can depend on a single crate:
//!
//! * [`core`] ([`watchman_core`]) — the cache manager itself: the concurrent
//!   [`Watchman`](watchman_core::engine::Watchman) engine (sharded, with
//!   single-flight miss deduplication and cache events), the LNC-R
//!   replacement and LNC-A admission algorithms (combined: LNC-RA), the
//!   retained-reference-information mechanism, the comparison baselines
//!   (LRU, LRU-K, LFU, LCS, GreedyDual-Size), metrics and the §2.3
//!   optimality oracles.
//! * [`warehouse`] ([`watchman_warehouse`]) — the synthetic data warehouse:
//!   TPC-D, Set Query and the 14-relation buffer workload, with cost,
//!   result-size and page-access models.
//! * [`trace`] ([`watchman_trace`]) — drill-down workload traces.
//! * [`buffer`] ([`watchman_buffer`]) — the page-level LRU buffer manager
//!   with p₀-redundancy hints, subscribable to engine cache events.
//! * [`sim`] ([`watchman_sim`]) — the experiment harness reproducing the
//!   paper's Figures 2–7 and the extension ablations.
//! * [`server`] ([`watchman_server`]) — the networked front end: the
//!   versioned wire protocol, the `watchmand` cache server (misses coalesce
//!   across client connections), a typed pipelining client and the
//!   `loadgen` load generator.
//!
//! ## Quick start
//!
//! The primary API is the engine: build it once, share cheap clones with
//! every session, and let [`get_or_execute`](watchman_core::engine::Watchman::get_or_execute)
//! run the hit-or-execute-and-admit protocol (deduplicating concurrent
//! misses on the same query):
//!
//! ```
//! use watchman::prelude::*;
//!
//! // An 8-shard LNC-RA engine with 2 MB of capacity — the paper's policy
//! // configuration (K = 4, admission control, retained reference info),
//! // ready for a multiuser front end.
//! let engine: Watchman<SizedPayload> = Watchman::builder()
//!     .shards(8)
//!     .policy(PolicyKind::LncRa { k: 4 })
//!     .capacity_bytes(2 << 20)
//!     .build();
//!
//! let query = QueryKey::from_raw_query(
//!     "SELECT o_orderpriority, count(*) FROM orders GROUP BY o_orderpriority",
//! );
//!
//! let lookup = engine.get_or_execute(&query, Timestamp::from_secs(10), || {
//!     // Cache miss: execute against the warehouse and report the observed
//!     // execution cost (in block reads).
//!     (SizedPayload::new(320), ExecutionCost::from_blocks(8_500))
//! });
//! assert_eq!(lookup.source, LookupSource::Executed);
//! assert!(engine.contains(&query));
//!
//! // Later references share the cached payload by Arc — no copying.
//! let hit = engine.get_or_execute(&query, Timestamp::from_secs(11), || unreachable!());
//! assert_eq!(hit.source, LookupSource::Hit);
//! ```
//!
//! Sessions that should *suspend* instead of blocking threads while a
//! multi-second warehouse query executes can use the asynchronous front door,
//! [`get_or_execute_async`](watchman_core::engine::Watchman::get_or_execute_async),
//! backed by the hand-rolled [`runtime`](watchman_core::runtime) — see the
//! `async_sessions` example.
//!
//! See the `examples/` directory for complete programs: `quickstart`,
//! `drill_down`, `buffer_hints`, `policy_comparison`, `async_sessions` and
//! `wire_sessions` (the cache served over TCP).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub use watchman_buffer as buffer;
pub use watchman_core as core;
pub use watchman_core::telemetry;
pub use watchman_server as server;
pub use watchman_sim as sim;
pub use watchman_trace as trace;
pub use watchman_warehouse as warehouse;

/// The most commonly used types from every workspace crate.
pub mod prelude {
    pub use watchman_buffer::{
        BufferPool, BufferStats, QueryReferenceTracker, RedundancyHintObserver,
    };
    pub use watchman_core::prelude::*;
    pub use watchman_server::{serve, Client, GetRequest, LoadOptions, ServerConfig, ServerHandle};
    pub use watchman_sim::{
        replay_trace, replay_trace_engine, replay_trace_engine_async,
        replay_trace_engine_concurrent, run_infinite, run_policy, run_policy_sharded,
        ExperimentScale, RunResult, Workload,
    };
    pub use watchman_trace::{Trace, TraceConfig, TraceGenerator, TraceRecord, TraceStats};
    pub use watchman_warehouse::{
        Benchmark, BenchmarkKind, ExecutionResult, QueryExecutor, QueryInstance, TemplateId,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable_together() {
        let workload = Workload::tpcd(ExperimentScale::quick(100));
        let result = run_policy(&workload.trace, PolicyKind::LNC_RA, 0.01);
        assert_eq!(result.references, 100);
    }

    #[test]
    fn engine_and_sim_share_policy_kind() {
        // PolicyKind re-exported through the sim crate and through the core
        // prelude must be the same type.
        let kind: watchman_sim::PolicyKind = PolicyKind::LNC_RA;
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .policy(kind)
            .capacity_bytes(1 << 20)
            .build();
        assert_eq!(engine.policy(), PolicyKind::LNC_RA);
    }
}
